"""Unit tests for the benchmark query catalog (Table II metadata)."""

import pytest

from repro.queries import ALL_QUERIES, ask_queries, get_query, select_queries
from repro.sparql import parse_query


class TestCatalogStructure:
    def test_seventeen_queries(self):
        assert len(ALL_QUERIES) == 17

    def test_identifiers_match_the_paper(self):
        identifiers = [query.identifier for query in ALL_QUERIES]
        assert identifiers == [
            "Q1", "Q2", "Q3a", "Q3b", "Q3c", "Q4", "Q5a", "Q5b", "Q6", "Q7",
            "Q8", "Q9", "Q10", "Q11", "Q12a", "Q12b", "Q12c",
        ]

    def test_fourteen_select_and_three_ask(self):
        assert len(select_queries()) == 14
        assert len(ask_queries()) == 3

    def test_get_query_case_insensitive(self):
        assert get_query("q3A").identifier == "Q3a"
        assert get_query("Q12c").form == "ASK"

    def test_get_query_unknown_raises(self):
        with pytest.raises(KeyError):
            get_query("Q99")

    def test_every_query_has_description(self):
        assert all(query.description for query in ALL_QUERIES)


class TestTable2Metadata:
    def test_q1_uses_and_only(self):
        assert get_query("Q1").operators == ("AND",)

    def test_q2_has_optional_and_order_by(self):
        q2 = get_query("Q2")
        assert "OPTIONAL" in q2.operators
        assert "ORDER BY" in q2.modifiers

    def test_q4_and_q5a_have_distinct(self):
        assert "DISTINCT" in get_query("Q4").modifiers
        assert "DISTINCT" in get_query("Q5a").modifiers

    def test_q6_q7_use_optional_and_filter(self):
        for identifier in ("Q6", "Q7"):
            query = get_query(identifier)
            assert "OPTIONAL" in query.operators
            assert "FILTER" in query.operators

    def test_q8_q9_use_union(self):
        assert "UNION" in get_query("Q8").operators
        assert "UNION" in get_query("Q9").operators

    def test_q11_has_all_three_modifiers(self):
        assert set(get_query("Q11").modifiers) == {"ORDER BY", "LIMIT", "OFFSET"}

    def test_filter_pushing_flags_match_table2(self):
        # Table II row 4 marks Q3abc, Q5a, Q6, Q7, Q8 (and the ASK variants).
        flagged = {q.identifier for q in ALL_QUERIES if q.filter_pushing}
        assert {"Q3a", "Q3b", "Q3c", "Q5a", "Q6", "Q7", "Q8"} <= flagged
        assert "Q1" not in flagged and "Q10" not in flagged

    def test_pattern_reuse_flags_match_table2(self):
        # Table II row 5 marks Q4, Q6, Q7, Q8 (and Q12b).
        flagged = {q.identifier for q in ALL_QUERIES if q.pattern_reuse}
        assert {"Q4", "Q6", "Q7", "Q8"} <= flagged

    def test_q7_accesses_containers(self):
        assert "containers" in get_query("Q7").data_access

    def test_q2_accesses_large_literals(self):
        assert "large literals" in get_query("Q2").data_access

    def test_ask_queries_mirror_select_counterparts(self):
        assert get_query("Q12a").operators == get_query("Q5a").operators
        assert get_query("Q12b").operators == get_query("Q8").operators


class TestQueryTexts:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.identifier)
    def test_text_parses_and_form_matches(self, query):
        parsed = parse_query(query.text)
        assert parsed.form == query.form

    def test_q1_mentions_fixed_journal_title(self):
        assert 'Journal 1 (1940)' in get_query("Q1").text

    def test_q8_and_q12b_mention_erdoes(self):
        assert "Paul Erdoes" in get_query("Q8").text
        assert "Paul Erdoes" in get_query("Q12b").text

    def test_q12c_asks_for_john_q_public(self):
        assert "John_Q_Public" in get_query("Q12c").text

    def test_q11_limit_and_offset_values(self):
        text = get_query("Q11").text
        assert "LIMIT 10" in text and "OFFSET 50" in text
