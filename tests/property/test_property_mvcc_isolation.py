"""Property: readers under a concurrent update stream see committed states.

The MVCC contract, stated as a property: while one writer applies a random
stream of update operations, every concurrent read observes a result
multiset equal to what the fixed probe query produces on *some* committed
version of the store — never a half-applied update, never a mix of two
generations.  Checked across the deployable (store family, planner family)
configurations.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.sparql import EngineConfig, SparqlEngine
from repro.store import MvccStore

_CONFIGS = (
    EngineConfig(name="indexed-cost", store_type="indexed", planner="cost"),
    EngineConfig(name="indexed-greedy", store_type="indexed",
                 planner="greedy"),
    EngineConfig(name="memory-none", store_type="memory", planner="none",
                 reorder_patterns=False),
)

P = "http://example.org/p"
READERS = 3
READS_PER_THREAD = 8

#: The probe: everything under the predicate the writer churns.
PROBE = f"SELECT ?s ?o WHERE {{ ?s <{P}> ?o }}"


@st.composite
def update_streams(draw):
    """A random sequence of update operations over a small id space.

    Pairs are the atomicity unit: every operation inserts or deletes *two*
    triples for one subject in a single update, so a reader catching a
    generation mid-write would surface as a half-visible pair.
    """
    steps = draw(st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]),
                  st.integers(min_value=0, max_value=9)),
        min_size=4, max_size=12,
    ))
    operations = []
    for action, key in steps:
        subject = f"<http://example.org/s{key}>"
        pair = (f"{subject} <{P}> {2 * key} . "
                f"{subject} <{P}> {2 * key + 1} . ")
        if action == "insert":
            operations.append(f"INSERT DATA {{ {pair}}}")
        else:
            operations.append(f"DELETE DATA {{ {pair}}}")
    return operations


def _probe_multiset(engine):
    rows = engine.query(PROBE)
    return tuple(sorted(
        (str(binding.get("s")), str(binding.get("o"))) for binding in rows
    ))


class TestSnapshotIsolation:
    @given(update_streams())
    @settings(max_examples=8, deadline=None)
    def test_reads_match_some_committed_version(self, operations):
        for config in _CONFIGS:
            engine = SparqlEngine(config)
            engine.store = MvccStore(engine.store)
            engine.update(
                f"INSERT DATA {{ <http://example.org/s0> <{P}> 0 . "
                f"<http://example.org/s0> <{P}> 1 . }}"
            )

            committed = {_probe_multiset(engine)}
            committed_lock = threading.Lock()
            start = threading.Barrier(READERS + 1)
            observations = [None] * READERS
            errors = []

            def writer():
                try:
                    start.wait()
                    for operation in operations:
                        # Record the post-commit state before readers can
                        # be told about it: any multiset a reader observes
                        # afterwards is already in the committed set.
                        with committed_lock:
                            engine.update(operation)
                            committed.add(_probe_multiset(engine))
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            def reader(index):
                try:
                    start.wait()
                    seen = []
                    for _ in range(READS_PER_THREAD):
                        seen.append(_probe_multiset(engine))
                    observations[index] = seen
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader, args=(index,))
                for index in range(READERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors

            for seen in observations:
                for multiset in seen:
                    assert multiset in committed, (
                        f"{config.name}: observed state matching no "
                        f"committed version: {multiset!r}"
                    )
                    # Pair atomicity inside every observed state.
                    subjects = {}
                    for subject, _value in multiset:
                        subjects[subject] = subjects.get(subject, 0) + 1
                    assert all(count == 2 for count in subjects.values()), (
                        f"{config.name}: torn pair in {multiset!r}"
                    )
