"""Property-based tests (hypothesis) for the RDF substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import BNode, Graph, Literal, Triple, URIRef, parse_graph, serialize

# -- strategies -------------------------------------------------------------------

_uri_local = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=12)
uris = _uri_local.map(lambda local: URIRef("http://example.org/" + local))
bnodes = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=10).map(BNode)

_literal_text = st.text(
    alphabet=string.ascii_letters + string.digits + ' .,:;!?"\'\\\n\t-_()[]',
    max_size=40,
)
plain_literals = _literal_text.map(Literal)
typed_literals = st.integers(min_value=-10_000, max_value=10_000).map(Literal)
language_literals = st.tuples(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    st.sampled_from(["en", "de", "fr"]),
).map(lambda pair: Literal(pair[0], language=pair[1]))
literals = st.one_of(plain_literals, typed_literals, language_literals)

subjects = st.one_of(uris, bnodes)
objects = st.one_of(uris, bnodes, literals)
triples = st.builds(Triple, subjects, uris, objects)
triple_lists = st.lists(triples, max_size=30)


class TestNTriplesRoundTrip:
    @given(triple_lists)
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_roundtrip(self, items):
        graph = Graph(items)
        assert parse_graph(serialize(graph)) == graph

    @given(triples)
    @settings(max_examples=100, deadline=None)
    def test_single_triple_roundtrip_preserves_terms(self, triple):
        parsed = list(parse_graph(serialize([triple])))
        assert parsed == [triple]


class TestGraphProperties:
    @given(triple_lists)
    @settings(max_examples=50, deadline=None)
    def test_length_equals_number_of_distinct_triples(self, items):
        assert len(Graph(items)) == len(set(items))

    @given(triple_lists)
    @settings(max_examples=50, deadline=None)
    def test_every_added_triple_is_found_by_exact_match(self, items):
        graph = Graph(items)
        for triple in items:
            matches = list(graph.triples(triple.subject, triple.predicate, triple.object))
            assert triple in matches

    @given(triple_lists, triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_union_is_commutative(self, left, right):
        assert Graph(left).union(Graph(right)) == Graph(right).union(Graph(left))

    @given(triple_lists, triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_difference_and_intersection_partition_the_graph(self, left, right):
        graph_left, graph_right = Graph(left), Graph(right)
        inter = graph_left.intersection(graph_right)
        diff = graph_left.difference(graph_right)
        assert len(inter) + len(diff) == len(graph_left)
        assert inter.union(diff) == graph_left


class TestTermOrdering:
    @given(st.lists(objects, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sort_key_defines_total_order(self, terms):
        keys = [term.sort_key() for term in terms]
        assert sorted(keys) == sorted(sorted(keys))

    @given(objects, objects)
    @settings(max_examples=100, deadline=None)
    def test_equal_terms_have_equal_sort_keys(self, left, right):
        if left == right:
            assert left.sort_key() == right.sort_key()
