"""Property: sharded evaluation equals single-store evaluation.

Partitioning is a pure physical-layer change: for every catalog query and
every shard count the scatter-gather evaluator must produce exactly the
multiset the single store produces (row order is not part of the contract).
The engines pin ``parallel=False`` so hypothesis exercises the sequential
per-segment path deterministically; the process-pool path is covered by
``tests/sparql/test_scatter.py`` and asserts equality against the same
single-store baseline.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.generator import DblpGenerator, GeneratorConfig
from repro.queries import ALL_QUERIES, get_query
from repro.sparql import NATIVE_COST, SparqlEngine
from repro.sparql.results import AskResult
from repro.store import IndexedStore, PartitionedStore

QUERY_IDS = tuple(query.identifier for query in ALL_QUERIES)

SHARD_COUNTS = (1, 2, 4)

#: shard count -> engine, built once — hypothesis draws must not rebuild
#: 2k-triple stores.  Key None is the unpartitioned baseline.
_ENGINES = {}


def _engine(shards):
    engine = _ENGINES.get(shards)
    if engine is None:
        if not _ENGINES:
            store = IndexedStore()
            store.bulk_load(
                DblpGenerator(
                    GeneratorConfig(triple_limit=2_000, seed=823645187)
                ).graph()
            )
            _ENGINES[None] = SparqlEngine.from_store(store, NATIVE_COST)
        whole = _ENGINES[None].store
        if shards is not None:
            engine = _ENGINES[shards] = SparqlEngine.from_store(
                PartitionedStore.from_store(whole, shards, parallel=False),
                NATIVE_COST,
            )
        else:
            engine = _ENGINES[None]
    return engine


def _multiset(engine, text):
    result = engine.query(text)
    if isinstance(result, AskResult):
        return bool(result)
    return Counter(frozenset(binding.items()) for binding in result.bindings)


@settings(deadline=None, max_examples=60)
@given(query_id=st.sampled_from(QUERY_IDS),
       shards=st.sampled_from(SHARD_COUNTS))
def test_sharded_equals_single_store(query_id, shards):
    """Full results are multiset-equal at every shard count."""
    text = get_query(query_id).text
    assert _multiset(_engine(shards), text) == _multiset(_engine(None), text)


@settings(deadline=None, max_examples=30)
@given(query_id=st.sampled_from(
           tuple(q.identifier for q in ALL_QUERIES if q.form == "SELECT")),
       shards=st.sampled_from(SHARD_COUNTS[1:]),
       limit=st.integers(min_value=0, max_value=20))
def test_sharded_limit_window_is_subset(query_id, shards, limit):
    """LIMIT pushdown over gathered rows stays within the full multiset."""
    full = _multiset(_engine(None), get_query(query_id).text)
    prepared = _engine(shards).prepare(get_query(query_id).text)
    window = Counter(
        frozenset(binding.items()) for binding in prepared.run(limit=limit)
    )
    assert sum(window.values()) == min(limit, sum(full.values()))
    assert all(window[row] <= full[row] for row in window)
