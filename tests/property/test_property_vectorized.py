"""Property: batch-kernel evaluation equals the tuple path on the catalog.

The vectorized executor (sparql/kernels.py + the block pipeline in
``IdSpaceEvaluation``) is a pure physical-layer change: for every catalog
query and document size it must produce exactly the multiset the
tuple-at-a-time path produces.  Row *order* is explicitly not part of the
contract — block execution emits in block order, and DISTINCT without
ORDER BY leaves order unspecified — so the properties compare multisets,
and under LIMIT they check window size plus membership in the full result.
Deadline plumbing is exercised at block granularity: an already-expired
deadline must abort both paths, and a generous one must not change results.
"""

from collections import Counter
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.generator import DblpGenerator, GeneratorConfig
from repro.queries import ALL_QUERIES, get_query
from repro.sparql import NATIVE_COST, QueryTimeout, SparqlEngine
from repro.sparql.cursor import Deadline
from repro.sparql.results import AskResult

#: Document sizes the issue pins down: small enough for property-test
#: budgets, large enough that every kernel (merge-join, batch probe,
#: columnar filters, block DISTINCT) sees multi-block inputs at 5k.
SIZES = (1000, 5000)

QUERY_IDS = tuple(query.identifier for query in ALL_QUERIES)

#: (vectorized engine, tuple-path engine) pairs sharing one store, built
#: once per size — hypothesis draws must not rebuild 5k-triple stores.
_PAIRS = {}


def _engines(size):
    pair = _PAIRS.get(size)
    if pair is None:
        graph = DblpGenerator(
            GeneratorConfig(triple_limit=size, seed=823645187)
        ).graph()
        batch = SparqlEngine.from_graph(graph, NATIVE_COST)
        tuple_path = SparqlEngine(
            replace(NATIVE_COST, name="native-cost-tuple", vectorize=False)
        )
        tuple_path.store = batch.store
        pair = _PAIRS[size] = (batch, tuple_path)
    return pair


def _multiset(result):
    if isinstance(result, AskResult):
        return bool(result)
    return Counter(
        frozenset(binding.items()) for binding in result.bindings
    )


@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(query_id=st.sampled_from(QUERY_IDS), size=st.sampled_from(SIZES))
def test_batch_equals_tuple_path(query_id, size):
    """Full results are multiset-equal across the two physical paths."""
    batch, tuple_path = _engines(size)
    text = get_query(query_id).text
    assert _multiset(batch.query(text)) == _multiset(tuple_path.query(text))


@settings(deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    query_id=st.sampled_from(
        tuple(q.identifier for q in ALL_QUERIES if q.form == "SELECT")
    ),
    size=st.sampled_from(SIZES),
    limit=st.integers(min_value=0, max_value=25),
)
def test_batch_limit_window_is_subset(query_id, size, limit):
    """LIMIT pushdown through block iterators stays within the full result.

    The two paths may order rows differently, so the checkable contract is:
    the window has ``min(limit, total)`` rows and every row is drawn from
    the full multiset (with multiplicity).
    """
    batch, tuple_path = _engines(size)
    prepared = batch.prepare(get_query(query_id).text)
    full = _multiset(tuple_path.query(get_query(query_id).text))
    window = Counter(
        frozenset(binding.items()) for binding in prepared.run(limit=limit)
    )
    assert sum(window.values()) == min(limit, sum(full.values()))
    assert all(window[row] <= full[row] for row in window)


@pytest.mark.parametrize("query_id", ("Q2", "Q4", "Q6", "Q9"))
def test_expired_deadline_aborts_block_pipeline(query_id):
    """An already-expired deadline stops both paths mid-stream."""
    batch, tuple_path = _engines(SIZES[0])
    for engine in (batch, tuple_path):
        prepared = engine.prepare(get_query(query_id).text)
        with pytest.raises(QueryTimeout):
            list(prepared.run(deadline=Deadline(0.0)))


@pytest.mark.parametrize("query_id", ("Q2", "Q6"))
def test_generous_deadline_is_invisible(query_id):
    """A deadline that never fires must not perturb batch results."""
    batch, tuple_path = _engines(SIZES[0])
    text = get_query(query_id).text
    bounded = Counter(
        frozenset(binding.items())
        for binding in batch.prepare(text).run(timeout=600.0)
    )
    assert bounded == _multiset(tuple_path.query(text))
