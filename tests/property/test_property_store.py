"""Property-based tests: the indexed store behaves exactly like a linear scan."""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import Literal, Triple, URIRef
from repro.store import IndexedStore, MemoryStore

# A deliberately small term universe so patterns frequently match.
_locals = st.sampled_from(list(string.ascii_lowercase[:6]))
uris = _locals.map(lambda local: URIRef("http://t/" + local))
literals = st.integers(min_value=0, max_value=5).map(Literal)
triples = st.builds(Triple, uris, uris, st.one_of(uris, literals))
triple_lists = st.lists(triples, max_size=60)

maybe_uri = st.one_of(st.none(), uris)
maybe_object = st.one_of(st.none(), uris, literals)


class TestIndexEquivalence:
    @given(triple_lists, maybe_uri, maybe_uri, maybe_object)
    @settings(max_examples=120, deadline=None)
    def test_indexed_matches_scan_for_any_pattern(self, items, s, p, o):
        scan = MemoryStore(items)
        indexed = IndexedStore(items)
        assert set(indexed.triples(s, p, o)) == set(scan.triples(s, p, o))

    @given(triple_lists, maybe_uri, maybe_uri, maybe_object)
    @settings(max_examples=120, deadline=None)
    def test_count_matches_scan(self, items, s, p, o):
        scan = MemoryStore(items)
        indexed = IndexedStore(items)
        assert indexed.count(s, p, o) == scan.count(s, p, o)

    @given(triple_lists)
    @settings(max_examples=60, deadline=None)
    def test_length_equals_distinct_triples(self, items):
        assert len(IndexedStore(items)) == len(set(items))

    @given(triple_lists, triples)
    @settings(max_examples=80, deadline=None)
    def test_contains_agrees_with_membership(self, items, probe):
        indexed = IndexedStore(items)
        assert indexed.contains(probe) == (probe in set(items))

    @given(triple_lists)
    @settings(max_examples=50, deadline=None)
    def test_double_load_is_idempotent(self, items):
        indexed = IndexedStore(items)
        added_again = indexed.load_graph(items)
        assert added_again == 0
        assert len(indexed) == len(set(items))

    @given(triple_lists, maybe_uri, maybe_uri, maybe_object)
    @settings(max_examples=80, deadline=None)
    def test_estimate_is_exact_for_indexed_patterns(self, items, s, p, o):
        indexed = IndexedStore(items)
        if s is None and p is None and o is None:
            assert indexed.estimate_count(s, p, o) == len(indexed)
        else:
            assert indexed.estimate_count(s, p, o) == indexed.count(s, p, o)
