"""Property: streaming cursors are multiset-equal to eager materialization.

The laziness redesign must be invisible to results: for any graph and query,
draining ``engine.stream(query)`` row by row produces exactly the multiset
``engine.query(query)`` materializes — across every planner family
(none/greedy/cost) and both store families (indexed id-space evaluation and
the in-memory term-space path).  LIMIT windows must also be prefixes of the
unlimited sequence in the engine's result order.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.rdf import BENCH, DC, FOAF, RDF, Literal, Triple, URIRef
from repro.sparql import EngineConfig, SelectResult, SparqlEngine

#: One configuration per (store family, planner family) pair the redesign
#: threads laziness through.
_CONFIGS = tuple(
    EngineConfig(
        name=f"{store}-{family}", store_type=store,
        reorder_patterns=True, push_filters=True, planner=family,
    )
    for store in ("indexed", "memory")
    for family in ("none", "greedy", "cost")
)


@st.composite
def small_graphs(draw):
    """Random but well-formed mini DBLP graphs."""
    triples = []
    persons = draw(st.lists(st.integers(min_value=0, max_value=4),
                            min_size=1, max_size=4, unique=True))
    for person_id in persons:
        person = URIRef(f"http://p/{person_id}")
        triples.append(Triple(person, RDF.type, FOAF.Person))
        triples.append(Triple(person, FOAF.name, Literal(f"Person {person_id}")))
    documents = draw(st.lists(st.integers(min_value=0, max_value=6),
                              min_size=1, max_size=6, unique=True))
    for doc_id in documents:
        doc = URIRef(f"http://d/{doc_id}")
        triples.append(Triple(doc, RDF.type, BENCH.Article))
        triples.append(Triple(doc, DC.title, Literal(f"Title {doc_id}")))
        author_count = draw(st.integers(min_value=0, max_value=3))
        for index in range(author_count):
            author = URIRef(f"http://p/{persons[index % len(persons)]}")
            triples.append(Triple(doc, DC.creator, author))
    return triples


_variables = st.sampled_from(["?a", "?b", "?c"])
_predicates = st.sampled_from(["rdf:type", "dc:creator", "foaf:name", "dc:title"])
_objects = st.one_of(
    _variables,
    st.sampled_from(["bench:Article", "foaf:Person", "<http://p/0>", '"Person 1"']),
)


@st.composite
def random_queries(draw):
    """A random SELECT over a BGP, optionally OPTIONAL/UNION shaped."""
    patterns = [
        f"{draw(_variables)} {draw(_predicates)} {draw(_objects)}"
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    shape = draw(st.sampled_from(["bgp", "union", "optional"]))
    block = " . ".join(patterns)
    if shape == "union":
        extra = f"{draw(_variables)} {draw(_predicates)} {draw(_objects)}"
        body = f"{block} {{ {extra} }} UNION {{ {extra} }}"
        texts = patterns + [extra]
    elif shape == "optional":
        extra = f"{draw(_variables)} {draw(_predicates)} {draw(_objects)}"
        body = f"{block} OPTIONAL {{ {extra} }}"
        texts = patterns + [extra]
    else:
        body = block
        texts = patterns
    names = sorted({
        token[1:] for text in texts for token in text.split() if token.startswith("?")
    })
    assume(names)
    projection = " ".join("?" + name for name in names)
    return f"SELECT {projection} WHERE {{ {body} }}"


class TestStreamingEagerEquivalence:
    @given(small_graphs(), random_queries())
    @settings(max_examples=50, deadline=None)
    def test_cursor_multiset_equals_eager_result(self, triples, query):
        for config in _CONFIGS:
            engine = SparqlEngine.from_graph(triples, config)
            eager = engine.query(query)
            cursor = engine.stream(query)
            streamed = SelectResult(cursor.variables, list(cursor))
            assert streamed == eager, f"{config.name} diverged for {query}"

    @given(small_graphs(), random_queries(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_limit_window_is_prefix_of_unlimited_stream(self, triples, query, limit):
        for config in _CONFIGS:
            engine = SparqlEngine.from_graph(triples, config)
            unlimited = list(engine.stream(query))
            window = list(engine.stream(query, limit=limit))
            assert window == unlimited[:limit], f"{config.name} diverged for {query}"

    @given(small_graphs(), random_queries())
    @settings(max_examples=30, deadline=None)
    def test_prepared_rerun_is_stable(self, triples, query):
        engine = SparqlEngine.from_graph(triples, _CONFIGS[0])
        prepared = engine.prepare(query)
        assert prepared.run().all() == prepared.run().all()
