"""Property-based tests for the data generator's contract."""

from hypothesis import given, settings, strategies as st

from repro.generator import DblpGenerator, GeneratorConfig
from repro.rdf import serialize

seeds = st.integers(min_value=0, max_value=2**31 - 1)
limits = st.integers(min_value=300, max_value=1500)


class TestDeterminism:
    @given(seeds, limits)
    @settings(max_examples=10, deadline=None)
    def test_same_configuration_gives_identical_documents(self, seed, limit):
        config = GeneratorConfig(triple_limit=limit, seed=seed)
        first = serialize(DblpGenerator(config).triples())
        second = serialize(DblpGenerator(config).triples())
        assert first == second

    @given(seeds, limits)
    @settings(max_examples=10, deadline=None)
    def test_triple_limit_is_respected_with_bounded_overshoot(self, seed, limit):
        generator = DblpGenerator(GeneratorConfig(triple_limit=limit, seed=seed))
        count = sum(1 for _ in generator.triples())
        assert count >= limit
        # Overshoot is bounded by the triples of the document that crossed
        # the limit (authors + attributes), which stays small.
        assert count <= limit + 250

    @given(seeds, limits)
    @settings(max_examples=8, deadline=None)
    def test_statistics_triple_count_matches_stream(self, seed, limit):
        generator = DblpGenerator(GeneratorConfig(triple_limit=limit, seed=seed))
        count = sum(1 for _ in generator.triples())
        assert generator.statistics.triples_written == count

    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_prefix_property_of_incremental_generation(self, seed):
        small = list(DblpGenerator(GeneratorConfig(triple_limit=400, seed=seed)).triples())
        large = list(DblpGenerator(GeneratorConfig(triple_limit=900, seed=seed)).triples())
        assert large[: len(small)] == small
