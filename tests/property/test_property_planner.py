"""Property-based planner equivalence: random BGPs, identical results.

The planner families (``none`` / ``greedy`` / ``cost``) choose different
pattern orders, physical step strategies, and join algorithms — but they
must never change a query's result multiset.  Hypothesis generates random
mini-DBLP graphs and random BGP-shaped queries (including UNION branches
behind a bind-join seam and OPTIONAL parts) and checks all three families
agree; EXPLAIN must list every triple pattern of the query exactly once.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.rdf import BENCH, DC, FOAF, RDF, Literal, Triple, URIRef
from repro.sparql import EngineConfig, SparqlEngine, algebra

_FAMILIES = ("none", "greedy", "cost")

_CONFIGS = {
    family: EngineConfig(
        name=f"native-{family}", store_type="indexed",
        reorder_patterns=True, push_filters=True, planner=family,
    )
    for family in _FAMILIES
}


# -- graph strategy -------------------------------------------------------------

_person_ids = st.integers(min_value=0, max_value=4)
_doc_ids = st.integers(min_value=0, max_value=6)


@st.composite
def small_graphs(draw):
    """Random but well-formed mini DBLP graphs."""
    triples = []
    persons = draw(st.lists(_person_ids, min_size=1, max_size=4, unique=True))
    for person_id in persons:
        person = URIRef(f"http://p/{person_id}")
        triples.append(Triple(person, RDF.type, FOAF.Person))
        triples.append(Triple(person, FOAF.name, Literal(f"Person {person_id}")))
    documents = draw(st.lists(_doc_ids, min_size=1, max_size=6, unique=True))
    for doc_id in documents:
        doc = URIRef(f"http://d/{doc_id}")
        triples.append(Triple(doc, RDF.type, BENCH.Article))
        triples.append(Triple(doc, DC.title, Literal(f"Title {doc_id}")))
        author_count = draw(st.integers(min_value=0, max_value=3))
        for index in range(author_count):
            author = URIRef(f"http://p/{persons[index % len(persons)]}")
            triples.append(Triple(doc, DC.creator, author))
    return triples


# -- query strategy -------------------------------------------------------------

_variables = st.sampled_from(["?a", "?b", "?c", "?d"])
_predicates = st.sampled_from(["rdf:type", "dc:creator", "foaf:name", "dc:title"])
_subject_terms = st.one_of(
    _variables,
    st.sampled_from(["<http://p/0>", "<http://p/1>", "<http://d/0>", "<http://d/3>"]),
)
_object_terms = st.one_of(
    _variables,
    st.sampled_from([
        "bench:Article", "foaf:Person",
        "<http://p/0>", "<http://p/2>",
        '"Person 1"', '"Title 2"',
    ]),
)


@st.composite
def triple_patterns(draw):
    return f"{draw(_subject_terms)} {draw(_predicates)} {draw(_object_terms)}"


def _block(patterns):
    return " . ".join(patterns)


@st.composite
def random_queries(draw):
    """A random SELECT over a BGP, optionally with UNION/OPTIONAL/group parts.

    The ``group`` shape places a FILTER *inside* a nested group whose
    expression may reference outer variables — the filter-scoping edge case
    a bind join must not change (out-of-scope variables stay unbound).
    """
    base = draw(st.lists(triple_patterns(), min_size=1, max_size=3))
    shape = draw(st.sampled_from(["bgp", "union", "optional", "group"]))
    if shape == "union":
        left = draw(st.lists(triple_patterns(), min_size=1, max_size=2))
        right = draw(st.lists(triple_patterns(), min_size=1, max_size=2))
        body = f"{_block(base)} {{ {_block(left)} }} UNION {{ {_block(right)} }}"
        pattern_texts = base + left + right
    elif shape == "optional":
        inner = draw(st.lists(triple_patterns(), min_size=1, max_size=2))
        body = f"{_block(base)} OPTIONAL {{ {_block(inner)} }}"
        pattern_texts = base + inner
    elif shape == "group":
        inner = draw(st.lists(triple_patterns(), min_size=1, max_size=2))
        left_var = draw(_variables)
        right_var = draw(_variables)
        operator = draw(st.sampled_from(["=", "!="]))
        body = (
            f"{_block(base)} "
            f"{{ {_block(inner)} FILTER ({left_var} {operator} {right_var}) }}"
        )
        pattern_texts = base + inner
    else:
        body = _block(base)
        pattern_texts = base
    names = sorted({
        token[1:]
        for text in pattern_texts
        for token in text.split()
        if token.startswith("?")
    })
    assume(names)
    projection = " ".join("?" + name for name in names)
    return f"SELECT {projection} WHERE {{ {body} }}", len(pattern_texts)


# -- properties -----------------------------------------------------------------

class TestPlannerFamiliesAgree:
    @given(small_graphs(), random_queries())
    @settings(max_examples=60, deadline=None)
    def test_result_multisets_identical(self, triples, query_and_size):
        query, _pattern_count = query_and_size
        reference = None
        for family in _FAMILIES:
            engine = SparqlEngine.from_graph(triples, _CONFIGS[family])
            result = engine.query(query).as_multiset()
            if reference is None:
                reference = result
            else:
                assert result == reference, f"{family} diverged for {query}"

    @given(small_graphs(), random_queries())
    @settings(max_examples=40, deadline=None)
    def test_cost_planner_matches_term_space_evaluation(self, triples, query_and_size):
        query, _pattern_count = query_and_size
        id_space = SparqlEngine.from_graph(triples, _CONFIGS["cost"])
        term_space = SparqlEngine.from_graph(
            triples,
            EngineConfig(
                name="term-cost", store_type="memory",
                reorder_patterns=True, push_filters=True, planner="cost",
            ),
        )
        assert id_space.query(query).as_multiset() == term_space.query(query).as_multiset()


class TestExplainProperties:
    @given(small_graphs(), random_queries())
    @settings(max_examples=60, deadline=None)
    def test_explain_lists_every_pattern_exactly_once(self, triples, query_and_size):
        query, pattern_count = query_and_size
        engine = SparqlEngine.from_graph(triples, _CONFIGS["cost"])
        report = engine.explain(query)
        planned = report.planned_patterns()
        assert len(planned) == pattern_count
        _parsed, tree = engine.plan(query)
        expected = sorted(
            pattern.n3()
            for bgp in algebra.collect_bgps(tree)
            for pattern in bgp.patterns
        )
        assert sorted(pattern.n3() for pattern in planned) == expected

    @given(small_graphs(), random_queries())
    @settings(max_examples=30, deadline=None)
    def test_explain_result_count_matches_query(self, triples, query_and_size):
        query, _pattern_count = query_and_size
        engine = SparqlEngine.from_graph(triples, _CONFIGS["cost"])
        assert engine.explain(query).result_count == len(engine.query(query))
