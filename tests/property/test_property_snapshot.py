"""Property-based tests: snapshots are lossless for any store content."""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import BNode, Literal, Triple, URIRef
from repro.store import IndexedStore, MemoryStore, load_snapshot, save_snapshot

# A small universe with every term kind the snapshot format serializes:
# URIs, blank nodes, and plain / typed / language-tagged literals with
# characters that exercise the UTF-8 blob encoding.
_locals = st.sampled_from(list(string.ascii_lowercase[:6]))
uris = _locals.map(lambda local: URIRef("http://t/" + local))
bnodes = _locals.map(lambda local: BNode("b" + local))
_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=12
)
plain_literals = _texts.map(Literal)
typed_literals = st.integers(min_value=0, max_value=9).map(Literal)
lang_literals = st.tuples(_texts, st.sampled_from(["en", "de"])).map(
    lambda pair: Literal(pair[0], language=pair[1])
)
subjects = st.one_of(uris, bnodes)
objects = st.one_of(uris, bnodes, plain_literals, typed_literals, lang_literals)
triples = st.builds(Triple, subjects, uris, objects)
triple_lists = st.lists(triples, max_size=50)

maybe_uri = st.one_of(st.none(), uris)
maybe_object = st.one_of(st.none(), uris, typed_literals)


class TestIndexedSnapshotRoundTrip:
    @given(items=triple_lists)
    @settings(max_examples=60, deadline=None)
    def test_triple_multiset_identical(self, items, tmp_path_factory):
        store = IndexedStore(items)
        path = tmp_path_factory.mktemp("snap") / "store.sp2b"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert set(loaded.triples()) == set(items)
        assert len(loaded) == len(set(items))

    @given(items=triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_dictionary_ids_stable_and_statistics_equal(self, items, tmp_path_factory):
        store = IndexedStore(items)
        path = tmp_path_factory.mktemp("snap") / "store.sp2b"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        for triple in set(items):
            for term in triple:
                assert loaded.dictionary.lookup(term) == store.dictionary.lookup(term)
        assert loaded.statistics == store.statistics

    @given(items=triple_lists, s=maybe_uri, p=maybe_uri, o=maybe_object)
    @settings(max_examples=40, deadline=None)
    def test_loaded_store_answers_patterns_like_original(
        self, items, s, p, o, tmp_path_factory
    ):
        store = IndexedStore(items)
        path = tmp_path_factory.mktemp("snap") / "store.sp2b"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert set(loaded.triples(s, p, o)) == set(store.triples(s, p, o))
        assert loaded.count(s, p, o) == store.count(s, p, o)
        assert loaded.estimate_count(s, p, o) == store.estimate_count(s, p, o)

    @given(items=triple_lists)
    @settings(max_examples=30, deadline=None)
    def test_save_load_save_is_stable(self, items, tmp_path_factory):
        # A loaded store must serialize back to an equivalent snapshot
        # (ids, statistics, and indexes all intact after one full cycle).
        root = tmp_path_factory.mktemp("snap")
        store = IndexedStore(items)
        save_snapshot(store, root / "one.sp2b")
        first = load_snapshot(root / "one.sp2b")
        save_snapshot(first, root / "two.sp2b")
        second = load_snapshot(root / "two.sp2b")
        assert set(second.triples()) == set(store.triples())
        assert second.statistics == store.statistics


# The memory-store payload is N-Triples text, so its literals must stay
# within the serializer's escapable alphabet (same restriction as the
# N-Triples round-trip property tests); the binary indexed format above
# deliberately gets the full unicode range instead.
_nt_texts = st.text(
    alphabet=string.ascii_letters + string.digits + ' .,:;!?"\'\\\n\t-_()[]',
    max_size=12,
)
nt_objects = st.one_of(
    uris, bnodes, _nt_texts.map(Literal), typed_literals,
    st.tuples(_nt_texts, st.sampled_from(["en", "de"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)
nt_triples = st.builds(Triple, subjects, uris, nt_objects)


class TestMemorySnapshotRoundTrip:
    @given(items=st.lists(nt_triples, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_triple_set_identical(self, items, tmp_path_factory):
        store = MemoryStore(items)
        path = tmp_path_factory.mktemp("snap") / "store.sp2b"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert set(loaded.triples()) == set(items)
