"""Property: concurrent execution over a shared engine equals serial.

The serving subsystem's core assumption: N worker threads sharing one
engine, one store, and one :class:`PreparedQuery` each produce exactly the
multiset a serial execution produces — across both store families and all
three planner families.  Also hammers the lock-protected prepared-statement
cache: concurrent misses, hits, and evictions must keep the cache bounded
and the returned plans correct.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.rdf import BENCH, DC, FOAF, RDF, Literal, Triple, URIRef
from repro.sparql import EngineConfig, SelectResult, SparqlEngine

#: One configuration per (store family, planner family) pair a server could
#: be deployed with.
_CONFIGS = tuple(
    EngineConfig(
        name=f"{store}-{family}", store_type=store,
        reorder_patterns=True, push_filters=True, planner=family,
    )
    for store in ("indexed", "memory")
    for family in ("none", "greedy", "cost")
)

#: Worker threads per check and prepared-plan runs per thread.
THREADS = 4
RUNS_PER_THREAD = 3

#: A join + OPTIONAL query touching every shape the mini graphs generate.
QUERY = """
SELECT ?doc ?title ?name WHERE {
  ?doc rdf:type bench:Article .
  ?doc dc:title ?title
  OPTIONAL { ?doc dc:creator ?person . ?person foaf:name ?name }
}
"""


@st.composite
def small_graphs(draw):
    """Random but well-formed mini DBLP graphs (as in the cursor properties)."""
    triples = []
    persons = draw(st.lists(st.integers(min_value=0, max_value=4),
                            min_size=1, max_size=4, unique=True))
    for person_id in persons:
        person = URIRef(f"http://p/{person_id}")
        triples.append(Triple(person, RDF.type, FOAF.Person))
        triples.append(Triple(person, FOAF.name, Literal(f"Person {person_id}")))
    documents = draw(st.lists(st.integers(min_value=0, max_value=6),
                              min_size=1, max_size=6, unique=True))
    for doc_id in documents:
        doc = URIRef(f"http://d/{doc_id}")
        triples.append(Triple(doc, RDF.type, BENCH.Article))
        triples.append(Triple(doc, DC.title, Literal(f"Title {doc_id}")))
        author_count = draw(st.integers(min_value=0, max_value=3))
        for index in range(author_count):
            author = URIRef(f"http://p/{persons[index % len(persons)]}")
            triples.append(Triple(doc, DC.creator, author))
    return triples


def _concurrent_results(runnable, count=THREADS):
    """Run ``runnable`` on ``count`` threads; returns results or raises."""
    results = [None] * count
    errors = []
    barrier = threading.Barrier(count)

    def work(index):
        try:
            barrier.wait()
            results[index] = runnable()
        except Exception as error:  # noqa: BLE001 - surfaced below
            barrier.abort()
            errors.append(error)

    threads = [
        threading.Thread(target=work, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestConcurrentExecutionEqualsSerial:
    @given(small_graphs())
    @settings(max_examples=10, deadline=None)
    def test_shared_prepared_query_across_threads(self, triples):
        for config in _CONFIGS:
            engine = SparqlEngine.from_graph(triples, config)
            prepared = engine.prepare(QUERY)
            serial = prepared.run().all()

            def run_many(prepared=prepared, variables=prepared.variables):
                return [
                    SelectResult(variables, list(prepared.run()))
                    for _ in range(RUNS_PER_THREAD)
                ]

            for thread_results in _concurrent_results(run_many):
                for result in thread_results:
                    assert result == serial, f"{config.name} diverged"

    @given(small_graphs())
    @settings(max_examples=10, deadline=None)
    def test_threads_sharing_engine_statement_cache(self, triples):
        """All threads go through prepare_cached on one engine at once."""
        for config in _CONFIGS:
            engine = SparqlEngine.from_graph(triples, config)
            serial = engine.query(QUERY)

            def run_cached(engine=engine):
                prepared = engine.prepare_cached(QUERY)
                return SelectResult(prepared.variables, list(prepared.run()))

            for result in _concurrent_results(run_cached):
                assert result == serial, f"{config.name} diverged"
            # Every thread shared the single cached entry.
            assert len(engine._prepared_cache) == 1


class TestStatementCacheUnderContention:
    def _texts(self, count):
        # Distinct texts that stay cheap to prepare and to run.
        return [
            f"SELECT ?s WHERE {{ ?s rdf:type foaf:Person }} LIMIT {n + 1}"
            for n in range(count)
        ]

    def test_lru_bound_holds_under_concurrent_eviction(self):
        engine = SparqlEngine.from_graph(
            [Triple(URIRef("http://p/0"), RDF.type, FOAF.Person)]
        )
        engine.PREPARED_CACHE_SIZE = 8
        texts = self._texts(32)
        counter = iter(range(THREADS))
        lock = threading.Lock()

        def churn():
            with lock:
                index = next(counter)
            rows = 0
            for offset in range(len(texts)):
                text = texts[(index * 7 + offset) % len(texts)]
                prepared = engine.prepare_cached(text)
                rows += len(prepared.run().all())
            return rows

        results = _concurrent_results(churn)
        # One Person matches every text, so each thread saw one row per run.
        assert results == [len(texts)] * THREADS
        assert len(engine._prepared_cache) <= 8

    def test_racing_threads_converge_on_one_prepared_instance(self):
        engine = SparqlEngine.from_graph(
            [Triple(URIRef("http://p/0"), RDF.type, FOAF.Person)]
        )
        text = "SELECT ?s WHERE { ?s rdf:type foaf:Person }"
        seen = _concurrent_results(lambda: engine.prepare_cached(text), count=8)
        # After the race settles, the cache holds exactly one entry and every
        # later call returns it.
        assert len(engine._prepared_cache) == 1
        cached = engine.prepare_cached(text)
        assert cached in seen