"""Property-based tests for SPARQL semantics invariants."""

from hypothesis import given, settings, strategies as st

from repro.rdf import DC, FOAF, RDF, BENCH, Literal, Triple, URIRef
from repro.sparql import (
    ENGINE_PRESETS,
    NATIVE_BASELINE,
    NATIVE_OPTIMIZED,
    Binding,
    SparqlEngine,
)

# -- binding strategies ---------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])
_values = st.sampled_from([URIRef("http://v/1"), URIRef("http://v/2"), Literal("x")])
bindings = st.dictionaries(_names, _values, max_size=4).map(Binding)


class TestBindingAlgebra:
    @given(bindings, bindings)
    @settings(max_examples=150, deadline=None)
    def test_compatibility_is_symmetric(self, left, right):
        assert left.compatible(right) == right.compatible(left)

    @given(bindings, bindings)
    @settings(max_examples=150, deadline=None)
    def test_merge_preserves_both_sides_when_compatible(self, left, right):
        if left.compatible(right):
            merged = left.merge(right)
            for name in left.variables():
                assert merged.get(name) == left.get(name)
            for name in right.variables():
                assert merged.get(name) == right.get(name)

    @given(bindings)
    @settings(max_examples=80, deadline=None)
    def test_every_binding_is_self_compatible(self, binding):
        assert binding.compatible(binding)

    @given(bindings, bindings, bindings)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_associative_for_pairwise_compatible(self, a, b, c):
        pairwise = a.compatible(b) and b.compatible(c) and a.compatible(c)
        if pairwise:
            assert a.merge(b).merge(c) == a.merge(b.merge(c))


# -- generated-graph strategies ---------------------------------------------------

_person_ids = st.integers(min_value=0, max_value=5)
_doc_ids = st.integers(min_value=0, max_value=8)
_years = st.integers(min_value=1990, max_value=1995)


@st.composite
def small_graphs(draw):
    """Random but well-formed mini DBLP graphs."""
    triples = []
    persons = draw(st.lists(_person_ids, min_size=1, max_size=5, unique=True))
    for person_id in persons:
        person = URIRef(f"http://p/{person_id}")
        triples.append(Triple(person, RDF.type, FOAF.Person))
        triples.append(Triple(person, FOAF.name, Literal(f"Person {person_id}")))
    documents = draw(st.lists(_doc_ids, min_size=1, max_size=8, unique=True))
    for doc_id in documents:
        doc = URIRef(f"http://d/{doc_id}")
        triples.append(Triple(doc, RDF.type, BENCH.Article))
        triples.append(Triple(doc, DC.title, Literal(f"Title {doc_id}")))
        year = draw(_years)
        triples.append(Triple(doc, URIRef("http://purl.org/dc/terms/issued"), Literal(year)))
        author_count = draw(st.integers(min_value=0, max_value=3))
        for index in range(author_count):
            author = URIRef(f"http://p/{persons[index % len(persons)]}")
            triples.append(Triple(doc, DC.creator, author))
    return triples


QUERY_ALL_DOCS = "SELECT ?d ?p WHERE { ?d rdf:type bench:Article . ?d dc:creator ?p }"
QUERY_DISTINCT = "SELECT DISTINCT ?p WHERE { ?d dc:creator ?p }"
QUERY_ORDERED = "SELECT ?yr WHERE { ?d dcterms:issued ?yr } ORDER BY ?yr"
QUERY_LIMIT = "SELECT ?d WHERE { ?d rdf:type bench:Article } LIMIT 3"
QUERY_OPTIONAL = (
    "SELECT ?d ?p WHERE { ?d rdf:type bench:Article OPTIONAL { ?d dc:creator ?p } }"
)


class TestEngineSemantics:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_all_engine_presets_agree(self, triples):
        engines = [SparqlEngine.from_graph(triples, config) for config in ENGINE_PRESETS]
        for query in (QUERY_ALL_DOCS, QUERY_DISTINCT, QUERY_OPTIONAL):
            reference = engines[0].query(query).as_multiset()
            for engine in engines[1:]:
                assert engine.query(query).as_multiset() == reference

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_distinct_never_returns_duplicates(self, triples):
        engine = SparqlEngine.from_graph(triples, NATIVE_OPTIMIZED)
        result = engine.query(QUERY_DISTINCT)
        assert all(count == 1 for count in result.as_multiset().values())

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_order_by_yields_sorted_years(self, triples):
        engine = SparqlEngine.from_graph(triples, NATIVE_OPTIMIZED)
        years = [b.get("yr").to_python() for b in engine.query(QUERY_ORDERED)]
        assert years == sorted(years)

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_limit_caps_result_size(self, triples):
        engine = SparqlEngine.from_graph(triples, NATIVE_OPTIMIZED)
        assert len(engine.query(QUERY_LIMIT)) <= 3

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_optional_is_superset_of_inner_join(self, triples):
        engine = SparqlEngine.from_graph(triples, NATIVE_BASELINE)
        joined = engine.query(QUERY_ALL_DOCS)
        optional = engine.query(QUERY_OPTIONAL)
        assert len(optional) >= len(joined)
        # Every joined solution also appears in the OPTIONAL result.
        optional_rows = set(optional.as_multiset())
        for row in joined.as_multiset():
            assert row in optional_rows

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_ask_consistent_with_select(self, triples):
        engine = SparqlEngine.from_graph(triples, NATIVE_OPTIMIZED)
        has_rows = len(engine.query(QUERY_ALL_DOCS)) > 0
        ask = engine.ask("ASK { ?d rdf:type bench:Article . ?d dc:creator ?p }")
        assert ask == has_rows
