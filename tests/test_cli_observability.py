"""CLI tests for the observability flags: --profile and --scrape-metrics.

The serve-side flags (--metrics/--access-log/--slow-query-ms) are
exercised against a live server in ``tests/server/test_metrics_endpoint``
and end-to-end by the CI serve smoke test; here we cover the pure-CLI
surfaces that need no running server.
"""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def document(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-cli") / "doc.nt"
    assert main(["generate", str(path), "--triples", "2000"]) == 0
    return str(path)


class TestQueryProfile:
    def test_profile_prints_stage_and_step_timings(self, document, capsys):
        capsys.readouterr()
        assert main(["query", document, "--query", "Q2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "stages:" in out
        for stage in ("parse=", "plan=", "execute="):
            assert stage in out
        assert "time=" in out
        assert "est=" in out and "actual=" in out

    def test_profile_and_explain_share_the_traced_report(self, document,
                                                         capsys):
        capsys.readouterr()
        assert main(["query", document, "--query", "Q1", "--explain"]) == 0
        out = capsys.readouterr().out
        # --explain rides the same traced path, so it reports stages too.
        assert "stages:" in out


class TestLoadtestScrapeMetrics:
    def test_scrape_metrics_requires_url(self, document, capsys):
        with pytest.raises(SystemExit):
            main(["loadtest", "--document", document, "--duration", "0.1",
                  "--scrape-metrics"])
        assert "--scrape-metrics requires --url" in capsys.readouterr().err
