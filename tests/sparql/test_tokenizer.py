"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql.errors import SparqlSyntaxError
from repro.sparql.tokenizer import tokenize


def kinds(text):
    return [token.kind for token in tokenize(text) if token.kind != "EOF"]


def values(text):
    return [token.value for token in tokenize(text) if token.kind != "EOF"]


class TestBasicTokens:
    def test_keywords_are_recognised_case_insensitively(self):
        assert kinds("SELECT select Select") == ["KEYWORD"] * 3

    def test_variables(self):
        tokens = tokenize("?x $y")
        assert tokens[0].kind == "VAR" and tokens[0].value == "?x"
        assert tokens[1].kind == "VAR" and tokens[1].value == "$y"

    def test_iri(self):
        assert kinds("<http://example.org/a>") == ["IRI"]

    def test_qname(self):
        assert kinds("dc:title") == ["QNAME"]

    def test_qname_does_not_swallow_trailing_dot(self):
        assert kinds("bench:Journal.") == ["QNAME", "DOT"]
        assert values("bench:Journal.")[0] == "bench:Journal"

    def test_prefixed_namespace_token(self):
        assert kinds("rdf:") == ["PNAME_NS"]

    def test_string_literal(self):
        assert kinds('"hello world"') == ["STRING"]

    def test_string_with_escaped_quote(self):
        assert kinds('"say \\"hi\\""') == ["STRING"]

    def test_typed_literal_tokens(self):
        assert kinds('"Journal 1 (1940)"^^xsd:string') == ["STRING", "TYPED_HINT", "QNAME"]

    def test_numbers(self):
        assert kinds("10 50") == ["NUMBER", "NUMBER"]

    def test_blank_node(self):
        assert kinds("_:b1") == ["BLANK"]

    def test_comments_and_whitespace_dropped(self):
        assert kinds("SELECT # a comment\n ?x") == ["KEYWORD", "VAR"]


class TestOperators:
    def test_comparison_operators(self):
        assert kinds("= != < > <= >=") == ["EQ", "NEQ", "LT", "GT", "LE", "GE"]

    def test_logical_operators(self):
        assert kinds("&& || !") == ["AND", "OR", "BANG"]

    def test_not_bound_sequence(self):
        assert kinds("!bound(?x)") == ["BANG", "KEYWORD", "LPAREN", "VAR", "RPAREN"]

    def test_compact_comparison_between_variables(self):
        # As written in Q4: FILTER (?name1<?name2)
        assert kinds("?name1<?name2") == ["VAR", "LT", "VAR"]

    def test_compact_inequality(self):
        assert kinds("?author!=?erdoes") == ["VAR", "NEQ", "VAR"]

    def test_braces_and_punctuation(self):
        assert kinds("{ } ( ) . ; ,") == [
            "LBRACE", "RBRACE", "LPAREN", "RPAREN", "DOT", "SEMICOLON", "COMMA",
        ]


class TestErrors:
    def test_unexpected_character_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("SELECT @@@")

    def test_error_reports_offset(self):
        with pytest.raises(SparqlSyntaxError) as excinfo:
            tokenize("SELECT ~")
        assert excinfo.value.position == 7

    def test_eof_token_is_appended(self):
        assert tokenize("")[-1].kind == "EOF"
