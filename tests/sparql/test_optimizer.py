"""Unit tests for triple-pattern reordering and filter pushing."""

import pytest

from repro.rdf import BENCH, DC, RDF, Literal, Triple, URIRef, Variable
from repro.sparql import (
    NATIVE_BASELINE,
    NATIVE_OPTIMIZED,
    SparqlEngine,
    optimize,
    parse_query,
    reorder_patterns,
    translate_query,
)
from repro.sparql import algebra
from repro.sparql.algebra import collect_bgps, walk
from repro.sparql.optimizer import split_conjuncts
from repro.sparql import ast
from repro.store import IndexedStore

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"


def build_store():
    """Many articles, one journal: rdf:type patterns are unselective,
    the title lookup is highly selective."""
    store = IndexedStore()
    journal = URIRef("http://x/journal1")
    store.add(Triple(journal, RDF.type, BENCH.Journal))
    store.add(Triple(journal, DC.title, Literal("Journal 1 (1940)", datatype=XSD_STRING)))
    for index in range(50):
        article = URIRef(f"http://x/article{index}")
        store.add(Triple(article, RDF.type, BENCH.Article))
        store.add(Triple(article, DC.title, Literal(f"Paper {index}", datatype=XSD_STRING)))
        store.add(Triple(article, DC.creator, URIRef(f"http://x/person{index % 7}")))
    return store


def var(name):
    return Variable(name)


class TestReordering:
    def test_selective_pattern_moves_first(self):
        store = build_store()
        patterns = [
            Triple(var("a"), RDF.type, BENCH.Article),
            Triple(var("a"), DC.title, Literal("Paper 3", datatype=XSD_STRING)),
        ]
        ordered = reorder_patterns(patterns, store)
        assert ordered[0].predicate == DC.title

    def test_connected_patterns_preferred_over_cheap_disconnected(self):
        store = build_store()
        patterns = [
            Triple(var("a"), DC.title, Literal("Paper 3", datatype=XSD_STRING)),
            Triple(var("a"), DC.creator, var("p")),
            Triple(var("j"), RDF.type, BENCH.Journal),
        ]
        ordered = reorder_patterns(patterns, store)
        # After the selective title pattern, the creator pattern (which shares
        # ?a) comes before the disconnected journal pattern.
        assert ordered[1].predicate == DC.creator

    def test_reordering_preserves_pattern_multiset(self):
        store = build_store()
        patterns = [
            Triple(var("a"), RDF.type, BENCH.Article),
            Triple(var("a"), DC.creator, var("p")),
            Triple(var("a"), DC.title, var("t")),
        ]
        ordered = reorder_patterns(patterns, store)
        assert sorted(ordered, key=repr) == sorted(patterns, key=repr)

    def test_single_pattern_untouched(self):
        patterns = [Triple(var("a"), RDF.type, BENCH.Article)]
        assert reorder_patterns(patterns, build_store()) == patterns

    def test_reordering_without_store_uses_static_heuristic(self):
        patterns = [
            Triple(var("s"), var("p"), var("o")),
            Triple(var("s"), RDF.type, BENCH.Article),
        ]
        ordered = reorder_patterns(patterns, None)
        assert ordered[0].predicate == RDF.type


class TestFilterPushing:
    def test_split_conjuncts_flattens_nested_and(self):
        a = ast.Bound(var("a"))
        b = ast.Bound(var("b"))
        c = ast.Bound(var("c"))
        assert split_conjuncts(ast.And(ast.And(a, b), c)) == [a, b, c]

    def test_filter_pushed_into_bgp(self):
        query = parse_query(
            "SELECT ?a WHERE { ?a rdf:type bench:Article . "
            "?a ?property ?value FILTER (?property = swrc:pages) }"
        )
        tree = optimize(translate_query(query), build_store())
        bgp = collect_bgps(tree)[0]
        assert bgp.inline_filters, "filter should have been pushed into the BGP"
        filters = [n for n in walk(tree) if isinstance(n, algebra.Filter)]
        assert not filters, "no residual outer Filter expected"

    def test_filter_position_is_first_point_where_vars_are_bound(self):
        query = parse_query(
            "SELECT ?a WHERE { ?a rdf:type bench:Article . "
            "?a dc:creator ?p FILTER (?a != ?p) }"
        )
        tree = optimize(translate_query(query), build_store(), reorder=False)
        bgp = collect_bgps(tree)[0]
        positions = [pos for pos, _expr in bgp.inline_filters]
        assert positions == [1]

    def test_unpushable_filter_stays_outside(self):
        # bound(?a2) references an OPTIONAL-only variable: must not be pushed.
        query = parse_query(
            "SELECT ?d WHERE { ?d rdf:type bench:Article "
            "OPTIONAL { ?d dc:creator ?a2 } FILTER (!bound(?a2)) }"
        )
        tree = optimize(translate_query(query), build_store())
        filters = [n for n in walk(tree) if isinstance(n, algebra.Filter)]
        assert len(filters) == 1

    def test_push_filters_flag_disables_pushing(self):
        query = parse_query(
            "SELECT ?a WHERE { ?a rdf:type bench:Article . "
            "?a ?property ?value FILTER (?property = swrc:pages) }"
        )
        tree = optimize(translate_query(query), build_store(), push_filters=False)
        filters = [n for n in walk(tree) if isinstance(n, algebra.Filter)]
        assert len(filters) == 1
        assert not collect_bgps(tree)[0].inline_filters


class TestSemanticsPreserved:
    QUERIES = (
        "SELECT ?a ?p WHERE { ?a rdf:type bench:Article . ?a dc:creator ?p }",
        "SELECT ?a WHERE { ?a rdf:type bench:Article . ?a dc:title ?t "
        'FILTER (?t = "Paper 3"^^xsd:string) }',
        "SELECT DISTINCT ?p WHERE { { ?a dc:creator ?p } UNION { ?a dc:title ?p } }",
        "SELECT ?a ?t WHERE { ?a rdf:type bench:Article "
        "OPTIONAL { ?a dc:title ?t } }",
    )

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_optimized_equals_unoptimized(self, query_text):
        graph = list(build_store())
        baseline = SparqlEngine.from_graph(graph, NATIVE_BASELINE)
        optimized = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
        assert (baseline.query(query_text).as_multiset()
                == optimized.query(query_text).as_multiset())
