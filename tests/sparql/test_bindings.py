"""Unit tests for solution mappings (Binding)."""

import pytest

from repro.rdf import Literal, URIRef, Variable
from repro.sparql import EMPTY_BINDING, Binding

A = URIRef("http://example.org/a")
B = URIRef("http://example.org/b")


class TestAccess:
    def test_get_by_name_and_variable(self):
        binding = Binding({"x": A})
        assert binding.get("x") == A
        assert binding.get(Variable("x")) == A
        assert binding.get("?x") == A

    def test_get_missing_returns_default(self):
        assert Binding().get("x") is None
        assert Binding().get("x", B) == B

    def test_is_bound_and_contains(self):
        binding = Binding({"x": A})
        assert binding.is_bound("x")
        assert Variable("x") in binding
        assert "y" not in binding

    def test_variables_and_items(self):
        binding = Binding({"x": A, "y": B})
        assert binding.variables() == {"x", "y"}
        assert dict(binding.items()) == {"x": A, "y": B}

    def test_getitem_raises_for_missing(self):
        with pytest.raises(KeyError):
            Binding()["x"]

    def test_immutable(self):
        binding = Binding({"x": A})
        with pytest.raises(AttributeError):
            binding.extra = 1

    def test_variable_keys_normalised(self):
        binding = Binding({Variable("x"): A})
        assert binding.get("x") == A


class TestAlgebra:
    def test_compatible_on_disjoint_domains(self):
        assert Binding({"x": A}).compatible(Binding({"y": B}))

    def test_compatible_on_agreeing_shared_variable(self):
        assert Binding({"x": A, "y": B}).compatible(Binding({"x": A}))

    def test_incompatible_on_conflicting_shared_variable(self):
        assert not Binding({"x": A}).compatible(Binding({"x": B}))

    def test_empty_binding_compatible_with_everything(self):
        assert EMPTY_BINDING.compatible(Binding({"x": A}))
        assert Binding({"x": A}).compatible(EMPTY_BINDING)

    def test_merge_unions_mappings(self):
        merged = Binding({"x": A}).merge(Binding({"y": B}))
        assert merged.get("x") == A and merged.get("y") == B

    def test_extend_adds_one_variable(self):
        extended = Binding({"x": A}).extend(Variable("y"), B)
        assert extended.get("y") == B
        assert Binding({"x": A}).get("y") is None

    def test_project_restricts_variables(self):
        binding = Binding({"x": A, "y": B})
        projected = binding.project([Variable("x")])
        assert projected.variables() == {"x"}

    def test_project_ignores_unbound_variables(self):
        projected = Binding({"x": A}).project([Variable("x"), Variable("z")])
        assert projected.variables() == {"x"}


class TestEqualityAndHashing:
    def test_equality(self):
        assert Binding({"x": A}) == Binding({"x": A})
        assert Binding({"x": A}) != Binding({"x": B})

    def test_hash_consistency(self):
        assert hash(Binding({"x": A})) == hash(Binding({"x": A}))

    def test_usable_in_sets(self):
        solutions = {Binding({"x": A}), Binding({"x": A}), Binding({"x": B})}
        assert len(solutions) == 2

    def test_hash_is_computed_once_and_cached(self):
        binding = Binding({"x": A})
        first = hash(binding)
        # The cached value is stored on the instance and reused afterwards.
        assert object.__getattribute__(binding, "_hash") == first
        assert hash(binding) == first

    def test_cached_hash_matches_fresh_equal_binding(self):
        binding = Binding({"x": A, "y": B})
        hash(binding)
        assert hash(binding) == hash(Binding({"y": B, "x": A}))

    def test_len(self):
        assert len(Binding({"x": A, "y": Literal("v")})) == 2
        assert len(EMPTY_BINDING) == 0
