"""SPARQL 1.1 Update: parsing and execution across both store families.

Covers the four supported forms (``INSERT DATA``, ``DELETE DATA``,
``DELETE/INSERT ... WHERE``, ``DELETE WHERE``), the SPARQL 1.1 semantics
corners (pre-update WHERE evaluation, delete-before-insert, unbound
template variables, fresh blank nodes), and the engine-level integration:
``engine.update`` plus the prepared-statement cache invalidation a version
bump must trigger.
"""

import pytest

from repro.rdf import BNode, URIRef, Variable
from repro.sparql import EngineConfig, SparqlEngine
from repro.sparql.ast import DeleteDataUpdate, InsertDataUpdate, ModifyUpdate
from repro.sparql.errors import SparqlSyntaxError
from repro.sparql.parser import parse_update
from repro.sparql.update import UpdateResult, execute_update
from repro.store import IndexedStore, MemoryStore, MvccStore

S = URIRef("http://example.org/s")
P = URIRef("http://example.org/p")
NAME = URIRef("http://example.org/name")
NICK = URIRef("http://example.org/nick")

#: Every (store family, MVCC wrapper) combination updates must work on.
STORE_BUILDERS = {
    "memory": MemoryStore,
    "indexed": IndexedStore,
    "mvcc-memory": lambda: MvccStore(MemoryStore()),
    "mvcc-indexed": lambda: MvccStore(IndexedStore()),
}

ENGINE_CONFIGS = (
    EngineConfig(name="mem-greedy", store_type="memory", planner="greedy"),
    EngineConfig(name="idx-cost", store_type="indexed", planner="cost"),
    EngineConfig(name="idx-none", store_type="indexed", planner="none",
                 reorder_patterns=False),
)


class TestParsing:
    def test_insert_data(self):
        update = parse_update(
            'INSERT DATA { <http://example.org/s> <http://example.org/p> "v" . }'
        )
        assert isinstance(update, InsertDataUpdate)
        assert len(update.triples) == 1
        assert update.triples[0].subject == S

    def test_delete_data(self):
        update = parse_update(
            "DELETE DATA { <http://example.org/s> <http://example.org/p> 1 . }"
        )
        assert isinstance(update, DeleteDataUpdate)
        assert len(update.triples) == 1

    def test_prefixes_apply_to_template(self):
        update = parse_update(
            "PREFIX ex: <http://example.org/>\n"
            "INSERT DATA { ex:s ex:p ex:o . }"
        )
        assert update.triples[0].subject == S

    def test_modify_form(self):
        update = parse_update(
            "PREFIX ex: <http://example.org/>\n"
            "DELETE { ?s ex:name ?old } INSERT { ?s ex:nick ?old }\n"
            "WHERE { ?s ex:name ?old }"
        )
        assert isinstance(update, ModifyUpdate)
        assert len(update.delete_templates) == 1
        assert len(update.insert_templates) == 1
        assert update.delete_templates[0].predicate == NAME
        assert update.insert_templates[0].predicate == NICK

    def test_delete_where_sugar(self):
        update = parse_update(
            "DELETE WHERE { ?s <http://example.org/p> ?o }"
        )
        assert isinstance(update, ModifyUpdate)
        assert update.insert_templates == []
        assert len(update.delete_templates) == 1
        assert update.delete_templates[0].subject == Variable("s")

    def test_insert_data_rejects_variables(self):
        with pytest.raises(SparqlSyntaxError):
            parse_update("INSERT DATA { ?s <http://example.org/p> 1 . }")

    def test_query_text_is_not_an_update(self):
        with pytest.raises(SparqlSyntaxError):
            parse_update("SELECT ?s WHERE { ?s ?p ?o }")


@pytest.mark.parametrize("store_name", sorted(STORE_BUILDERS))
class TestExecution:
    def build(self, store_name):
        return STORE_BUILDERS[store_name]()

    def test_insert_data_then_delete_data(self, store_name):
        store = self.build(store_name)
        result = execute_update(
            store,
            'INSERT DATA { <http://example.org/s> <http://example.org/p> "v" . }',
        )
        assert isinstance(result, UpdateResult)
        assert result.inserted == 1 and result.deleted == 0
        assert len(store) == 1
        result = execute_update(
            store,
            'DELETE DATA { <http://example.org/s> <http://example.org/p> "v" . }',
        )
        assert result.deleted == 1
        assert len(store) == 0

    def test_insert_data_is_idempotent(self, store_name):
        store = self.build(store_name)
        text = "INSERT DATA { <http://example.org/s> <http://example.org/p> 1 . }"
        assert execute_update(store, text).inserted == 1
        # Set semantics: re-inserting an existing triple changes nothing.
        assert execute_update(store, text).inserted == 0
        assert len(store) == 1

    def test_modify_renames_property(self, store_name):
        store = self.build(store_name)
        execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            'INSERT DATA { ex:a ex:name "A" . ex:b ex:name "B" . }',
        )
        result = execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            "DELETE { ?s ex:name ?v } INSERT { ?s ex:nick ?v }\n"
            "WHERE { ?s ex:name ?v }",
        )
        assert result.matched == 2
        assert result.deleted == 2 and result.inserted == 2
        assert store.count(None, NAME, None) == 0
        assert store.count(None, NICK, None) == 2

    def test_delete_where_removes_matches(self, store_name):
        store = self.build(store_name)
        execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            "INSERT DATA { ex:a ex:p 1 . ex:b ex:p 2 . ex:c ex:q 3 . }",
        )
        result = execute_update(
            store, "DELETE WHERE { ?s <http://example.org/p> ?o }"
        )
        assert result.deleted == 2
        assert len(store) == 1

    def test_where_sees_pre_update_state(self, store_name):
        # Inserting ex:p triples from an ex:p WHERE must not feed on its own
        # output: the WHERE solutions come from the pre-update generation.
        store = self.build(store_name)
        execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            "INSERT DATA { ex:a ex:p ex:b . ex:b ex:p ex:c . }",
        )
        result = execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            "INSERT { ?o ex:p ?s } WHERE { ?s ex:p ?o }",
        )
        assert result.matched == 2
        assert result.inserted == 2
        assert len(store) == 4

    def test_unbound_template_variable_skips_solution(self, store_name):
        store = self.build(store_name)
        execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            'INSERT DATA { ex:a ex:name "A" . ex:b ex:name "B" . '
            'ex:a ex:nick "aa" . }',
        )
        # ?nick is unbound for ex:b: its solution instantiates nothing.
        result = execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            "INSERT { ?s ex:p ?nick } WHERE "
            "{ ?s ex:name ?v . OPTIONAL { ?s ex:nick ?nick } }",
        )
        assert result.matched == 2
        assert result.inserted == 1

    def test_insert_template_bnodes_are_fresh_per_solution(self, store_name):
        store = self.build(store_name)
        execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            'INSERT DATA { ex:a ex:name "A" . ex:b ex:name "B" . }',
        )
        result = execute_update(
            store,
            "PREFIX ex: <http://example.org/>\n"
            "INSERT { ?s ex:attr _:n . _:n ex:val ?v } WHERE { ?s ex:name ?v }",
        )
        # Two solutions, two triples each; the blank node is shared within a
        # solution and distinct across solutions.
        assert result.inserted == 4
        attr = URIRef("http://example.org/attr")
        minted = {t.object for t in store.triples(None, attr, None)}
        assert len(minted) == 2
        assert all(isinstance(node, BNode) for node in minted)

    def test_version_advances_only_on_change(self, store_name):
        store = self.build(store_name)
        before = store.version
        result = execute_update(
            store, "INSERT DATA { <http://x/s> <http://x/p> 1 . }"
        )
        assert store.version > before
        assert result.version == store.version
        # A no-op update (deleting an absent triple) publishes nothing.
        at = store.version
        execute_update(store, "DELETE DATA { <http://x/zz> <http://x/p> 1 . }")
        if store_name.startswith("mvcc"):
            assert store.version == at


class TestEngineIntegration:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS, ids=lambda c: c.name)
    def test_update_visible_to_queries(self, config):
        engine = SparqlEngine(config)
        engine.store = MvccStore(engine.store)
        engine.update(
            "PREFIX ex: <http://example.org/>\n"
            'INSERT DATA { ex:a ex:name "A" . ex:b ex:name "B" . }'
        )
        rows = engine.query(
            "PREFIX ex: <http://example.org/>\n"
            "SELECT ?v WHERE { ?s ex:name ?v }"
        )
        assert sorted(binding.get("v").lexical for binding in rows) == ["A", "B"]
        engine.update(
            "PREFIX ex: <http://example.org/>\n"
            'DELETE DATA { ex:a ex:name "A" . }'
        )
        rows = engine.query(
            "PREFIX ex: <http://example.org/>\n"
            "SELECT ?v WHERE { ?s ex:name ?v }"
        )
        assert [binding.get("v").lexical for binding in rows] == ["B"]

    def test_update_invalidates_prepared_cache(self):
        # Stale-plan regression: a version bump must evict cached prepared
        # statements, whose planner statistics described the old generation.
        engine = SparqlEngine(EngineConfig(name="t", store_type="indexed",
                                           planner="cost"))
        engine.store = MvccStore(engine.store)
        text = "SELECT ?s WHERE { ?s <http://example.org/p> ?o }"
        first = engine.prepare_cached(text)
        assert engine.prepare_cached(text) is first
        engine.update("INSERT DATA { <http://x/s> <http://example.org/p> 1 . }")
        fresh = engine.prepare_cached(text)
        assert fresh is not first
        assert engine.prepare_cached(text) is fresh

    def test_noop_update_keeps_cache(self):
        engine = SparqlEngine(EngineConfig(name="t", store_type="indexed"))
        engine.store = MvccStore(engine.store)
        text = "SELECT ?s WHERE { ?s <http://example.org/p> ?o }"
        first = engine.prepare_cached(text)
        engine.update("DELETE DATA { <http://x/s> <http://x/p> 1 . }")
        assert engine.prepare_cached(text) is first

    def test_running_cursor_is_snapshot_pinned(self):
        engine = SparqlEngine(EngineConfig(name="t", store_type="indexed"))
        engine.store = MvccStore(engine.store)
        engine.update(
            "PREFIX ex: <http://example.org/>\n"
            "INSERT DATA { ex:a ex:p 1 . ex:b ex:p 2 . ex:c ex:p 3 . }"
        )
        prepared = engine.prepare_cached(
            "SELECT ?s WHERE { ?s <http://example.org/p> ?o }"
        )
        with prepared.run() as cursor:
            iterator = iter(cursor)
            next(iterator)
            # A concurrent delete publishes a new generation; the open
            # cursor keeps reading its pinned one.
            engine.update("DELETE WHERE { ?s <http://example.org/p> ?o }")
            remaining = sum(1 for _ in iterator)
        assert remaining == 2
        assert len(engine.store) == 0

    def test_update_on_plain_store_works_in_place(self):
        engine = SparqlEngine(EngineConfig(name="t", store_type="memory"))
        result = engine.update(
            "INSERT DATA { <http://x/s> <http://x/p> 1 . }"
        )
        assert result.inserted == 1
        assert len(engine.store) == 1
