"""Tests for the GROUP BY / aggregate extension (paper Section VII)."""

import pytest

from repro.queries import AGGREGATE_QUERIES, get_aggregate_query
from repro.rdf import BENCH, DC, DCTERMS, FOAF, RDF, RDFS, BNode, Graph, Literal, Triple, URIRef
from repro.sparql import ENGINE_PRESETS, NATIVE_OPTIMIZED, SparqlEngine, SparqlSyntaxError, parse_query


def build_graph():
    """Two articles (1990, 1995) and one inproceedings (1995), three persons."""
    g = Graph()
    g.add(Triple(BENCH.Article, RDFS.subClassOf, FOAF.Document))
    g.add(Triple(BENCH.Inproceedings, RDFS.subClassOf, FOAF.Document))
    alice, bob, carol = BNode("alice"), BNode("bob"), BNode("carol")
    for person in (alice, bob, carol):
        g.add(Triple(person, RDF.type, FOAF.Person))
    a1 = URIRef("http://x/a1")
    a2 = URIRef("http://x/a2")
    p1 = URIRef("http://x/p1")
    for doc, cls, year in ((a1, BENCH.Article, 1990), (a2, BENCH.Article, 1995),
                           (p1, BENCH.Inproceedings, 1995)):
        g.add(Triple(doc, RDF.type, cls))
        g.add(Triple(doc, DCTERMS.issued, Literal(year)))
    g.add(Triple(a1, DC.creator, alice))
    g.add(Triple(a2, DC.creator, alice))
    g.add(Triple(a2, DC.creator, bob))
    g.add(Triple(p1, DC.creator, carol))
    return g


@pytest.fixture(scope="module")
def engine():
    return SparqlEngine.from_graph(build_graph(), NATIVE_OPTIMIZED)


class TestParsing:
    def test_count_with_alias(self):
        query = parse_query("SELECT (COUNT(?d) AS ?n) WHERE { ?d rdf:type bench:Article }")
        assert query.is_aggregate_query()
        assert query.aggregates[0].function == "COUNT"
        assert query.aggregates[0].alias.name == "n"

    def test_count_star(self):
        query = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?d ?p ?o }")
        assert query.aggregates[0].variable is None

    def test_count_distinct(self):
        query = parse_query("SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?d dc:creator ?p }")
        assert query.aggregates[0].distinct is True

    def test_group_by_variables(self):
        query = parse_query(
            "SELECT ?yr (COUNT(?d) AS ?n) WHERE { ?d dcterms:issued ?yr } GROUP BY ?yr"
        )
        assert [v.name for v in query.group_by] == ["yr"]
        assert query.projected_variables()[-1].name == "n"

    def test_sum_star_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT (SUM(*) AS ?n) WHERE { ?d ?p ?o }")

    def test_missing_as_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT (COUNT(?d) ?n) WHERE { ?d ?p ?o }")

    def test_group_by_without_variables_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?d WHERE { ?d ?p ?o } GROUP BY")


class TestEvaluation:
    def test_count_per_group(self, engine):
        rows = engine.query(
            "SELECT ?yr (COUNT(?d) AS ?n) WHERE { ?d dcterms:issued ?yr } "
            "GROUP BY ?yr ORDER BY ?yr"
        ).rows()
        assert [(int(str(y)), int(str(n))) for y, n in rows] == [(1990, 1), (1995, 2)]

    def test_count_star_counts_rows(self, engine):
        rows = engine.query(
            "SELECT (COUNT(*) AS ?n) WHERE { ?d rdf:type bench:Article }"
        ).rows()
        assert int(str(rows[0][0])) == 2

    def test_count_distinct(self, engine):
        rows = engine.query(
            "SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?d dc:creator ?p }"
        ).rows()
        assert int(str(rows[0][0])) == 3

    def test_count_over_empty_pattern_is_zero(self, engine):
        rows = engine.query(
            "SELECT (COUNT(?d) AS ?n) WHERE { ?d rdf:type bench:Journal }"
        ).rows()
        assert int(str(rows[0][0])) == 0

    def test_min_max_sum_avg(self, engine):
        rows = engine.query(
            "SELECT (MIN(?yr) AS ?lo) (MAX(?yr) AS ?hi) (SUM(?yr) AS ?total) "
            "(AVG(?yr) AS ?mean) WHERE { ?d rdf:type bench:Article . "
            "?d dcterms:issued ?yr }"
        ).rows()
        lo, hi, total, mean = (value.to_python() for value in rows[0])
        assert (lo, hi, total) == (1990, 1995, 3985)
        assert mean == pytest.approx(1992.5)

    def test_group_by_multiple_variables(self, engine):
        result = engine.query(
            "SELECT ?class ?yr (COUNT(?d) AS ?n) WHERE { ?d rdf:type ?class . "
            "?d dcterms:issued ?yr } GROUP BY ?class ?yr"
        )
        # (Article,1990), (Article,1995), (Inproceedings,1995), plus the
        # schema-class rows do not carry dcterms:issued so they do not appear.
        assert len(result) == 3

    def test_order_by_aggregate_alias(self, engine):
        rows = engine.query(
            "SELECT ?p (COUNT(?d) AS ?n) WHERE { ?d dc:creator ?p } "
            "GROUP BY ?p ORDER BY DESC(?n) LIMIT 1"
        ).rows()
        assert int(str(rows[0][1])) == 2  # alice authored two documents

    def test_all_engines_agree_on_aggregates(self):
        graph = build_graph()
        query = ("SELECT ?yr (COUNT(?d) AS ?n) WHERE { ?d dcterms:issued ?yr } "
                 "GROUP BY ?yr")
        results = [
            SparqlEngine.from_graph(graph, config).query(query).as_multiset()
            for config in ENGINE_PRESETS
        ]
        assert all(result == results[0] for result in results[1:])


class TestAggregateQueryCatalog:
    def test_four_extension_queries(self):
        assert len(AGGREGATE_QUERIES) == 4
        assert [q.identifier for q in AGGREGATE_QUERIES] == ["A1", "A2", "A3", "A4"]

    def test_lookup(self):
        assert get_aggregate_query("a1").identifier == "A1"
        with pytest.raises(KeyError):
            get_aggregate_query("A9")

    @pytest.mark.parametrize("query", AGGREGATE_QUERIES, ids=lambda q: q.identifier)
    def test_extension_queries_parse_as_aggregate_queries(self, query):
        parsed = parse_query(query.text)
        assert parsed.is_aggregate_query()

    def test_a1_counts_grow_over_years_on_generated_data(self, generated_graph_medium):
        engine = SparqlEngine.from_graph(generated_graph_medium, NATIVE_OPTIMIZED)
        rows = engine.query(get_aggregate_query("A1").text).rows()
        counts = [int(str(count)) for _year, count in rows]
        # Logistic growth: the last simulated years host more publications
        # than the first ones.
        assert sum(counts[-3:]) > sum(counts[:3])

    def test_a2_average_authors_in_plausible_range(self, generated_graph_medium):
        engine = SparqlEngine.from_graph(generated_graph_medium, NATIVE_OPTIMIZED)
        rows = engine.query(get_aggregate_query("A2").text).rows()
        by_class = {str(cls): (int(str(authors)), int(str(docs)))
                    for cls, authors, docs in rows}
        article_key = str(BENCH.Article)
        authors, documents = by_class[article_key]
        average = authors / documents
        # d_auth in the 1940s has a mean between 1 and 3 authors per paper.
        assert 1.0 <= average <= 3.0

    def test_a3_distinct_authors_bounded_by_total(self, generated_graph_medium):
        engine = SparqlEngine.from_graph(generated_graph_medium, NATIVE_OPTIMIZED)
        a2 = engine.query(get_aggregate_query("A2").text).rows()
        a3 = engine.query(get_aggregate_query("A3").text).rows()
        totals = {str(cls): int(str(authors)) for cls, authors, _docs in a2}
        for cls, distinct in a3:
            assert int(str(distinct)) <= totals[str(cls)]

    def test_a4_reference_list_sizes(self, generated_graph_medium):
        engine = SparqlEngine.from_graph(generated_graph_medium, NATIVE_OPTIMIZED)
        rows = engine.query(get_aggregate_query("A4").text).rows()
        sizes = [int(str(count)) for _doc, count in rows]
        assert len(sizes) <= 20
        assert sizes == sorted(sizes, reverse=True)
