"""Unit tests for FILTER expression evaluation."""

import pytest

from repro.rdf import BNode, Literal, URIRef, Variable
from repro.sparql import Binding, ExpressionError
from repro.sparql import ast
from repro.sparql.expressions import effective_boolean_value, evaluate

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"


def var(name):
    return ast.TermExpression(Variable(name))


def const(term):
    return ast.TermExpression(term)


def compare(op, left, right):
    return ast.Comparison(op, left, right)


BINDING = Binding({
    "uri_a": URIRef("http://x/a"),
    "uri_b": URIRef("http://x/b"),
    "five": Literal("5", datatype=XSD_INTEGER),
    "ten": Literal("10", datatype=XSD_INTEGER),
    "name_a": Literal("Alice", datatype=XSD_STRING),
    "name_b": Literal("Bob", datatype=XSD_STRING),
    "plain": Literal("Alice"),
    "bnode": BNode("n1"),
})


class TestTermEvaluation:
    def test_constant_evaluates_to_itself(self):
        assert evaluate(const(Literal("x")), BINDING) == Literal("x")

    def test_variable_resolves_from_binding(self):
        assert evaluate(var("five"), BINDING) == Literal("5", datatype=XSD_INTEGER)

    def test_unbound_variable_raises_expression_error(self):
        with pytest.raises(ExpressionError):
            evaluate(var("missing"), BINDING)


class TestComparisons:
    def test_numeric_less_than(self):
        assert evaluate(compare("<", var("five"), var("ten")), BINDING) is True
        assert evaluate(compare("<", var("ten"), var("five")), BINDING) is False

    def test_numeric_greater_equal(self):
        assert evaluate(compare(">=", var("ten"), var("ten")), BINDING) is True

    def test_string_ordering(self):
        assert evaluate(compare("<", var("name_a"), var("name_b")), BINDING) is True

    def test_equality_of_typed_and_plain_string_by_value(self):
        # SPARQL "=" compares simple literals and xsd:string by value.
        assert evaluate(compare("=", var("plain"), var("name_a")), BINDING) is True

    def test_equality_of_uris(self):
        assert evaluate(compare("=", var("uri_a"), var("uri_a")), BINDING) is True
        assert evaluate(compare("=", var("uri_a"), var("uri_b")), BINDING) is False

    def test_inequality_of_uris(self):
        assert evaluate(compare("!=", var("uri_a"), var("uri_b")), BINDING) is True

    def test_inequality_of_bnodes(self):
        assert evaluate(compare("!=", var("bnode"), var("uri_a")), BINDING) is True

    def test_numeric_equality_across_lexical_forms(self):
        binding = Binding({"a": Literal("05", datatype=XSD_INTEGER),
                           "b": Literal("5", datatype=XSD_INTEGER)})
        assert evaluate(compare("=", var("a"), var("b")), binding) is True

    def test_ordering_uri_raises_type_error(self):
        with pytest.raises(ExpressionError):
            evaluate(compare("<", var("uri_a"), var("uri_b")), BINDING)

    def test_ordering_number_against_string_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(compare("<", var("five"), var("name_a")), BINDING)

    def test_equality_literal_and_uri_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(compare("=", var("five"), var("uri_a")), BINDING)


class TestLogicalOperators:
    def test_and_true(self):
        expr = ast.And(compare("<", var("five"), var("ten")),
                       compare("!=", var("uri_a"), var("uri_b")))
        assert evaluate(expr, BINDING) is True

    def test_and_false_short_circuits_error(self):
        # false && error -> false (SPARQL three-valued logic).
        expr = ast.And(compare(">", var("five"), var("ten")), var("missing"))
        assert evaluate(expr, BINDING) is False

    def test_and_error_with_true_raises(self):
        expr = ast.And(compare("<", var("five"), var("ten")), var("missing"))
        with pytest.raises(ExpressionError):
            evaluate(expr, BINDING)

    def test_or_true_absorbs_error(self):
        expr = ast.Or(compare("<", var("five"), var("ten")), var("missing"))
        assert evaluate(expr, BINDING) is True

    def test_or_false(self):
        expr = ast.Or(compare(">", var("five"), var("ten")),
                      compare("=", var("uri_a"), var("uri_b")))
        assert evaluate(expr, BINDING) is False

    def test_not(self):
        expr = ast.Not(compare(">", var("five"), var("ten")))
        assert evaluate(expr, BINDING) is True


class TestBound:
    def test_bound_true_for_bound_variable(self):
        assert evaluate(ast.Bound(Variable("five")), BINDING) is True

    def test_bound_false_for_unbound_variable(self):
        assert evaluate(ast.Bound(Variable("missing")), BINDING) is False

    def test_not_bound_implements_negation_idiom(self):
        expr = ast.Not(ast.Bound(Variable("missing")))
        assert effective_boolean_value(expr, BINDING) is True


class TestRegex:
    def test_regex_match(self):
        expr = ast.Regex(var("name_a"), const(Literal("^Ali")))
        assert evaluate(expr, BINDING) is True

    def test_regex_no_match(self):
        expr = ast.Regex(var("name_a"), const(Literal("^Bob")))
        assert evaluate(expr, BINDING) is False

    def test_regex_case_insensitive_flag(self):
        expr = ast.Regex(var("name_a"), const(Literal("^alice")), const(Literal("i")))
        assert evaluate(expr, BINDING) is True

    def test_regex_on_uri_raises(self):
        expr = ast.Regex(var("uri_a"), const(Literal("a")))
        with pytest.raises(ExpressionError):
            evaluate(expr, BINDING)

    def test_invalid_pattern_raises(self):
        expr = ast.Regex(var("name_a"), const(Literal("(" )))
        with pytest.raises(ExpressionError):
            evaluate(expr, BINDING)


class TestEffectiveBooleanValue:
    def test_type_error_maps_to_false(self):
        assert effective_boolean_value(var("missing"), BINDING) is False

    def test_boolean_literal(self):
        assert effective_boolean_value(const(Literal(True)), BINDING) is True
        assert effective_boolean_value(const(Literal(False)), BINDING) is False

    def test_nonempty_string_is_true_empty_is_false(self):
        assert effective_boolean_value(const(Literal("x")), BINDING) is True
        assert effective_boolean_value(const(Literal("")), BINDING) is False

    def test_nonzero_number_is_true_zero_is_false(self):
        assert effective_boolean_value(const(Literal(3)), BINDING) is True
        assert effective_boolean_value(const(Literal(0)), BINDING) is False

    def test_uri_has_no_boolean_value(self):
        assert effective_boolean_value(const(URIRef("http://x/a")), BINDING) is False
