"""Tests for the prepared-query / streaming engine API.

Covers the serving-oriented guarantees of the redesign: parse+plan exactly
once per prepared query, LIMIT/OFFSET bounded evaluation that stops
producing early (asserted by producer-count probes on the store access
paths), ASK short-circuiting, parameter pre-binding on both store families,
and mid-stream :class:`QueryTimeout` enforcement.
"""

import pytest

from repro.generator import DblpGenerator, GeneratorConfig
from repro.queries import get_query
from repro.sparql import (
    IN_MEMORY_OPTIMIZED,
    NATIVE_COST,
    NATIVE_OPTIMIZED,
    AskCursor,
    Deadline,
    PreparedQuery,
    QueryTimeout,
    SelectCursor,
    SparqlEngine,
)
from repro.rdf import Literal


@pytest.fixture(scope="module")
def graph():
    return DblpGenerator(GeneratorConfig(triple_limit=2_000)).graph()


@pytest.fixture(scope="module")
def native(graph):
    return SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)


@pytest.fixture(scope="module")
def memory(graph):
    return SparqlEngine.from_graph(graph, IN_MEMORY_OPTIMIZED)


def probe_counter(store, method_name):
    """Wrap a store access path so every produced item is counted.

    Returns the mutable count holder; restoring is the caller's
    responsibility (tests use try/finally or fixture-scoped engines whose
    wrapped method is removed afterwards).
    """
    counts = {"produced": 0}
    original = getattr(store, method_name)

    def counting(*args, **kwargs):
        for item in original(*args, **kwargs):
            counts["produced"] += 1
            yield item

    setattr(store, method_name, counting)
    counts["restore"] = lambda: delattr(store, method_name)
    return counts


class TestPreparedQuery:
    def test_prepare_returns_prepared_query(self, native):
        prepared = native.prepare(get_query("Q1").text)
        assert isinstance(prepared, PreparedQuery)
        assert prepared.form == "SELECT"
        assert [str(v) for v in prepared.variables] == ["?yr"]

    def test_run_returns_select_cursor(self, native):
        cursor = native.prepare(get_query("Q1").text).run()
        assert isinstance(cursor, SelectCursor)
        assert len(list(cursor)) == 1

    def test_ask_prepares_to_ask_cursor(self, native):
        cursor = native.prepare(get_query("Q12c").text).run()
        assert isinstance(cursor, AskCursor)

    def test_repeated_runs_agree(self, native):
        prepared = native.prepare(get_query("Q5b").text)
        first = prepared.run().all()
        second = prepared.run().all()
        assert first == second
        assert prepared.run_count == 2

    def test_matches_eager_query(self, native):
        text = get_query("Q5b").text
        assert native.prepare(text).run().all() == native.query(text)

    def test_stream_is_prepare_run_shorthand(self, native):
        assert native.stream(get_query("Q1").text).all() == native.query(
            get_query("Q1").text
        )

    def test_unsupported_form_raises(self, native):
        with pytest.raises(Exception):
            native.prepare("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }")

    def test_prepare_cached_memoizes_per_text(self, graph):
        engine = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
        text = get_query("Q1").text
        assert engine.prepare_cached(text) is engine.prepare_cached(text)
        assert engine.prepare_cached(text) is not engine.prepare(text)

    def test_prepare_cached_is_lru_bounded(self, graph):
        engine = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
        engine.PREPARED_CACHE_SIZE = 3
        hot = engine.prepare_cached("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1")
        for index in range(5):
            engine.prepare_cached(f"SELECT ?s WHERE {{ ?s ?p ?o }} LIMIT {index + 2}")
            # Re-touching the hot entry keeps it resident across evictions.
            assert engine.prepare_cached(
                "SELECT ?s WHERE { ?s ?p ?o } LIMIT 1") is hot
        assert len(engine._prepared_cache) == 3


class TestLimitPushdown:
    """Bounded queries must stop pulling from the store early."""

    def test_limit_run_option_stops_production_native(self, graph):
        engine = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
        total = len(engine.store)
        counts = probe_counter(engine.store, "triples_ids")
        try:
            cursor = engine.prepare("SELECT ?s WHERE { ?s ?p ?o }").run(limit=1)
            assert len(list(cursor)) == 1
        finally:
            counts["restore"]()
        assert 0 < counts["produced"] < total / 10

    def test_query_level_limit_stops_production_native(self, graph):
        engine = SparqlEngine.from_graph(graph, NATIVE_COST)
        total = len(engine.store)
        counts = probe_counter(engine.store, "triples_ids")
        try:
            result = engine.prepare("SELECT ?s WHERE { ?s ?p ?o } LIMIT 2").run().all()
            assert len(result) == 2
        finally:
            counts["restore"]()
        assert 0 < counts["produced"] < total / 10

    def test_limit_pushdown_term_space_nested_loop(self, graph):
        engine = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
        counts = probe_counter(engine.store, "triples_ids")
        try:
            first = engine.stream("SELECT ?s WHERE { ?s ?p ?o }").first()
            assert first is not None
        finally:
            counts["restore"]()
        assert counts["produced"] <= 2

    def test_offset_skips_rows(self, native):
        text = "SELECT ?name WHERE { ?p foaf:name ?name } ORDER BY ?name"
        everything = native.prepare(text).run().all().rows()
        window = native.prepare(text).run(limit=3, offset=2).all().rows()
        assert window == everything[2:5]

    def test_full_run_unaffected_by_probe(self, native):
        # Sanity check of the probe itself: an unbounded run produces >= the
        # store size for the all-wildcard scan.
        counts = probe_counter(native.store, "triples_ids")
        try:
            rows = list(native.stream("SELECT ?s WHERE { ?s ?p ?o }"))
        finally:
            counts["restore"]()
        assert counts["produced"] >= len(rows)


class TestAskShortCircuit:
    def test_ask_touches_at_most_one_candidate(self, graph):
        engine = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
        counts = probe_counter(engine.store, "triples_ids")
        try:
            assert bool(engine.stream("ASK { ?s ?p ?o }"))
        finally:
            counts["restore"]()
        assert counts["produced"] <= 1

    def test_ask_short_circuit_term_space(self, graph):
        # A nested-loop term-space engine: the scan_hash strategy is excluded
        # on purpose, since scanning the whole document per pattern is the
        # in-memory cost model the benchmark contrasts against.
        from repro.sparql import NESTED_LOOP, EngineConfig

        engine = SparqlEngine.from_graph(graph, EngineConfig(
            name="memory-nested", store_type="memory",
            join_strategy=NESTED_LOOP,
        ))
        counts = probe_counter(engine.store, "triples")
        try:
            assert bool(engine.stream("ASK { ?s ?p ?o }"))
        finally:
            counts["restore"]()
        assert counts["produced"] <= 1


class TestPreBinding:
    QUERY = "SELECT ?p ?name WHERE { ?d dc:creator ?p . ?p foaf:name ?name }"

    @pytest.mark.parametrize("config", (NATIVE_OPTIMIZED, NATIVE_COST, IN_MEMORY_OPTIMIZED),
                             ids=lambda c: c.name)
    def test_binding_restricts_results(self, graph, config):
        engine = SparqlEngine.from_graph(graph, config)
        prepared = engine.prepare(self.QUERY)
        everything = prepared.run().all()
        assert len(everything) > 1
        name = everything.rows()[0][1]
        bound = prepared.run(bindings={"name": name}).all()
        assert 0 < len(bound) < len(everything)
        assert all(binding.get("name") == name for binding in bound)

    def test_binding_accepts_variable_syntax(self, native, graph):
        prepared = native.prepare(self.QUERY)
        name = prepared.run().all().rows()[0][1]
        by_name = prepared.run(bindings={"?name": name}).all()
        by_bare = prepared.run(bindings={"name": name}).all()
        assert by_name == by_bare

    def test_unknown_term_yields_empty_on_indexed_store(self, native):
        prepared = native.prepare(self.QUERY)
        result = prepared.run(bindings={"name": Literal("no such author")}).all()
        assert len(result) == 0

    def test_unknown_term_yields_empty_on_memory_store(self, memory):
        prepared = memory.prepare(self.QUERY)
        result = prepared.run(bindings={"name": Literal("no such author")}).all()
        assert len(result) == 0

    def test_unused_variable_is_ignored(self, native):
        prepared = native.prepare(self.QUERY)
        result = prepared.run(bindings={"unused": Literal("whatever")}).all()
        assert result == prepared.run().all()


class TestMidStreamTimeout:
    def test_expired_deadline_interrupts_evaluation(self, native):
        prepared = native.prepare(get_query("Q2").text)
        with pytest.raises(QueryTimeout):
            list(prepared.run(deadline=Deadline(0.0)))

    def test_timeout_seconds_shorthand(self, native):
        prepared = native.prepare(get_query("Q2").text)
        with pytest.raises(QueryTimeout):
            list(prepared.run(timeout=0.0))

    def test_timeout_interrupts_before_full_production(self, graph):
        engine = SparqlEngine.from_graph(graph, NATIVE_OPTIMIZED)
        total = len(engine.store)
        counts = probe_counter(engine.store, "triples_ids")
        try:
            with pytest.raises(QueryTimeout):
                list(engine.stream("SELECT ?s WHERE { ?s ?p ?o }",
                                   deadline=Deadline(0.0)))
        finally:
            counts["restore"]()
        assert counts["produced"] < total

    def test_timeout_interrupts_term_space(self, memory):
        prepared = memory.prepare(get_query("Q2").text)
        with pytest.raises(QueryTimeout):
            list(prepared.run(timeout=0.0))

    def test_ask_timeout_raises_at_run(self, native):
        # ASK evaluates eagerly inside run(), so the timeout surfaces there.
        # (Q12c would legitimately finish instantly — its unknown constant
        # short-circuits before any deadline check — so use an ASK with work.)
        prepared = native.prepare("ASK { ?d dc:creator ?p . ?p foaf:name ?name }")
        with pytest.raises(QueryTimeout):
            prepared.run(timeout=0.0)

    def test_generous_deadline_completes(self, native):
        prepared = native.prepare(get_query("Q1").text)
        result = prepared.run(timeout=60.0).all()
        assert len(result) == 1

    def test_tighter_of_deadline_and_timeout_wins(self, native):
        prepared = native.prepare(get_query("Q2").text)
        with pytest.raises(QueryTimeout):
            list(prepared.run(deadline=Deadline(60.0), timeout=0.0))
        with pytest.raises(QueryTimeout):
            list(prepared.run(deadline=Deadline(0.0), timeout=60.0))
        with pytest.raises(QueryTimeout):
            list(prepared.run(deadline=Deadline(None), timeout=0.0))
