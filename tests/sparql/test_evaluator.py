"""Unit tests for algebra evaluation semantics, on both join strategies."""

import pytest

from repro.rdf import (
    BENCH,
    DC,
    DCTERMS,
    FOAF,
    RDF,
    BNode,
    Graph,
    Literal,
    Triple,
    URIRef,
)
from repro.sparql import NESTED_LOOP, SCAN_HASH, Evaluator, parse_query, translate_query
from repro.store import IndexedStore, MemoryStore

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"


def s(value):
    return Literal(value, datatype=XSD_STRING)


def build_graph():
    """Three documents, three persons, one abstract, one citation bag."""
    g = Graph()
    d1 = URIRef("http://x/doc1")
    d2 = URIRef("http://x/doc2")
    d3 = URIRef("http://x/doc3")
    alice, bob, carol = BNode("alice"), BNode("bob"), BNode("carol")
    for person, name in ((alice, "Alice"), (bob, "Bob"), (carol, "Carol")):
        g.add(Triple(person, RDF.type, FOAF.Person))
        g.add(Triple(person, FOAF.name, s(name)))
    for doc, year in ((d1, 1990), (d2, 1995), (d3, 2000)):
        g.add(Triple(doc, RDF.type, BENCH.Article))
        g.add(Triple(doc, DCTERMS.issued, Literal(year)))
    g.add(Triple(d1, DC.creator, alice))
    g.add(Triple(d2, DC.creator, alice))
    g.add(Triple(d2, DC.creator, bob))
    g.add(Triple(d3, DC.creator, carol))
    g.add(Triple(d1, DC.title, s("First paper")))
    g.add(Triple(d2, DC.title, s("Second paper")))
    g.add(Triple(d3, DC.title, s("Third paper")))
    g.add(Triple(d1, BENCH.abstract, s("only the first paper has an abstract")))
    bag = BNode("refs")
    g.add(Triple(d3, DCTERMS.references, bag))
    g.add(Triple(bag, RDF.type, RDF.Bag))
    g.add(Triple(bag, RDF.term("_1"), d1))
    return g


GRAPH = build_graph()


def run(query_text, strategy, store_cls=IndexedStore):
    store = store_cls(GRAPH)
    tree = translate_query(parse_query(query_text))
    evaluator = Evaluator(store, strategy=strategy)
    outcome = evaluator.evaluate(tree)
    if isinstance(outcome, bool):
        return outcome
    return list(outcome)


STRATEGIES = (NESTED_LOOP, SCAN_HASH)


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestBGP:
    def test_single_pattern(self, strategy):
        rows = run("SELECT ?d WHERE { ?d rdf:type bench:Article }", strategy)
        assert len(rows) == 3

    def test_join_on_shared_variable(self, strategy):
        rows = run(
            "SELECT ?d ?name WHERE { ?d dc:creator ?p . ?p foaf:name ?name }", strategy
        )
        assert len(rows) == 4

    def test_ground_pattern_acts_as_existence_check(self, strategy):
        rows = run(
            'SELECT ?d WHERE { ?d dc:title "First paper"^^xsd:string . '
            "?d rdf:type bench:Article }",
            strategy,
        )
        assert len(rows) == 1

    def test_empty_result_when_no_match(self, strategy):
        rows = run("SELECT ?d WHERE { ?d rdf:type bench:Journal }", strategy)
        assert rows == []

    def test_variable_predicate(self, strategy):
        rows = run("SELECT ?p WHERE { <http://x/doc1> ?p ?o }", strategy)
        predicates = {row.get("p") for row in rows}
        assert DC.creator in predicates and DC.title in predicates

    def test_cartesian_product_when_no_shared_variable(self, strategy):
        rows = run(
            "SELECT ?a ?b WHERE { ?a rdf:type bench:Article . ?b rdf:type foaf:Person }",
            strategy,
        )
        assert len(rows) == 9

    def test_repeated_variable_in_pattern_requires_equality(self, strategy):
        # ?x ?p ?x only matches triples with identical subject and object;
        # the sample graph has none.
        rows = run("SELECT ?x WHERE { ?x ?p ?x }", strategy)
        assert rows == []


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFilter:
    def test_numeric_filter(self, strategy):
        rows = run(
            "SELECT ?d WHERE { ?d dcterms:issued ?yr FILTER (?yr > 1992) }", strategy
        )
        assert len(rows) == 2

    def test_filter_on_names(self, strategy):
        rows = run(
            'SELECT ?p WHERE { ?p foaf:name ?n FILTER (?n != "Alice"^^xsd:string) }',
            strategy,
        )
        assert len(rows) == 2

    def test_filter_with_unbound_variable_drops_all(self, strategy):
        rows = run(
            "SELECT ?d WHERE { ?d dcterms:issued ?yr FILTER (?nosuch > 1992) }", strategy
        )
        assert rows == []


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestOptional:
    def test_optional_keeps_unmatched_left_rows(self, strategy):
        rows = run(
            "SELECT ?d ?a WHERE { ?d rdf:type bench:Article "
            "OPTIONAL { ?d bench:abstract ?a } }",
            strategy,
        )
        assert len(rows) == 3
        bound = [row for row in rows if row.get("a") is not None]
        assert len(bound) == 1

    def test_optional_filter_condition_references_outer_variable(self, strategy):
        # Articles with no earlier article by the same author (Q6 idiom):
        # doc1 (1990, alice) qualifies; doc2 (1995, alice+bob) has alice's
        # earlier paper so only bob's binding survives; doc3 (carol) qualifies.
        query = """
        SELECT ?d ?author WHERE {
          ?d rdf:type bench:Article .
          ?d dcterms:issued ?yr .
          ?d dc:creator ?author
          OPTIONAL {
            ?d2 rdf:type bench:Article .
            ?d2 dcterms:issued ?yr2 .
            ?d2 dc:creator ?author2
            FILTER (?author = ?author2 && ?yr2 < ?yr)
          }
          FILTER (!bound(?author2))
        }
        """
        rows = run(query, strategy)
        docs = sorted(str(row.get("d")) for row in rows)
        assert docs == ["http://x/doc1", "http://x/doc2", "http://x/doc3"]

    def test_nested_optionals(self, strategy):
        query = """
        SELECT ?d ?name ?a WHERE {
          ?d rdf:type bench:Article
          OPTIONAL {
            ?d dc:creator ?p
            OPTIONAL { ?p foaf:name ?name }
          }
          OPTIONAL { ?d bench:abstract ?a }
        }
        """
        rows = run(query, strategy)
        assert len(rows) == 4
        assert all(row.get("name") is not None for row in rows)


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestUnionDistinctOrder:
    def test_union_concatenates_multisets(self, strategy):
        rows = run(
            "SELECT ?x WHERE { { ?x rdf:type bench:Article } UNION "
            "{ ?x rdf:type foaf:Person } }",
            strategy,
        )
        assert len(rows) == 6

    def test_union_preserves_duplicates_without_distinct(self, strategy):
        rows = run(
            "SELECT ?x WHERE { { ?x rdf:type bench:Article } UNION "
            "{ ?x rdf:type bench:Article } }",
            strategy,
        )
        assert len(rows) == 6

    def test_distinct_removes_duplicates(self, strategy):
        rows = run(
            "SELECT DISTINCT ?x WHERE { { ?x rdf:type bench:Article } UNION "
            "{ ?x rdf:type bench:Article } }",
            strategy,
        )
        assert len(rows) == 3

    def test_order_by_ascending(self, strategy):
        rows = run(
            "SELECT ?yr WHERE { ?d dcterms:issued ?yr } ORDER BY ?yr", strategy
        )
        years = [int(str(row.get("yr"))) for row in rows]
        assert years == sorted(years)

    def test_order_by_descending(self, strategy):
        rows = run(
            "SELECT ?yr WHERE { ?d dcterms:issued ?yr } ORDER BY DESC(?yr)", strategy
        )
        years = [int(str(row.get("yr"))) for row in rows]
        assert years == sorted(years, reverse=True)

    def test_limit_and_offset(self, strategy):
        rows = run(
            "SELECT ?yr WHERE { ?d dcterms:issued ?yr } ORDER BY ?yr LIMIT 1 OFFSET 1",
            strategy,
        )
        assert len(rows) == 1
        assert str(rows[0].get("yr")) == "1995"

    def test_projection_restricts_variables(self, strategy):
        rows = run("SELECT ?name WHERE { ?p foaf:name ?name }", strategy)
        assert all(row.variables() == {"name"} for row in rows)


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestAsk:
    def test_ask_true(self, strategy):
        assert run("ASK { ?d rdf:type bench:Article }", strategy) is True

    def test_ask_false(self, strategy):
        assert run("ASK { ?d rdf:type bench:Journal }", strategy) is False


class TestStrategyEquivalence:
    QUERIES = (
        "SELECT ?d ?name WHERE { ?d dc:creator ?p . ?p foaf:name ?name }",
        "SELECT ?d ?a WHERE { ?d rdf:type bench:Article OPTIONAL { ?d bench:abstract ?a } }",
        "SELECT DISTINCT ?x WHERE { { ?x rdf:type bench:Article } UNION { ?x rdf:type foaf:Person } }",
        "SELECT ?d WHERE { ?d dcterms:issued ?yr FILTER (?yr > 1992) }",
    )

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("store_cls", (MemoryStore, IndexedStore))
    def test_strategies_and_stores_agree(self, query, store_cls):
        nested = run(query, NESTED_LOOP, store_cls)
        hashed = run(query, SCAN_HASH, store_cls)
        assert sorted(nested, key=repr) == sorted(hashed, key=repr)

    def test_unknown_strategy_rejected(self):
        from repro.sparql import EvaluationError

        with pytest.raises(EvaluationError):
            Evaluator(IndexedStore(GRAPH), strategy="bogus")
