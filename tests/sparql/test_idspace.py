"""Tests for the id-space evaluation pipeline (joins over dictionary ids)."""

import pytest

from repro.queries import ALL_QUERIES
from repro.rdf import (
    BENCH,
    DC,
    DCTERMS,
    FOAF,
    RDF,
    BNode,
    Graph,
    Literal,
    Triple,
    URIRef,
)
from repro.sparql import (
    NESTED_LOOP,
    SCAN_HASH,
    AskResult,
    EvaluationError,
    Evaluator,
    IdSpaceEvaluation,
    SlotLayout,
    SparqlEngine,
    parse_query,
    translate_query,
)
from repro.sparql.engine import NATIVE_OPTIMIZED, EngineConfig
from repro.store import IndexedStore, MemoryStore

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_GYEAR = "http://www.w3.org/2001/XMLSchema#gYear"

STRATEGIES = (NESTED_LOOP, SCAN_HASH)


def s(value):
    return Literal(value, datatype=XSD_STRING)


def build_graph():
    """Documents, creators, and years — enough for joins and OPTIONALs."""
    g = Graph()
    d1 = URIRef("http://x/doc1")
    d2 = URIRef("http://x/doc2")
    d3 = URIRef("http://x/doc3")
    alice, bob, carol = BNode("alice"), BNode("bob"), BNode("carol")
    for person, name in ((alice, "Alice"), (bob, "Bob"), (carol, "Carol")):
        g.add(Triple(person, RDF.type, FOAF.Person))
        g.add(Triple(person, FOAF.name, s(name)))
    for doc, year in ((d1, 1990), (d2, 1995), (d3, 2000)):
        g.add(Triple(doc, RDF.type, BENCH.Article))
        g.add(Triple(doc, DCTERMS.issued, Literal(year)))
    g.add(Triple(d1, DC.creator, alice))
    g.add(Triple(d2, DC.creator, alice))
    g.add(Triple(d2, DC.creator, bob))
    g.add(Triple(d3, DC.creator, carol))
    g.add(Triple(d1, BENCH.abstract, s("an abstract")))
    return g


GRAPH = build_graph()


def tree_for(query_text):
    return translate_query(parse_query(query_text))


def multiset(bindings):
    counts = {}
    for binding in bindings:
        key = frozenset(binding.items())
        counts[key] = counts.get(key, 0) + 1
    return counts


class CountingDictionaryStore(IndexedStore):
    """An IndexedStore counting decode calls and id-level index probes."""

    def __init__(self, triples=None):
        super().__init__(triples)
        self.probe_calls = 0
        self.decode_calls = 0
        original = self._dictionary.decode

        def counting_decode(term_id):
            self.decode_calls += 1
            return original(term_id)

        self._dictionary.decode = counting_decode

    def triples_ids(self, subject=None, predicate=None, object=None):
        self.probe_calls += 1
        return super().triples_ids(subject, predicate, object)


class TestSlotLayout:
    def test_collects_pattern_variables_in_first_seen_order(self):
        layout = SlotLayout.for_tree(
            tree_for("SELECT ?d ?name WHERE { ?d dc:creator ?p . ?p foaf:name ?name }")
        )
        assert layout.names == ("d", "p", "name")
        assert layout.slot("p") == 1
        assert layout.slot("?name") == 2

    def test_unknown_variable_has_no_slot(self):
        layout = SlotLayout.for_tree(tree_for("SELECT ?d WHERE { ?d ?p ?o }"))
        assert layout.slot("nosuch") is None

    def test_empty_row_width(self):
        layout = SlotLayout.for_tree(tree_for("SELECT ?d WHERE { ?d ?p ?o }"))
        assert layout.empty_row() == (None, None, None)
        assert layout.width == 3


class TestIdRoundTrip:
    """Id-level store access decodes back to exactly the term-level view."""

    def test_triples_ids_round_trip_through_dictionary(self):
        store = IndexedStore(GRAPH)
        encoded = store.encode_pattern(None, DC.creator, None)
        assert encoded is not None
        decode = store.dictionary.decode
        decoded = {
            Triple(decode(s_id), decode(p_id), decode(o_id))
            for s_id, p_id, o_id in store.triples_ids(*encoded)
        }
        assert decoded == set(store.triples(predicate=DC.creator))

    def test_count_ids_matches_term_count(self):
        store = IndexedStore(GRAPH)
        encoded = store.encode_pattern(None, RDF.type, None)
        assert store.count_ids(*encoded) == store.count(predicate=RDF.type)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_evaluate_ids_rows_decode_to_evaluate_bindings(self, strategy):
        store = IndexedStore(GRAPH)
        tree = tree_for("SELECT ?d ?name WHERE { ?d dc:creator ?p . ?p foaf:name ?name }")
        from collections import Counter

        layout, rows = Evaluator(store, strategy=strategy).evaluate_ids(tree)
        decode = store.dictionary.decode
        from_ids = Counter(
            frozenset(
                (name, decode(cell))
                for name, cell in zip(layout.names, row)
                if cell is not None
            )
            for row in rows
        )
        from_terms = Counter(
            frozenset(binding.items())
            for binding in Evaluator(store, strategy=strategy).evaluate(tree)
        )
        assert from_ids == from_terms


class TestUnknownConstantShortCircuit:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_unknown_constant_skips_index_probes(self, strategy):
        store = CountingDictionaryStore(GRAPH)
        # bench:Journal never occurs in the data, so the whole BGP is empty.
        tree = tree_for(
            "SELECT ?x ?t WHERE { ?x rdf:type bench:Journal . ?x dc:title ?t }"
        )
        evaluator = Evaluator(store, strategy=strategy)
        assert list(evaluator.evaluate(tree)) == []
        assert store.probe_calls == 0

    def test_known_constants_do_probe(self):
        store = CountingDictionaryStore(GRAPH)
        tree = tree_for("SELECT ?x WHERE { ?x rdf:type bench:Article }")
        assert len(list(Evaluator(store, strategy=NESTED_LOOP).evaluate(tree))) == 3
        assert store.probe_calls > 0


class TestZeroDecodeJoins:
    """BGP join execution on the indexed store never calls decode."""

    JOIN_QUERIES = (
        "SELECT ?d ?name WHERE { ?d dc:creator ?p . ?p foaf:name ?name }",
        "SELECT ?a ?b WHERE { ?a rdf:type bench:Article . ?b rdf:type foaf:Person }",
        "SELECT ?d ?a WHERE { ?d rdf:type bench:Article OPTIONAL { ?d bench:abstract ?a } }",
    )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("query", JOIN_QUERIES)
    def test_zero_decodes_during_join_execution(self, strategy, query):
        store = CountingDictionaryStore(GRAPH)
        evaluator = Evaluator(store, strategy=strategy)
        _layout, rows = evaluator.evaluate_ids(tree_for(query))
        consumed = list(rows)
        assert consumed, "expected non-empty join results"
        assert store.decode_calls == 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_decodes_happen_only_at_the_result_boundary(self, strategy):
        store = CountingDictionaryStore(GRAPH)
        evaluator = Evaluator(store, strategy=strategy)
        bindings = list(
            evaluator.evaluate(
                tree_for("SELECT ?d ?name WHERE { ?d dc:creator ?p . ?p foaf:name ?name }")
            )
        )
        assert len(bindings) == 4
        assert store.decode_calls > 0
        # Only projected columns are decoded, and each id at most once.
        assert store.decode_calls <= 2 * len(store.dictionary)

    def test_filter_decodes_are_memoized_per_id(self):
        store = CountingDictionaryStore(GRAPH)
        evaluator = Evaluator(store, strategy=NESTED_LOOP)
        _layout, rows = evaluator.evaluate_ids(
            tree_for("SELECT ?d WHERE { ?d dcterms:issued ?yr FILTER (?yr > 1992) }")
        )
        assert len(list(rows)) == 2
        # Three distinct year literals exist; each is decoded at most once.
        assert store.decode_calls <= 3


class NaiveLeftJoinEvaluator(Evaluator):
    """Term-space evaluator with the quadratic reference OPTIONAL join."""

    def __init__(self, store, strategy=NESTED_LOOP):
        super().__init__(store, strategy=strategy, use_id_space=False)

    def _eval_left_join(self, node):
        from repro.sparql.expressions import effective_boolean_value

        left = list(self._eval(node.left))
        if not left:
            return iter(())
        right = list(self._eval(node.right))
        condition = node.condition
        results = []
        for left_binding in left:
            matched = False
            for right_binding in right:
                if not left_binding.compatible(right_binding):
                    continue
                merged = left_binding.merge(right_binding)
                if condition is not None and not effective_boolean_value(
                    condition, merged
                ):
                    continue
                results.append(merged)
                matched = True
            if not matched:
                results.append(left_binding)
        return iter(results)


#: Q6-shaped: the OPTIONAL shares no variable with the outer group; the join
#: happens entirely through the condition's equality conjunct.
Q6_SHAPED = """
SELECT ?d ?author WHERE {
  ?d rdf:type bench:Article .
  ?d dcterms:issued ?yr .
  ?d dc:creator ?author
  OPTIONAL {
    ?d2 rdf:type bench:Article .
    ?d2 dcterms:issued ?yr2 .
    ?d2 dc:creator ?author2
    FILTER (?author = ?author2 && ?yr2 < ?yr)
  }
  FILTER (!bound(?author2))
}
"""

#: Q7-shaped: nested OPTIONALs with shared variables plus conditions.
Q7_SHAPED = """
SELECT ?d ?name WHERE {
  ?d rdf:type bench:Article
  OPTIONAL {
    ?d dc:creator ?p
    OPTIONAL { ?p foaf:name ?name }
  }
  OPTIONAL { ?d bench:abstract ?a FILTER (?name != "Carol"^^xsd:string) }
}
"""

#: Plain shared-variable OPTIONAL.
SHARED_OPTIONAL = """
SELECT ?d ?a WHERE {
  ?d rdf:type bench:Article
  OPTIONAL { ?d bench:abstract ?a }
}
"""


class TestHashLeftJoinEquivalence:
    """The hash-based OPTIONAL joins agree with the quadratic reference."""

    @pytest.mark.parametrize("query", (Q6_SHAPED, Q7_SHAPED, SHARED_OPTIONAL))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_id_space_left_join_matches_naive(self, query, strategy):
        store = IndexedStore(GRAPH)
        tree = tree_for(query)
        naive = multiset(NaiveLeftJoinEvaluator(store, strategy).evaluate(tree))
        hashed = multiset(Evaluator(store, strategy=strategy).evaluate(tree))
        assert hashed == naive

    @pytest.mark.parametrize("query", (Q6_SHAPED, Q7_SHAPED, SHARED_OPTIONAL))
    def test_term_space_left_join_matches_naive(self, query):
        store = MemoryStore(GRAPH)
        tree = tree_for(query)
        naive = multiset(NaiveLeftJoinEvaluator(store, SCAN_HASH).evaluate(tree))
        hashed = multiset(Evaluator(store, strategy=SCAN_HASH).evaluate(tree))
        assert hashed == naive


class TestEquiConditionValueSemantics:
    """Hashing on condition equalities must keep SPARQL value-equality."""

    def build(self):
        g = Graph()
        d1, d2 = URIRef("http://x/a"), URIRef("http://x/b")
        g.add(Triple(d1, RDF.type, BENCH.Article))
        # gYear on one side, plain integer on the other: equal by value.
        g.add(Triple(d1, DCTERMS.issued, Literal("1940", datatype=XSD_GYEAR)))
        g.add(Triple(d2, RDF.type, BENCH.Journal))
        g.add(Triple(d2, DCTERMS.issued, Literal(1940)))
        return g

    QUERY = """
    SELECT ?a ?b WHERE {
      ?a rdf:type bench:Article .
      ?a dcterms:issued ?y1
      OPTIONAL {
        ?b rdf:type bench:Journal .
        ?b dcterms:issued ?y2
        FILTER (?y1 = ?y2)
      }
    }
    """

    def test_numeric_value_equality_across_datatypes(self):
        graph = self.build()
        tree = tree_for(self.QUERY)
        id_rows = list(Evaluator(IndexedStore(graph)).evaluate(tree))
        term_rows = list(
            Evaluator(IndexedStore(graph), use_id_space=False).evaluate(tree)
        )
        assert multiset(id_rows) == multiset(term_rows)
        assert len(id_rows) == 1
        assert id_rows[0].get("b") is not None  # 1940^^gYear = 1940^^integer

    def test_language_tagged_literals_do_not_value_join(self):
        g = Graph()
        d1, d2 = URIRef("http://x/a"), URIRef("http://x/b")
        g.add(Triple(d1, RDF.type, BENCH.Article))
        g.add(Triple(d1, DC.title, Literal("same", language="en")))
        g.add(Triple(d2, RDF.type, BENCH.Journal))
        g.add(Triple(d2, DC.title, Literal("same")))
        query = """
        SELECT ?a ?b WHERE {
          ?a rdf:type bench:Article .
          ?a dc:title ?t1
          OPTIONAL {
            ?b rdf:type bench:Journal .
            ?b dc:title ?t2
            FILTER (?t1 = ?t2)
          }
        }
        """
        tree = tree_for(query)
        id_rows = list(Evaluator(IndexedStore(g)).evaluate(tree))
        term_rows = list(Evaluator(IndexedStore(g), use_id_space=False).evaluate(tree))
        assert multiset(id_rows) == multiset(term_rows)
        assert len(id_rows) == 1
        assert id_rows[0].get("b") is None  # "same"@en != "same"


class TestEvaluatorFacade:
    def test_indexed_store_defaults_to_id_space(self):
        assert Evaluator(IndexedStore(GRAPH)).uses_id_space is True

    def test_memory_store_stays_on_term_path(self):
        assert Evaluator(MemoryStore(GRAPH)).uses_id_space is False

    def test_forcing_id_space_on_scan_store_is_rejected(self):
        with pytest.raises(EvaluationError):
            Evaluator(MemoryStore(GRAPH), use_id_space=True)

    def test_evaluate_ids_requires_id_capable_store(self):
        evaluator = Evaluator(MemoryStore(GRAPH))
        with pytest.raises(EvaluationError):
            evaluator.evaluate_ids(tree_for("SELECT ?x WHERE { ?x ?p ?o }"))

    def test_id_space_evaluation_rejects_scan_store(self):
        with pytest.raises(EvaluationError):
            IdSpaceEvaluation(MemoryStore(GRAPH))

    def test_ask_on_id_path(self):
        evaluator = Evaluator(IndexedStore(GRAPH))
        assert evaluator.evaluate(tree_for("ASK { ?d rdf:type bench:Article }")) is True
        assert evaluator.evaluate(tree_for("ASK { ?d rdf:type bench:Journal }")) is False

    def test_engine_config_can_force_term_space(self):
        config = EngineConfig(name="native-term", use_id_space=False)
        engine = SparqlEngine.from_graph(GRAPH, config)
        rows = engine.query("SELECT ?d WHERE { ?d rdf:type bench:Article }")
        assert len(rows) == 3


class TestCatalogEquivalence:
    """Every catalog query returns identical multisets on both paths."""

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.identifier)
    def test_id_space_matches_term_space_on_catalog(self, query, generated_graph_small):
        id_engine = SparqlEngine.from_graph(generated_graph_small, NATIVE_OPTIMIZED)
        term_engine = SparqlEngine(
            EngineConfig(name="native-term", use_id_space=False)
        )
        term_engine.store = id_engine.store  # identical data, shared dictionary
        id_result = id_engine.query(query.text)
        term_result = term_engine.query(query.text)
        if isinstance(id_result, AskResult):
            assert bool(id_result) == bool(term_result)
        else:
            assert id_result.as_multiset() == term_result.as_multiset()
