"""Unit tests for the AST -> algebra translation."""

from repro.rdf import Variable
from repro.sparql import parse_query, translate_query
from repro.sparql import algebra
from repro.sparql.algebra import collect_bgps, walk


def plan(text):
    return translate_query(parse_query(text))


class TestBasicTranslation:
    def test_triple_patterns_form_single_bgp(self):
        tree = plan("SELECT ?x WHERE { ?x dc:title ?t . ?x dc:creator ?c }")
        bgps = collect_bgps(tree)
        assert len(bgps) == 1
        assert len(bgps[0].patterns) == 2

    def test_select_adds_projection(self):
        tree = plan("SELECT ?x WHERE { ?x dc:title ?t }")
        projects = [n for n in walk(tree) if isinstance(n, algebra.Project)]
        assert len(projects) == 1
        assert projects[0].projection == [Variable("x")]

    def test_select_star_projection_is_none(self):
        tree = plan("SELECT * WHERE { ?x dc:title ?t }")
        project = [n for n in walk(tree) if isinstance(n, algebra.Project)][0]
        assert project.projection is None

    def test_distinct_wraps_projection(self):
        tree = plan("SELECT DISTINCT ?x WHERE { ?x dc:title ?t }")
        assert isinstance(tree, algebra.Distinct)
        assert isinstance(tree.operand, algebra.Project)

    def test_order_by_below_projection(self):
        tree = plan("SELECT ?t WHERE { ?x dc:title ?t } ORDER BY ?t")
        project = [n for n in walk(tree) if isinstance(n, algebra.Project)][0]
        assert isinstance(project.operand, algebra.OrderBy)

    def test_limit_offset_becomes_slice_at_root(self):
        tree = plan("SELECT ?t WHERE { ?x dc:title ?t } LIMIT 10 OFFSET 50")
        assert isinstance(tree, algebra.Slice)
        assert tree.limit == 10 and tree.offset == 50

    def test_ask_root(self):
        tree = plan("ASK { ?x dc:title ?t }")
        assert isinstance(tree, algebra.Ask)


class TestFilters:
    def test_group_filter_wraps_bgp(self):
        tree = plan("SELECT ?x WHERE { ?x dcterms:issued ?yr FILTER (?yr < ?x2) }")
        filters = [n for n in walk(tree) if isinstance(n, algebra.Filter)]
        assert len(filters) == 1
        assert isinstance(filters[0].operand, algebra.BGP)

    def test_multiple_filters_stack(self):
        tree = plan(
            "SELECT ?x WHERE { ?x dcterms:issued ?yr "
            "FILTER (?yr < ?a) FILTER (?yr > ?b) }"
        )
        filters = [n for n in walk(tree) if isinstance(n, algebra.Filter)]
        assert len(filters) == 2


class TestOptional:
    def test_optional_becomes_left_join(self):
        tree = plan(
            "SELECT ?x WHERE { ?x dc:title ?t OPTIONAL { ?x bench:abstract ?a } }"
        )
        left_joins = [n for n in walk(tree) if isinstance(n, algebra.LeftJoin)]
        assert len(left_joins) == 1
        assert left_joins[0].condition is None

    def test_optional_filter_becomes_left_join_condition(self):
        # The Q6 closed-world-negation encoding: the filter inside OPTIONAL
        # references variables bound only outside.
        tree = plan(
            "SELECT ?x WHERE { ?x dc:creator ?author "
            "OPTIONAL { ?y dc:creator ?author2 FILTER (?author = ?author2) } "
            "FILTER (!bound(?author2)) }"
        )
        left_join = [n for n in walk(tree) if isinstance(n, algebra.LeftJoin)][0]
        assert left_join.condition is not None
        outer_filters = [n for n in walk(tree) if isinstance(n, algebra.Filter)]
        assert len(outer_filters) == 1

    def test_nested_optional_translates_to_nested_left_joins(self):
        tree = plan(
            "SELECT ?x WHERE { ?x dc:title ?t OPTIONAL { ?x dc:creator ?c "
            "OPTIONAL { ?c foaf:name ?n } } }"
        )
        left_joins = [n for n in walk(tree) if isinstance(n, algebra.LeftJoin)]
        assert len(left_joins) == 2


class TestUnion:
    def test_union_node(self):
        tree = plan(
            "SELECT ?x WHERE { { ?x dc:title ?t } UNION { ?x dc:creator ?t } }"
        )
        unions = [n for n in walk(tree) if isinstance(n, algebra.Union)]
        assert len(unions) == 1

    def test_union_with_shared_prefix_joins(self):
        tree = plan(
            "SELECT ?name WHERE { ?p rdf:type foaf:Person . "
            "{ ?p foaf:name ?name } UNION { ?p dc:title ?name } }"
        )
        joins = [n for n in walk(tree) if isinstance(n, algebra.Join)]
        unions = [n for n in walk(tree) if isinstance(n, algebra.Union)]
        assert len(joins) == 1
        assert len(unions) == 1

    def test_three_branch_union_nests(self):
        tree = plan(
            "SELECT ?x WHERE { { ?x dc:title ?t } UNION { ?x dc:creator ?t } "
            "UNION { ?x foaf:name ?t } }"
        )
        unions = [n for n in walk(tree) if isinstance(n, algebra.Union)]
        assert len(unions) == 2


class TestVariables:
    def test_bgp_variables(self):
        tree = plan("SELECT ?x WHERE { ?x dc:title ?t . ?x dc:creator ?c }")
        bgp = collect_bgps(tree)[0]
        assert {v.name for v in bgp.variables()} == {"x", "t", "c"}

    def test_pattern_variables_cover_optional_part(self):
        tree = plan(
            "SELECT ?x WHERE { ?x dc:title ?t OPTIONAL { ?x bench:abstract ?a } }"
        )
        left_join = [n for n in walk(tree) if isinstance(n, algebra.LeftJoin)][0]
        assert {v.name for v in left_join.variables()} == {"x", "t", "a"}

    def test_projection_restricts_root_variables(self):
        tree = plan(
            "SELECT ?x WHERE { ?x dc:title ?t OPTIONAL { ?x bench:abstract ?a } }"
        )
        assert {v.name for v in tree.variables()} == {"x"}
