"""Tests for graph-pattern result reuse (Table II row 5 optimization)."""


from repro.rdf import BENCH, DC, FOAF, RDF, BNode, Graph, Literal, Triple, URIRef
from repro.sparql import (
    IN_MEMORY_BASELINE,
    IN_MEMORY_OPTIMIZED,
    SCAN_HASH,
    EngineConfig,
    Evaluator,
    SparqlEngine,
    parse_query,
    translate_query,
)
from repro.store import MemoryStore


class CountingStore(MemoryStore):
    """A MemoryStore that counts how many pattern scans it serves."""

    def __init__(self, triples=None):
        super().__init__(triples)
        self.scan_calls = 0

    def triples(self, subject=None, predicate=None, object=None):
        self.scan_calls += 1
        return super().triples(subject, predicate, object)


def build_graph():
    g = Graph()
    journal = URIRef("http://x/journal")
    g.add(Triple(journal, RDF.type, BENCH.Journal))
    for index in range(12):
        article = URIRef(f"http://x/a{index}")
        person = BNode(f"p{index % 4}")
        g.add(Triple(article, RDF.type, BENCH.Article))
        g.add(Triple(article, DC.creator, person))
        g.add(Triple(article, URIRef("http://swrc.ontoware.org/ontology#journal"), journal))
        g.add(Triple(person, FOAF.name, Literal(f"Person {index % 4}")))
    return g


#: Q4-like query: every pattern shape occurs twice.
REPEATED_PATTERN_QUERY = """
SELECT DISTINCT ?name1 ?name2 WHERE {
  ?article1 rdf:type bench:Article .
  ?article2 rdf:type bench:Article .
  ?article1 dc:creator ?author1 .
  ?author1 foaf:name ?name1 .
  ?article2 dc:creator ?author2 .
  ?author2 foaf:name ?name2 .
  ?article1 swrc:journal ?journal .
  ?article2 swrc:journal ?journal
  FILTER (?name1 < ?name2)
}
"""


class TestEvaluatorReuse:
    def test_reuse_halves_the_number_of_scans(self):
        graph = list(build_graph())
        tree = translate_query(parse_query(REPEATED_PATTERN_QUERY))

        plain_store = CountingStore(graph)
        list(Evaluator(plain_store, strategy=SCAN_HASH, reuse_patterns=False).evaluate(tree))
        reusing_store = CountingStore(graph)
        list(Evaluator(reusing_store, strategy=SCAN_HASH, reuse_patterns=True).evaluate(tree))

        assert reusing_store.scan_calls < plain_store.scan_calls
        # Each of the four pattern shapes occurs twice, so reuse needs only
        # half the scans.
        assert reusing_store.scan_calls == plain_store.scan_calls // 2

    def test_reuse_does_not_change_results(self):
        graph = build_graph()
        baseline = SparqlEngine.from_graph(graph, IN_MEMORY_BASELINE)
        reusing = SparqlEngine.from_graph(graph, IN_MEMORY_OPTIMIZED)
        assert (baseline.query(REPEATED_PATTERN_QUERY).as_multiset()
                == reusing.query(REPEATED_PATTERN_QUERY).as_multiset())

    def test_cache_is_per_evaluation(self):
        store = CountingStore(list(build_graph()))
        tree = translate_query(parse_query("SELECT ?a WHERE { ?a rdf:type bench:Article }"))
        list(Evaluator(store, strategy=SCAN_HASH, reuse_patterns=True).evaluate(tree))
        first_calls = store.scan_calls
        list(Evaluator(store, strategy=SCAN_HASH, reuse_patterns=True).evaluate(tree))
        # A fresh evaluator starts with an empty cache, so the store is
        # consulted again (no stale results across updates).
        assert store.scan_calls == 2 * first_calls


class TestConfiguration:
    def test_inmemory_optimized_preset_enables_reuse(self):
        assert IN_MEMORY_OPTIMIZED.reuse_pattern_results is True
        assert IN_MEMORY_BASELINE.reuse_pattern_results is False

    def test_custom_config_flag(self):
        config = EngineConfig(name="custom", store_type="memory",
                              join_strategy=SCAN_HASH, reuse_pattern_results=True)
        engine = SparqlEngine.from_graph(build_graph(), config)
        result = engine.query(REPEATED_PATTERN_QUERY)
        assert len(result) > 0
