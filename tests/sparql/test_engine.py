"""Unit tests for the SparqlEngine facade and result containers."""

import pytest

from repro.rdf import DC, FOAF, RDF, BNode, Graph, Literal, Triple, URIRef, Variable
from repro.sparql import (
    ENGINE_PRESETS,
    IN_MEMORY_BASELINE,
    IN_MEMORY_OPTIMIZED,
    NATIVE_BASELINE,
    NATIVE_OPTIMIZED,
    AskResult,
    EngineConfig,
    SelectResult,
    SparqlEngine,
    load_engines,
)
from repro.sparql import Binding
from repro.store import IndexedStore, MemoryStore

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"


def tiny_graph():
    g = Graph()
    alice = BNode("alice")
    g.add(Triple(alice, RDF.type, FOAF.Person))
    g.add(Triple(alice, FOAF.name, Literal("Alice", datatype=XSD_STRING)))
    doc = URIRef("http://x/doc")
    g.add(Triple(doc, DC.creator, alice))
    g.add(Triple(doc, DC.title, Literal("Some title", datatype=XSD_STRING)))
    return g


class TestEngineConfig:
    def test_presets_have_distinct_names(self):
        names = {config.name for config in ENGINE_PRESETS}
        assert len(names) == len(ENGINE_PRESETS) == 4

    def test_memory_presets_use_memory_store(self):
        assert isinstance(IN_MEMORY_BASELINE.create_store(), MemoryStore)
        assert isinstance(IN_MEMORY_OPTIMIZED.create_store(), MemoryStore)

    def test_native_presets_use_indexed_store(self):
        assert isinstance(NATIVE_BASELINE.create_store(), IndexedStore)
        assert isinstance(NATIVE_OPTIMIZED.create_store(), IndexedStore)

    def test_baseline_presets_disable_optimizations(self):
        assert not NATIVE_BASELINE.reorder_patterns
        assert not NATIVE_BASELINE.push_filters
        assert NATIVE_OPTIMIZED.reorder_patterns
        assert NATIVE_OPTIMIZED.push_filters

    def test_unknown_store_type_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(store_type="bogus").create_store()


class TestEngineLifecycle:
    def test_default_config_is_native_optimized(self):
        assert SparqlEngine().config is NATIVE_OPTIMIZED

    def test_load_returns_triple_count(self):
        engine = SparqlEngine()
        assert engine.load(tiny_graph()) == len(tiny_graph())

    def test_from_graph_builds_loaded_engine(self):
        engine = SparqlEngine.from_graph(tiny_graph())
        assert len(engine.store) == len(tiny_graph())

    def test_load_engines_builds_all_presets(self):
        engines = load_engines(tiny_graph())
        assert [e.config.name for e in engines] == [c.name for c in ENGINE_PRESETS]

    def test_load_engines_accepts_triple_iterable(self):
        engines = load_engines(list(tiny_graph()), configs=(NATIVE_BASELINE,))
        assert len(engines[0].store) == len(tiny_graph())

    def test_load_engines_shares_one_store_per_family(self):
        engines = load_engines(tiny_graph())
        by_name = {engine.config.name: engine for engine in engines}
        assert (by_name["inmemory-baseline"].store
                is by_name["inmemory-optimized"].store)
        assert (by_name["native-baseline"].store
                is by_name["native-optimized"].store)
        assert (by_name["inmemory-baseline"].store
                is not by_name["native-baseline"].store)

    def test_load_engines_iterates_graph_once_per_family(self):
        class CountingGraph(Graph):
            iterations = 0

            def __iter__(self):
                CountingGraph.iterations += 1
                return super().__iter__()

        graph = CountingGraph()
        for triple in tiny_graph():
            graph.add(triple)
        load_engines(graph)
        # Four presets over two store families: the source is consumed once
        # per family, not once per preset.
        assert CountingGraph.iterations == 2


class TestQueryHelpers:
    def test_select_returns_rows(self):
        engine = SparqlEngine.from_graph(tiny_graph())
        rows = engine.select("SELECT ?name WHERE { ?p foaf:name ?name }")
        assert rows == [(Literal("Alice", datatype=XSD_STRING),)]

    def test_ask_returns_bool(self):
        engine = SparqlEngine.from_graph(tiny_graph())
        assert engine.ask("ASK { ?p rdf:type foaf:Person }") is True
        assert engine.ask("ASK { ?p rdf:type foaf:Organization }") is False

    def test_query_returns_select_result(self):
        engine = SparqlEngine.from_graph(tiny_graph())
        result = engine.query("SELECT ?p WHERE { ?p rdf:type foaf:Person }")
        assert isinstance(result, SelectResult)
        assert len(result) == 1

    def test_query_returns_ask_result(self):
        engine = SparqlEngine.from_graph(tiny_graph())
        result = engine.query("ASK { ?p rdf:type foaf:Person }")
        assert isinstance(result, AskResult)
        assert bool(result) is True

    def test_select_star_projects_all_variables(self):
        engine = SparqlEngine.from_graph(tiny_graph())
        result = engine.query("SELECT * WHERE { ?d dc:creator ?p }")
        assert {str(v) for v in result.variables} == {"?d", "?p"}

    def test_plan_exposes_algebra(self):
        engine = SparqlEngine.from_graph(tiny_graph())
        parsed, tree = engine.plan("SELECT ?p WHERE { ?p rdf:type foaf:Person }")
        assert parsed.form == "SELECT"
        assert tree is not None


class TestResults:
    def test_rows_follow_projection_order(self):
        result = SelectResult(
            [Variable("a"), Variable("b")],
            [Binding({"a": Literal("1"), "b": Literal("2")})],
        )
        assert result.rows() == [(Literal("1"), Literal("2"))]

    def test_column_extraction(self):
        result = SelectResult(
            [Variable("a")],
            [Binding({"a": Literal("1")}), Binding({"a": Literal("2")})],
        )
        assert result.column("a") == [Literal("1"), Literal("2")]

    def test_multiset_equality_is_order_insensitive(self):
        rows = [Binding({"a": Literal("1")}), Binding({"a": Literal("2")})]
        left = SelectResult([Variable("a")], rows)
        right = SelectResult([Variable("a")], list(reversed(rows)))
        assert left == right

    def test_multiset_equality_counts_duplicates(self):
        one = SelectResult([Variable("a")], [Binding({"a": Literal("1")})])
        two = SelectResult([Variable("a")], [Binding({"a": Literal("1")})] * 2)
        assert one != two

    def test_ask_result_equality_and_len(self):
        assert AskResult(True) == True  # noqa: E712 - intentional comparison
        assert AskResult(False) == AskResult(False)
        assert len(AskResult(True)) == 1


class TestCrossEngineAgreement:
    QUERIES = (
        "SELECT ?name WHERE { ?p foaf:name ?name }",
        "SELECT ?d ?p WHERE { ?d dc:creator ?p . ?p rdf:type foaf:Person }",
        "ASK { ?p rdf:type foaf:Person }",
    )

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_all_presets_agree(self, query_text):
        engines = load_engines(tiny_graph())
        results = [engine.query(query_text) for engine in engines]
        reference = results[0]
        for other in results[1:]:
            if isinstance(reference, AskResult):
                assert bool(other) == bool(reference)
            else:
                assert other.as_multiset() == reference.as_multiset()
