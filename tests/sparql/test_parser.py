"""Unit tests for the SPARQL parser."""

import pytest

from repro.queries import ALL_QUERIES
from repro.rdf import DC, RDF, Literal, URIRef, Variable
from repro.sparql import AskQuery, SelectQuery, SparqlSyntaxError, parse_query
from repro.sparql import ast


class TestSelectBasics:
    def test_simple_select(self):
        query = parse_query("SELECT ?x WHERE { ?x rdf:type foaf:Person }")
        assert isinstance(query, SelectQuery)
        assert query.variables == [Variable("x")]
        assert len(query.where.triple_patterns()) == 1

    def test_where_keyword_is_optional(self):
        query = parse_query("SELECT ?x { ?x rdf:type foaf:Person }")
        assert len(query.where.triple_patterns()) == 1

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?x dc:title ?t }")
        assert query.variables == []
        assert query.projected_variables() is None

    def test_distinct_flag(self):
        query = parse_query("SELECT DISTINCT ?x WHERE { ?x dc:title ?t }")
        assert query.distinct is True

    def test_multiple_projection_variables(self):
        query = parse_query("SELECT ?a ?b ?c WHERE { ?a ?b ?c }")
        assert [v.name for v in query.variables] == ["a", "b", "c"]

    def test_prefix_declaration_overrides_default(self):
        text = (
            "PREFIX dc: <http://example.org/other/> "
            "SELECT ?t WHERE { ?x dc:title ?t }"
        )
        query = parse_query(text)
        pattern = query.where.triple_patterns()[0]
        assert pattern.predicate == URIRef("http://example.org/other/title")

    def test_default_prefixes_available_without_declaration(self):
        query = parse_query("SELECT ?t WHERE { ?x dc:title ?t }")
        pattern = query.where.triple_patterns()[0]
        assert pattern.predicate == DC.title

    def test_full_iri_term(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://example.org/p> ?y }")
        assert query.where.triple_patterns()[0].predicate == URIRef("http://example.org/p")

    def test_a_keyword_expands_to_rdf_type(self):
        query = parse_query("SELECT ?x WHERE { ?x a foaf:Person }")
        assert query.where.triple_patterns()[0].predicate == RDF.type

    def test_typed_string_literal_object(self):
        query = parse_query(
            'SELECT ?j WHERE { ?j dc:title "Journal 1 (1940)"^^xsd:string }'
        )
        literal = query.where.triple_patterns()[0].object
        assert isinstance(literal, Literal)
        assert literal.lexical == "Journal 1 (1940)"
        assert literal.datatype.endswith("string")

    def test_semicolon_shares_subject(self):
        query = parse_query("SELECT ?x WHERE { ?x dc:title ?t ; dc:creator ?c }")
        patterns = query.where.triple_patterns()
        assert len(patterns) == 2
        assert patterns[0].subject == patterns[1].subject

    def test_comma_shares_subject_and_predicate(self):
        query = parse_query("SELECT ?x WHERE { ?x dc:creator ?a , ?b }")
        patterns = query.where.triple_patterns()
        assert len(patterns) == 2
        assert patterns[0].predicate == patterns[1].predicate


class TestModifiers:
    def test_order_by(self):
        query = parse_query("SELECT ?t WHERE { ?x dc:title ?t } ORDER BY ?t")
        assert query.order_by == [(Variable("t"), True)]

    def test_order_by_desc(self):
        query = parse_query("SELECT ?t WHERE { ?x dc:title ?t } ORDER BY DESC(?t)")
        assert query.order_by == [(Variable("t"), False)]

    def test_limit_and_offset(self):
        query = parse_query(
            "SELECT ?t WHERE { ?x dc:title ?t } ORDER BY ?t LIMIT 10 OFFSET 50"
        )
        assert query.limit == 10
        assert query.offset == 50

    def test_offset_before_limit(self):
        query = parse_query("SELECT ?t WHERE { ?x dc:title ?t } OFFSET 5 LIMIT 2")
        assert query.limit == 2
        assert query.offset == 5


class TestPatterns:
    def test_optional_group(self):
        query = parse_query(
            "SELECT ?x ?ab WHERE { ?x dc:title ?t OPTIONAL { ?x bench:abstract ?ab } }"
        )
        optionals = [e for e in query.where.elements if isinstance(e, ast.OptionalNode)]
        assert len(optionals) == 1
        assert len(optionals[0].group.triple_patterns()) == 1

    def test_nested_optional(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x dc:title ?t OPTIONAL { ?x dc:creator ?c "
            "OPTIONAL { ?c foaf:name ?n } } }"
        )
        outer = [e for e in query.where.elements if isinstance(e, ast.OptionalNode)][0]
        inner = [e for e in outer.group.elements if isinstance(e, ast.OptionalNode)]
        assert len(inner) == 1

    def test_union(self):
        query = parse_query(
            "SELECT ?x WHERE { { ?x dc:title ?t } UNION { ?x dc:creator ?t } }"
        )
        unions = [e for e in query.where.elements if isinstance(e, ast.UnionNode)]
        assert len(unions) == 1
        assert len(unions[0].branches) == 2

    def test_three_way_union(self):
        query = parse_query(
            "SELECT ?x WHERE { { ?x dc:title ?t } UNION { ?x dc:creator ?t } "
            "UNION { ?x foaf:name ?t } }"
        )
        unions = [e for e in query.where.elements if isinstance(e, ast.UnionNode)]
        assert len(unions[0].branches) == 3

    def test_filter_with_comparison(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x dcterms:issued ?yr FILTER (?yr < ?other) }"
        )
        filters = query.where.filters()
        assert len(filters) == 1
        assert isinstance(filters[0], ast.Comparison)
        assert filters[0].operator == "<"

    def test_filter_with_conjunction(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x dc:creator ?a FILTER (?a != ?b && ?x != ?y) }"
        )
        assert isinstance(query.where.filters()[0], ast.And)

    def test_filter_not_bound(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x dc:title ?t FILTER (!bound(?other)) }"
        )
        expression = query.where.filters()[0]
        assert isinstance(expression, ast.Not)
        assert isinstance(expression.operand, ast.Bound)

    def test_filter_regex(self):
        query = parse_query(
            'SELECT ?x WHERE { ?x dc:title ?t FILTER regex(?t, "^Data", "i") }'
        )
        assert isinstance(query.where.filters()[0], ast.Regex)

    def test_variable_predicate(self):
        query = parse_query("SELECT ?p WHERE { ?s ?p ?o }")
        assert query.where.triple_patterns()[0].predicate == Variable("p")


class TestAsk:
    def test_ask_query(self):
        query = parse_query("ASK { person:John_Q_Public rdf:type foaf:Person }")
        assert isinstance(query, AskQuery)
        assert len(query.where.triple_patterns()) == 1


class TestErrors:
    def test_missing_brace_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x dc:title ?t")

    def test_unknown_prefix_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x nosuch:title ?t }")

    def test_missing_projection_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT WHERE { ?x dc:title ?t }")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x dc:title ?t } garbage")

    def test_construct_form_unsupported(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("CONSTRUCT { ?x dc:title ?t } WHERE { ?x dc:title ?t }")

    def test_literal_in_predicate_position_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query('SELECT ?x WHERE { ?x "notapredicate" ?t }')


class TestBenchmarkQueriesParse:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.identifier)
    def test_all_published_queries_parse(self, query):
        parsed = parse_query(query.text)
        expected_type = AskQuery if query.form == "ASK" else SelectQuery
        assert isinstance(parsed, expected_type)
