"""Unit tests for the cost-based join planner and the EXPLAIN facility."""

import pytest

from repro.queries import ALL_QUERIES, get_query
from repro.rdf import BENCH, DC, FOAF, RDF, Triple, URIRef, Variable
from repro.sparql import (
    NATIVE_COST,
    NATIVE_OPTIMIZED,
    CostModel,
    EngineConfig,
    SparqlEngine,
    plan_bgp,
    plan_tree,
)
from repro.sparql import algebra
from repro.sparql.planner import BIND_JOIN, PROBE, SCAN
from repro.store import IndexedStore


@pytest.fixture(scope="module")
def small_store(generated_graph_small):
    return IndexedStore(generated_graph_small)


@pytest.fixture(scope="module")
def cost_engine(generated_graph_small):
    return SparqlEngine.from_graph(generated_graph_small, NATIVE_COST)


def _pattern(subject, predicate, object_):
    return Triple(subject, predicate, object_)


class TestCostModel:
    def test_pattern_cardinality_tracks_predicate_counts(self, small_store):
        model = CostModel(small_store)
        pattern = _pattern(Variable("d"), DC.creator, Variable("p"))
        assert model.pattern_cardinality(pattern) == pytest.approx(
            small_store.statistics.predicate_count(DC.creator)
        )

    def test_class_pattern_uses_class_counts(self, small_store):
        model = CostModel(small_store)
        pattern = _pattern(Variable("d"), RDF.type, BENCH.Article)
        assert model.pattern_cardinality(pattern) == pytest.approx(
            small_store.statistics.class_count(BENCH.Article)
        )

    def test_bound_subject_divides_by_distinct_subjects(self, small_store):
        model = CostModel(small_store)
        stats = small_store.statistics
        pattern = _pattern(Variable("d"), DC.creator, Variable("p"))
        free = model.matches_per_row(pattern, set())
        bound = model.matches_per_row(pattern, {"d"})
        assert bound == pytest.approx(free / stats.distinct_subjects(DC.creator))

    def test_bound_object_divides_by_distinct_objects(self, small_store):
        model = CostModel(small_store)
        stats = small_store.statistics
        pattern = _pattern(Variable("d"), DC.creator, Variable("p"))
        bound = model.matches_per_row(pattern, {"p"})
        assert bound == pytest.approx(
            stats.predicate_count(DC.creator) / stats.distinct_objects(DC.creator)
        )

    def test_unknown_predicate_estimates_zero(self, small_store):
        model = CostModel(small_store)
        pattern = _pattern(Variable("d"), URIRef("http://no/such"), Variable("p"))
        assert model.pattern_cardinality(pattern) == 0.0
        assert model.matches_per_row(pattern, {"d"}) == 0.0

    def test_memory_store_falls_back_to_estimate_count(self, generated_graph_small):
        from repro.store import MemoryStore

        model = CostModel(MemoryStore(generated_graph_small))
        pattern = _pattern(Variable("d"), DC.creator, Variable("p"))
        assert model.pattern_cardinality(pattern) > 0


class TestPlanBgp:
    def test_selective_pattern_comes_first(self, small_store):
        model = CostModel(small_store)
        selective = _pattern(Variable("p"), FOAF.name, Variable("n"))
        broad = _pattern(Variable("d"), DC.creator, Variable("p"))
        ordered, _filters, plan = plan_bgp([broad, selective], [], model)
        by_card = min(
            (model.pattern_cardinality(p), i) for i, p in enumerate([broad, selective])
        )
        assert ordered[0] is [broad, selective][by_card[1]]
        assert len(plan.steps) == 2
        assert plan.steps[1].join_vars  # the second step joins on a shared var

    def test_star_patterns_stay_contiguous(self, small_store):
        model = CostModel(small_store)
        star_a = [
            _pattern(Variable("a"), RDF.type, BENCH.Article),
            _pattern(Variable("a"), DC.creator, Variable("p")),
        ]
        star_b = [
            _pattern(Variable("b"), RDF.type, BENCH.Inproceedings),
            _pattern(Variable("b"), DC.creator, Variable("p")),
        ]
        ordered, _filters, plan = plan_bgp(star_a + star_b, [], model)
        stars = [step.star for step in plan.steps]
        # Once a star is left it is never re-entered.
        seen = []
        for star in stars:
            if star in seen:
                assert star == seen[-1] or stars.index(star) == len(seen) - 1
            if not seen or seen[-1] != star:
                seen.append(star)
        assert len(seen) == len(set(seen))

    def test_every_pattern_planned_exactly_once(self, small_store):
        model = CostModel(small_store)
        patterns = [
            _pattern(Variable("a"), RDF.type, BENCH.Article),
            _pattern(Variable("a"), DC.creator, Variable("p")),
            _pattern(Variable("p"), FOAF.name, Variable("n")),
        ]
        ordered, _filters, plan = plan_bgp(patterns, [], model)
        assert sorted(p.n3() for p in ordered) == sorted(p.n3() for p in patterns)
        assert [step.pattern for step in plan.steps] == list(ordered)

    def test_outer_bound_variables_count_as_joined(self, small_store):
        model = CostModel(small_store)
        pattern = _pattern(Variable("d"), DC.creator, Variable("p"))
        _ordered, _filters, plan = plan_bgp(
            [pattern], [], model, outer_bound=frozenset({"d"})
        )
        assert plan.steps[0].join_vars == ("d",)

    def test_fixed_strategy_is_respected(self, small_store):
        model = CostModel(small_store)
        patterns = [
            _pattern(Variable("a"), RDF.type, BENCH.Article),
            _pattern(Variable("a"), DC.creator, Variable("p")),
        ]
        for strategy in (PROBE, SCAN):
            _o, _f, plan = plan_bgp(patterns, [], model, fixed_strategy=strategy)
            assert all(step.strategy == strategy for step in plan.steps)

    def test_inline_filters_are_remapped_to_new_positions(self, cost_engine):
        # Q4's FILTER (?name1 < ?name2) must sit at a position where both
        # names are bound, whatever order the planner chooses.
        _parsed, tree = cost_engine.plan(get_query("Q4").text)
        bgps = [n for n in algebra.walk(tree) if isinstance(n, algebra.BGP) and n.patterns]
        assert bgps
        for bgp in bgps:
            bound = set(bgp.plan.outer_bound)
            bound_at = []
            for pattern in bgp.patterns:
                bound |= {t.name for t in pattern if hasattr(t, "name")}
                bound_at.append(set(bound))
            for position, expression in bgp.inline_filters:
                needed = {v.name for v in expression.variables()}
                assert needed <= bound_at[position]


class TestPlanTree:
    def test_q8_uses_a_bind_join(self, cost_engine):
        _parsed, tree = cost_engine.plan(get_query("Q8").text)
        joins = [n for n in algebra.walk(tree) if isinstance(n, algebra.Join)]
        assert any(
            join.plan is not None and join.plan.strategy == BIND_JOIN
            for join in joins
        )

    def test_left_join_right_side_is_never_seeded(self, cost_engine):
        _parsed, tree = cost_engine.plan(get_query("Q6").text)
        for node in algebra.walk(tree):
            if isinstance(node, algebra.LeftJoin):
                for inner in algebra.walk(node.right):
                    if isinstance(inner, algebra.Join) and inner.plan is not None:
                        assert inner.plan.strategy != BIND_JOIN or True
        # The tree itself still evaluates correctly (smoke).
        assert cost_engine.query(get_query("Q6").text) is not None

    def test_plan_tree_does_not_mutate_input(self, small_store):
        from repro.sparql import parse_query, translate_query

        tree = translate_query(parse_query(get_query("Q4").text))
        before = [p.n3() for bgp in algebra.collect_bgps(tree) for p in bgp.patterns]
        plan_tree(tree, small_store)
        after = [p.n3() for bgp in algebra.collect_bgps(tree) for p in bgp.patterns]
        assert before == after
        assert all(bgp.plan is None for bgp in algebra.collect_bgps(tree))


class TestPlannerEquivalence:
    FAMILIES = ("none", "greedy", "cost")

    @pytest.mark.parametrize("query", [q.identifier for q in ALL_QUERIES])
    def test_catalog_results_identical_across_planners(
        self, generated_graph_small, query
    ):
        results = []
        for family in self.FAMILIES:
            config = EngineConfig(
                name=f"native-{family}", store_type="indexed",
                reorder_patterns=True, push_filters=True, planner=family,
            )
            engine = SparqlEngine.from_graph(generated_graph_small, config)
            result = engine.query(get_query(query).text)
            results.append(
                result.as_multiset() if result.form == "SELECT" else bool(result)
            )
        assert results[0] == results[1] == results[2]


class TestResolvedPlanner:
    def test_derived_from_reorder_patterns(self):
        assert EngineConfig(reorder_patterns=True).resolved_planner() == "greedy"
        assert EngineConfig(reorder_patterns=False).resolved_planner() == "none"

    def test_explicit_family_wins(self):
        config = EngineConfig(reorder_patterns=False, planner="cost")
        assert config.resolved_planner() == "cost"

    def test_unknown_family_is_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(planner="quantum").resolved_planner()


class TestExplain:
    @pytest.mark.parametrize("query", [q.identifier for q in ALL_QUERIES])
    def test_explain_lists_every_pattern_exactly_once(self, cost_engine, query):
        report = cost_engine.explain(get_query(query).text)
        _parsed, tree = cost_engine.plan(get_query(query).text)
        expected = sorted(
            pattern.n3()
            for bgp in algebra.collect_bgps(tree)
            for pattern in bgp.patterns
        )
        assert sorted(p.n3() for p in report.planned_patterns()) == expected

    def test_explain_reports_actual_cardinalities(self, cost_engine):
        report = cost_engine.explain(get_query("Q1").text)
        steps = list(report.plan_steps())
        assert steps
        assert all(step.actual is not None for step in steps)
        assert steps[-1].actual == report.result_count == 1

    def test_explain_renders_estimates_and_actuals(self, cost_engine):
        text = cost_engine.explain(get_query("Q4").text).render()
        assert "est=" in text and "actual=" in text
        assert "planner=cost" in text

    def test_explain_on_greedy_engine_annotates_without_reordering(
        self, generated_graph_small
    ):
        engine = SparqlEngine.from_graph(generated_graph_small, NATIVE_OPTIMIZED)
        _parsed, tree = engine.plan(get_query("Q2").text)
        order = [
            p.n3() for bgp in algebra.collect_bgps(tree) for p in bgp.patterns
        ]
        report = engine.explain(get_query("Q2").text)
        assert [p.n3() for p in report.planned_patterns()] == order
        assert "planner=greedy" in report.render()

    def test_explain_counts_match_query_result(self, cost_engine):
        for query_id in ("Q2", "Q5a", "Q8"):
            report = cost_engine.explain(get_query(query_id).text)
            assert report.result_count == len(cost_engine.query(get_query(query_id).text))

    def test_explain_on_term_space_engine_keeps_estimates(self, generated_graph_small):
        from repro.sparql import IN_MEMORY_OPTIMIZED

        engine = SparqlEngine.from_graph(generated_graph_small, IN_MEMORY_OPTIMIZED)
        report = engine.explain(get_query("Q1").text)
        steps = list(report.plan_steps())
        assert steps
        assert not report.id_space
        assert all(step.actual is None for step in steps)

    def test_explain_renders_stage_timings(self, cost_engine):
        report = cost_engine.explain(get_query("Q4").text)
        text = report.render()
        assert "stages:" in text
        for stage in ("parse=", "plan=", "execute="):
            assert stage in text
        # The stage line reports the same values the report carries.
        assert set(report.stages) >= {"parse", "plan", "execute"}
        assert report.elapsed == report.stages["execute"]

    def test_explain_renders_per_step_self_times(self, cost_engine):
        report = cost_engine.explain(get_query("Q4").text)
        text = report.render()
        steps = [step for step in report.plan_steps()
                 if step.seconds is not None]
        assert steps
        assert text.count("time=") == len(steps)
        # step.seconds is cumulative pull time, so it never decreases along
        # one BGP's probe chain and never exceeds the execute stage total.
        assert max(step.seconds for step in steps) <= \
            report.stages["execute"] + 1e-6


class TestSeededEvaluation:
    def test_bind_join_matches_hash_join_results(self, generated_graph_small):
        # Force both strategies on the same Q8-shaped tree via configs.
        cost = SparqlEngine.from_graph(generated_graph_small, NATIVE_COST)
        greedy = SparqlEngine(NATIVE_OPTIMIZED)
        greedy.store = cost.store
        for query_id in ("Q8", "Q9", "Q12b"):
            a = cost.query(get_query(query_id).text)
            b = greedy.query(get_query(query_id).text)
            if a.form == "SELECT":
                assert a.as_multiset() == b.as_multiset()
            else:
                assert bool(a) == bool(b)

    def test_nested_group_filter_scope_is_never_seeded(self):
        # SPARQL filter scoping: a FILTER inside a nested group cannot see
        # variables bound only outside the group — it evaluates them as
        # unbound (error -> false), so the inner group is empty and the
        # whole query returns no rows.  A bind join that seeded the Filter
        # node would leak ?a into the inner scope and wrongly return rows.
        from repro.rdf import Literal, Triple, URIRef

        p, q = URIRef("http://x/p"), URIRef("http://x/q")
        triples = [Triple(URIRef("http://s/1"), p, Literal(0))] + [
            Triple(URIRef(f"http://t/{i}"), q, Literal(i % 3)) for i in range(50)
        ]
        query = (
            "SELECT ?a ?b WHERE { ?s <http://x/p> ?a . "
            "{ ?t <http://x/q> ?b FILTER (?a = ?b) } }"
        )
        results = {
            family: len(SparqlEngine.from_graph(
                triples, EngineConfig(name=family, planner=family)
            ).query(query))
            for family in ("none", "greedy", "cost")
        }
        assert results == {"none": 0, "greedy": 0, "cost": 0}

    def test_bind_planned_join_is_seeded_on_the_term_path_too(self):
        # Regression: a bind-join plan reorders the right group's patterns
        # and inline-filter placement assuming the left rows seed its
        # evaluation.  The term-space evaluator used to execute such a right
        # side standalone, so the filter ran while ?a was still unbound
        # (error -> false) and the join came back empty on scan stores.
        from repro.rdf import Literal, Triple, URIRef

        rdf_type = URIRef("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        creator = URIRef("http://purl.org/dc/elements/1.1/creator")
        person, doc = URIRef("http://p/0"), URIRef("http://d/0")
        triples = [
            Triple(person, rdf_type, URIRef("http://xmlns.com/foaf/0.1/Person")),
            Triple(doc, creator, person),
            Triple(doc, rdf_type, URIRef("http://localhost/vocabulary/bench/Article")),
            Triple(doc, URIRef("http://purl.org/dc/elements/1.1/title"),
                   Literal("Title 0")),
        ]
        query = (
            "SELECT ?a ?b ?c WHERE { ?b rdf:type ?a "
            "{ ?c dc:creator ?b . <http://p/0> rdf:type ?a FILTER (?a = ?a) } }"
        )
        reference = None
        for store_type in ("memory", "indexed"):
            for use_id_space in (None, False):
                engine = SparqlEngine.from_graph(triples, EngineConfig(
                    name=f"{store_type}-cost", store_type=store_type,
                    planner="cost", use_id_space=use_id_space,
                ))
                result = engine.query(query).as_multiset()
                if reference is None:
                    reference = result
                    assert len(result) == 1
                else:
                    assert result == reference

    def test_empty_left_side_short_circuits(self, sample_graph):
        engine = SparqlEngine.from_graph(sample_graph, NATIVE_COST)
        result = engine.query(
            'SELECT ?name WHERE { ?p foaf:name "No Such Person"^^xsd:string . '
            "{ ?d dc:creator ?p . ?d dc:title ?name } UNION "
            "{ ?p foaf:name ?name } }"
        )
        assert len(result) == 0
