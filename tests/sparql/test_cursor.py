"""Unit tests for streaming result cursors, deadlines, and serializers."""

import json
from xml.etree import ElementTree

import pytest

from repro.rdf import BNode, Literal, URIRef, Variable
from repro.sparql import (
    AskCursor,
    AskResult,
    Binding,
    Deadline,
    QueryTimeout,
    SelectCursor,
    SelectResult,
    variable_name,
)
from repro.sparql import serializers

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"


def make_bindings():
    return [
        Binding({"s": URIRef("http://x/a"), "name": Literal("Alice", datatype=XSD_STRING)}),
        Binding({"s": BNode("b0"), "name": Literal("Bob", language="en")}),
        Binding({"s": URIRef("http://x/c")}),
    ]


def make_cursor(**kwargs):
    return SelectCursor([Variable("s"), Variable("name")], iter(make_bindings()), **kwargs)


class TestVariableName:
    def test_normalizes_variables_and_strings(self):
        assert variable_name(Variable("x")) == "x"
        assert variable_name("?x") == "x"
        assert variable_name("$x") == "x"
        assert variable_name("x") == "x"


class TestSelectCursor:
    def test_streams_bindings_in_order(self):
        cursor = make_cursor()
        assert list(cursor) == make_bindings()
        assert cursor.count == 3

    def test_iterate_once_then_exhausted(self):
        cursor = make_cursor()
        list(cursor)
        assert list(cursor) == []
        assert cursor.closed

    def test_rows_follow_projection_order(self):
        rows = list(make_cursor().rows())
        assert rows[0] == (URIRef("http://x/a"), Literal("Alice", datatype=XSD_STRING))
        assert rows[2] == (URIRef("http://x/c"), None)

    def test_first_returns_one_binding_and_closes(self):
        cursor = make_cursor()
        first = cursor.first()
        assert first == make_bindings()[0]
        assert cursor.closed
        assert cursor.first() is None

    def test_all_materializes_select_result(self):
        result = make_cursor().all()
        assert isinstance(result, SelectResult)
        assert len(result) == 3
        assert result.variables == [Variable("s"), Variable("name")]

    def test_all_after_partial_consumption_returns_remainder(self):
        cursor = make_cursor()
        next(cursor)
        assert len(cursor.all()) == 2

    def test_close_stops_iteration(self):
        cursor = make_cursor()
        next(cursor)
        cursor.close()
        assert list(cursor) == []

    def test_context_manager_closes(self):
        with make_cursor() as cursor:
            next(cursor)
        assert cursor.closed

    def test_lazy_pull_from_generator(self):
        produced = []

        def generate():
            for binding in make_bindings():
                produced.append(binding)
                yield binding

        cursor = SelectCursor([Variable("s")], generate())
        assert produced == []
        next(cursor)
        assert len(produced) == 1

    def test_expired_deadline_raises_mid_stream(self):
        cursor = make_cursor(deadline=Deadline(0.0))
        with pytest.raises(QueryTimeout):
            list(cursor)

    def test_generous_deadline_passes(self):
        cursor = make_cursor(deadline=Deadline(60.0))
        assert len(list(cursor)) == 3


class TestAskCursor:
    def test_boolean_protocol(self):
        assert bool(AskCursor(True)) is True
        assert bool(AskCursor(False)) is False

    def test_all_returns_ask_result(self):
        assert AskCursor(True).all() == AskResult(True)

    def test_first_returns_value(self):
        assert AskCursor(True).first() is True
        assert AskCursor(False).first() is False

    def test_rows_yield_single_boolean_row(self):
        assert list(AskCursor(True).rows()) == [(True,)]


class TestDeadline:
    def test_resolve_accepts_seconds_and_none(self):
        assert Deadline.resolve(None) is None
        assert isinstance(Deadline.resolve(1.5), Deadline)
        deadline = Deadline(3.0)
        assert Deadline.resolve(deadline) is deadline

    def test_unbounded_deadline_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        deadline.check()  # must not raise
        assert deadline.remaining() is None

    def test_expired_check_raises_with_budget(self):
        deadline = Deadline(0.0)
        with pytest.raises(QueryTimeout) as info:
            deadline.check()
        assert info.value.budget == 0.0

    def test_guard_checks_every_item(self):
        deadline = Deadline(0.0)
        with pytest.raises(QueryTimeout):
            list(deadline.guard([1, 2, 3]))


class TestJsonSerialization:
    def test_select_document_shape(self):
        document = json.loads(make_cursor().serialize("json"))
        assert document["head"]["vars"] == ["s", "name"]
        bindings = document["results"]["bindings"]
        assert bindings[0]["s"] == {"type": "uri", "value": "http://x/a"}
        assert bindings[0]["name"] == {
            "type": "literal", "value": "Alice", "datatype": XSD_STRING,
        }
        assert bindings[1]["s"] == {"type": "bnode", "value": "b0"}
        assert bindings[1]["name"] == {
            "type": "literal", "value": "Bob", "xml:lang": "en",
        }
        assert "name" not in bindings[2]  # unbound variables are omitted

    def test_ask_document_shape(self):
        assert json.loads(AskCursor(True).serialize("json")) == {
            "head": {}, "boolean": True,
        }
        assert json.loads(AskResult(False).serialize("json")) == {
            "head": {}, "boolean": False,
        }


class TestCsvTsvSerialization:
    def test_csv_uses_plain_lexical_forms_and_crlf(self):
        text = make_cursor().serialize("csv")
        lines = text.split("\r\n")
        assert lines[0] == "s,name"
        assert lines[1] == "http://x/a,Alice"
        assert lines[2] == "_:b0,Bob"
        assert lines[3] == "http://x/c,"

    def test_tsv_uses_n3_syntax(self):
        text = make_cursor().serialize("tsv")
        lines = text.splitlines()
        assert lines[0] == "?s\t?name"
        assert lines[1] == f'<http://x/a>\t"Alice"^^<{XSD_STRING}>'
        assert lines[3] == "<http://x/c>\t"

    def test_ask_csv_and_tsv(self):
        assert AskCursor(True).serialize("csv") == "true\r\n"
        assert AskCursor(False).serialize("tsv") == "false\n"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            make_cursor().serialize("yaml")


class TestXmlSerialization:
    NS = "{http://www.w3.org/2005/sparql-results#}"

    def test_select_document_shape(self):
        root = ElementTree.fromstring(make_cursor().serialize("xml"))
        assert root.tag == f"{self.NS}sparql"
        head = root.find(f"{self.NS}head")
        assert [v.get("name") for v in head] == ["s", "name"]
        results = root.find(f"{self.NS}results").findall(f"{self.NS}result")
        assert len(results) == 3
        first = {b.get("name"): b[0] for b in results[0]}
        assert first["s"].tag == f"{self.NS}uri"
        assert first["s"].text == "http://x/a"
        assert first["name"].tag == f"{self.NS}literal"
        assert first["name"].text == "Alice"
        assert first["name"].get("datatype") == XSD_STRING
        second = {b.get("name"): b[0] for b in results[1]}
        assert second["s"].tag == f"{self.NS}bnode"
        assert second["s"].text == "b0"
        lang = "{http://www.w3.org/XML/1998/namespace}lang"
        assert second["name"].get(lang) == "en"
        # Unbound variables are omitted, not emitted empty.
        assert [b.get("name") for b in results[2]] == ["s"]

    def test_ask_document_shape(self):
        root = ElementTree.fromstring(AskCursor(True).serialize("xml"))
        assert root.find(f"{self.NS}boolean").text == "true"
        root = ElementTree.fromstring(AskResult(False).serialize("xml"))
        assert root.find(f"{self.NS}boolean").text == "false"

    def test_special_characters_escaped(self):
        cursor = SelectCursor(
            [Variable("v")],
            iter([Binding({"v": Literal('a<b>&"c"', language="en-GB")})]),
        )
        document = cursor.serialize("xml")
        root = ElementTree.fromstring(document)  # well-formed despite <>&"
        literal = root.find(f".//{self.NS}literal")
        assert literal.text == 'a<b>&"c"'


class TestEagerStreamingParity:
    """Eager containers and cursors emit byte-identical documents."""

    @pytest.mark.parametrize("format", serializers.FORMATS)
    def test_select_result_matches_cursor(self, format):
        eager = SelectResult([Variable("s"), Variable("name")], make_bindings())
        assert eager.serialize(format) == make_cursor().serialize(format)

    def test_cursor_all_keeps_multiset_equality(self):
        eager = SelectResult([Variable("s"), Variable("name")], make_bindings())
        assert make_cursor().all() == eager
