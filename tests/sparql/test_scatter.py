"""Scatter-gather evaluation over partitioned stores.

Equality tests pin ``parallel=False`` so they exercise the sequential
per-segment path deterministically; the pool tests are gated on fork
availability and verify the persistent :class:`SegmentPool` lifecycle
(reuse, retirement on mutation, fallback on failure).
"""

from collections import Counter

import pytest

from repro.queries import get_query
from repro.rdf import DC, RDF, Triple, Variable
from repro.sparql import NATIVE_COST, SparqlEngine
from repro.sparql.results import AskResult
from repro.sparql.planner import (
    SCATTER_BROADCAST,
    SCATTER_UNION,
    scatter_strategy,
)
from repro.sparql.scatter import (
    ScatterError,
    SegmentPool,
    close_pool,
    pool_available,
    pool_for,
)
from repro.store import IndexedStore, PartitionedStore

needs_fork = pytest.mark.skipif(
    not pool_available(), reason="the segment pool requires fork"
)

#: Queries spanning the interesting shapes: star (union), multi-subject
#: join (broadcast), OPTIONAL, UNION, ASK, aggregation.
QUERY_IDS = ("Q1", "Q2", "Q3a", "Q4", "Q5b", "Q6", "Q8", "Q9", "Q11", "Q12a")


@pytest.fixture(scope="module")
def whole_store(generated_graph_small):
    store = IndexedStore()
    store.bulk_load(generated_graph_small)
    return store


@pytest.fixture(scope="module")
def whole_engine(whole_store):
    return SparqlEngine.from_store(whole_store, NATIVE_COST)


def _multiset(engine, query_id):
    result = engine.query(get_query(query_id).text)
    if isinstance(result, AskResult):
        return bool(result)
    return Counter(frozenset(binding.items()) for binding in result.bindings)


def test_scatter_strategy_union_for_stars():
    doc = Variable("doc")
    patterns = [
        Triple(doc, RDF.type, Variable("t")),
        Triple(doc, DC.title, Variable("title")),
    ]
    assert scatter_strategy(patterns) == SCATTER_UNION


def test_scatter_strategy_broadcast_across_subjects():
    patterns = [
        Triple(Variable("a"), DC.creator, Variable("p")),
        Triple(Variable("b"), DC.creator, Variable("p")),
    ]
    assert scatter_strategy(patterns) == SCATTER_BROADCAST


@pytest.mark.parametrize("shards", (2, 4))
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_sequential_scatter_equals_single_store(
    whole_store, whole_engine, shards, query_id
):
    part = PartitionedStore.from_store(whole_store, shards, parallel=False)
    engine = SparqlEngine.from_store(part, NATIVE_COST)
    assert _multiset(engine, query_id) == _multiset(whole_engine, query_id)


def test_explain_renders_scatter_strategy(whole_store):
    part = PartitionedStore.from_store(whole_store, 4, parallel=False)
    engine = SparqlEngine.from_store(part, NATIVE_COST)
    rendered = engine.explain(get_query("Q2").text).render()
    assert "scatter=union" in rendered
    # A join across two subject variables must show the broadcast strategy.
    rendered = engine.explain(
        "PREFIX dc: <http://purl.org/dc/elements/1.1/>\n"
        "SELECT ?a ?b WHERE { ?a dc:creator ?p . ?b dc:creator ?p }"
    ).render()
    assert "scatter=broadcast" in rendered


def test_explain_actuals_accumulate_across_segments(whole_store, whole_engine):
    """Observe mode sums per-segment rows into the shared plan steps."""
    part = PartitionedStore.from_store(whole_store, 4, parallel=False)
    engine = SparqlEngine.from_store(part, NATIVE_COST)
    text = get_query("Q2").text
    sharded = [
        (step.estimate, step.actual)
        for step in engine.explain(text).plan_steps()
    ]
    whole = [
        (step.estimate, step.actual)
        for step in whole_engine.explain(text).plan_steps()
    ]
    assert sharded == whole  # merged statistics + summed per-segment actuals


def test_single_segment_store_never_scatters(whole_store, whole_engine):
    part = PartitionedStore.from_store(whole_store, 1)
    engine = SparqlEngine.from_store(part, NATIVE_COST)
    rendered = engine.explain(get_query("Q2").text).render()
    assert "scatter=" not in rendered
    assert _multiset(engine, "Q2") == _multiset(whole_engine, "Q2")


# -- the persistent pool ----------------------------------------------------


@pytest.fixture
def pooled(whole_store):
    part = PartitionedStore.from_store(whole_store, 2)
    yield part
    close_pool(part)


@needs_fork
def test_pool_is_persistent_and_correct(pooled, whole_engine):
    pool = pool_for(pooled)
    assert isinstance(pool, SegmentPool)
    assert pool.workers == 2
    assert pool_for(pooled) is pool  # reused across queries
    engine = SparqlEngine.from_store(pooled, NATIVE_COST)
    for query_id in ("Q1", "Q2", "Q9"):
        assert _multiset(engine, query_id) == _multiset(whole_engine, query_id)
    assert pool_for(pooled) is pool


@needs_fork
def test_pool_retires_when_the_store_mutates(pooled):
    pool = pool_for(pooled)
    triple = next(iter(pooled.triples(None, RDF.type, None)))
    assert pooled.remove(triple)
    fresh = pool_for(pooled)
    assert fresh is not pool
    assert fresh.version == pooled.version
    assert pooled.add(triple)


@needs_fork
def test_pool_failure_falls_back_in_process(pooled, whole_engine, monkeypatch):
    """A broken pool never breaks the query: fallback, then stay in-process."""
    monkeypatch.setattr(
        SegmentPool, "scatter",
        lambda self, *args, **kwargs: (_ for _ in ()).throw(
            ScatterError("injected failure")
        ),
    )
    engine = SparqlEngine.from_store(pooled, NATIVE_COST)
    assert _multiset(engine, "Q2") == _multiset(whole_engine, "Q2")
    assert pooled.parallel is False  # pinned to in-process evaluation
    assert pool_for(pooled) is None


def test_parallel_false_never_builds_a_pool(whole_store):
    part = PartitionedStore.from_store(whole_store, 2, parallel=False)
    assert pool_for(part) is None


def test_close_pool_is_idempotent(whole_store):
    part = PartitionedStore.from_store(whole_store, 2)
    close_pool(part)
    close_pool(part)
