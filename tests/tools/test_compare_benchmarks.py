"""Tests for the benchmark comparison tool, including the step-summary mode."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_benchmarks",
    Path(__file__).resolve().parents[2] / "tools" / "compare_benchmarks.py",
)
compare_benchmarks = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_benchmarks)


def write_baseline(path, means):
    path.write_text(json.dumps({"estimator": "min", "means": means}))


def write_results(path, means, vectorized=None):
    entries = []
    for name, mean in means.items():
        entry = {"name": name, "stats": {"mean": mean}}
        if vectorized and name in vectorized:
            entry["extra_info"] = {"vectorized": vectorized[name]}
        entries.append(entry)
    path.write_text(json.dumps({"benchmarks": entries}))


@pytest.fixture()
def files(tmp_path):
    baseline = tmp_path / "baseline.json"
    results = tmp_path / "results.json"
    return baseline, results


class TestGate:
    def test_no_regression_passes(self, files, capsys):
        baseline, results = files
        means = {"test_catalog_query[Q1]": 0.010, "test_catalog_query[Q2]": 0.020}
        write_baseline(baseline, means)
        write_results(results, means)
        assert compare_benchmarks.main([str(baseline), str(results)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_fails_gate(self, files, capsys):
        baseline, results = files
        write_baseline(baseline, {"test_catalog_query[Q1]": 0.010,
                                  "test_catalog_query[Q2]": 0.020,
                                  "test_catalog_query[Q3]": 0.030})
        write_results(results, {"test_catalog_query[Q1]": 0.080,
                                "test_catalog_query[Q2]": 0.020,
                                "test_catalog_query[Q3]": 0.030})
        code = compare_benchmarks.main([
            str(baseline), str(results), "--threshold", "1.25",
            "--gate-prefix", "test_catalog_query",
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_non_gated_benchmarks_never_fail(self, files, capsys):
        baseline, results = files
        write_baseline(baseline, {"test_catalog_query[Q1]": 0.010,
                                  "test_catalog_query[Q2]": 0.010,
                                  "test_other_bench": 0.010})
        write_results(results, {"test_catalog_query[Q1]": 0.010,
                                "test_catalog_query[Q2]": 0.010,
                                "test_other_bench": 0.500})
        code = compare_benchmarks.main([
            str(baseline), str(results), "--gate-prefix", "test_catalog_query",
        ])
        assert code == 0
        assert "outside gate" in capsys.readouterr().out


class TestEstimatorGuard:
    def test_mean_recorded_baseline_is_rejected(self, files, capsys):
        baseline, results = files
        # Old-schema baseline (no estimator field -> recorded means).
        baseline.write_text(json.dumps({"means": {"a": 0.010, "b": 0.020}}))
        write_results(results, {"a": 0.010, "b": 0.020})
        with pytest.raises(SystemExit) as excinfo:
            compare_benchmarks.main([str(baseline), str(results)])
        assert "estimator" in str(excinfo.value)

    def test_update_records_min_estimator(self, files, tmp_path):
        baseline, results = files
        results.write_text(json.dumps({"benchmarks": [
            {"name": "a", "stats": {"mean": 0.020, "min": 0.010}},
        ]}))
        compare_benchmarks.main([str(baseline), str(results), "--update"])
        data = json.loads(baseline.read_text())
        assert data["estimator"] == "min"
        assert data["means"]["a"] == 0.010  # the min, not the mean


class TestStepSummary:
    def test_markdown_table_written_to_explicit_path(self, files, tmp_path, capsys):
        baseline, results = files
        write_baseline(baseline, {"test_catalog_query[Q1]": 0.010,
                                  "test_catalog_query[Q2]": 0.020})
        write_results(results, {"test_catalog_query[Q1]": 0.012,
                                "test_catalog_query[Q2]": 0.020})
        summary = tmp_path / "summary.md"
        assert compare_benchmarks.main([
            str(baseline), str(results), "--step-summary", str(summary),
        ]) == 0
        text = summary.read_text()
        assert "### Benchmark regression gate" in text
        assert ("| Benchmark | Baseline | Current | Ratio | Vectorized "
                "| Verdict |") in text
        assert "`test_catalog_query[Q1]`" in text
        assert "no regressions" in text
        capsys.readouterr()

    def test_vectorized_flags_marked_in_summary(self, files, tmp_path, capsys):
        baseline, results = files
        write_baseline(baseline, {"test_catalog_query[Q1]": 0.010,
                                  "test_catalog_query[Q2]": 0.020,
                                  "test_other": 0.030})
        write_results(results,
                      {"test_catalog_query[Q1]": 0.010,
                       "test_catalog_query[Q2]": 0.020,
                       "test_other": 0.030},
                      vectorized={"test_catalog_query[Q1]": False,
                                  "test_catalog_query[Q2]": True})
        summary = tmp_path / "summary.md"
        assert compare_benchmarks.main([
            str(baseline), str(results), "--step-summary", str(summary),
        ]) == 0
        rows = {
            line.split("|")[1].strip(" `"): line
            for line in summary.read_text().splitlines()
            if line.startswith("| `")
        }
        assert "⚡ yes" in rows["test_catalog_query[Q2]"]
        assert "| no |" in rows["test_catalog_query[Q1]"]
        # No recorded flag renders as a dash, not a misleading "no".
        assert "—" in rows["test_other"]
        capsys.readouterr()

    def test_summary_written_even_when_gate_fails(self, files, tmp_path, capsys):
        baseline, results = files
        write_baseline(baseline, {"test_catalog_query[Q1]": 0.010,
                                  "test_catalog_query[Q2]": 0.020,
                                  "test_catalog_query[Q3]": 0.030})
        write_results(results, {"test_catalog_query[Q1]": 0.100,
                                "test_catalog_query[Q2]": 0.020,
                                "test_catalog_query[Q3]": 0.030})
        summary = tmp_path / "summary.md"
        code = compare_benchmarks.main([
            str(baseline), str(results),
            "--gate-prefix", "test_catalog_query",
            "--step-summary", str(summary),
        ])
        assert code == 1
        text = summary.read_text()
        assert "regression(s)" in text
        # Worst offender sorts to the top of the table.
        first_row = [line for line in text.splitlines() if line.startswith("| `")][0]
        assert "test_catalog_query[Q1]" in first_row
        capsys.readouterr()

    def test_env_variable_fallback(self, files, tmp_path, capsys, monkeypatch):
        baseline, results = files
        means = {"a": 0.010, "b": 0.020}
        write_baseline(baseline, means)
        write_results(results, means)
        summary = tmp_path / "github-summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert compare_benchmarks.main([
            str(baseline), str(results), "--step-summary",
        ]) == 0
        assert "### Benchmark regression gate" in summary.read_text()
        capsys.readouterr()

    def test_missing_env_is_tolerated(self, files, capsys, monkeypatch):
        baseline, results = files
        means = {"a": 0.010, "b": 0.020}
        write_baseline(baseline, means)
        write_results(results, means)
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert compare_benchmarks.main([
            str(baseline), str(results), "--step-summary",
        ]) == 0
        assert "skipping markdown summary" in capsys.readouterr().err
