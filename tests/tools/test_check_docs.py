"""Tests for the docs checker: the repo's own docs must pass, and the
checker must actually catch broken links, bad anchors, and CLI drift."""

import importlib.util
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "check_docs", _REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)


def test_repo_docs_pass(capsys):
    assert check_docs.main([str(_REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "README.md" in out and "DESIGN.md" in out


def _fake_repo(tmp_path, readme):
    (tmp_path / "docs").mkdir()
    (tmp_path / "src").mkdir()
    (tmp_path / "README.md").write_text(readme)
    return tmp_path


def test_broken_file_link_fails(tmp_path, capsys):
    root = _fake_repo(tmp_path, "see [the spec](docs/missing.md) here\n")
    assert check_docs.main([str(root)]) == 1
    assert "broken link" in capsys.readouterr().out


def test_bad_anchor_fails(tmp_path, capsys):
    root = _fake_repo(
        tmp_path,
        "# Title\n\n## Real heading\n\njump [there](#not-a-heading)\n",
    )
    assert check_docs.main([str(root)]) == 1
    assert "matches no heading" in capsys.readouterr().out


def test_good_anchor_passes(tmp_path):
    root = _fake_repo(
        tmp_path,
        "# Title\n\n## Real heading\n\njump [there](#real-heading) "
        "and [away](docs/other.md#sub-part)\n",
    )
    (root / "docs" / "other.md").write_text("## Sub part\n")
    assert check_docs.main([str(root)]) == 0


def test_headings_inside_code_fences_are_not_anchors(tmp_path, capsys):
    root = _fake_repo(
        tmp_path,
        "# Title\n\n```console\n## fake heading\n```\n\n"
        "[bad](#fake-heading)\n",
    )
    assert check_docs.main([str(root)]) == 1
    assert "matches no heading" in capsys.readouterr().out


def test_unknown_subcommand_fails(tmp_path, capsys):
    root = _fake_repo(
        tmp_path, "```console\n$ repro frobnicate --hard\n```\n"
    )
    (root / "src").rmdir()
    (root / "src").symlink_to(_REPO_ROOT / "src")
    assert check_docs.main([str(root)]) == 1
    assert "unknown subcommand" in capsys.readouterr().out


def test_unknown_flag_fails(tmp_path, capsys):
    root = _fake_repo(
        tmp_path, "```console\n$ repro query doc.nt --no-such-flag\n```\n"
    )
    (root / "src").rmdir()
    (root / "src").symlink_to(_REPO_ROOT / "src")
    assert check_docs.main([str(root)]) == 1
    assert "--no-such-flag" in capsys.readouterr().out


def test_continuation_lines_are_joined(tmp_path, capsys):
    root = _fake_repo(
        tmp_path,
        "```console\n$ repro query doc.nt --query Q1 \\\n"
        "    --bogus-continued-flag\n```\n",
    )
    (root / "src").rmdir()
    (root / "src").symlink_to(_REPO_ROOT / "src")
    assert check_docs.main([str(root)]) == 1
    assert "--bogus-continued-flag" in capsys.readouterr().out


def _metrics_repo(tmp_path, source, doc):
    root = _fake_repo(tmp_path, "# Title\n")
    (root / "src" / "mod.py").write_text(source)
    if doc is not None:
        (root / "docs" / "metrics.md").write_text(doc)
    return root


def test_undocumented_metric_fails(tmp_path, capsys):
    root = _metrics_repo(
        tmp_path,
        'X = reg.counter(\n    "sp2b_widgets_total",\n    "Widgets.")\n',
        "# Metrics\n\nnothing here\n",
    )
    assert check_docs.main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "sp2b_widgets_total" in out and "not documented" in out


def test_unregistered_metric_fails(tmp_path, capsys):
    root = _metrics_repo(
        tmp_path, "\n", "# Metrics\n\n`sp2b_ghost_total` haunts.\n"
    )
    assert check_docs.main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "sp2b_ghost_total" in out and "no longer registered" in out


def test_metrics_in_sync_pass_with_suffixed_mentions(tmp_path):
    root = _metrics_repo(
        tmp_path,
        'H = reg.histogram("sp2b_wait_seconds", "Wait.")\n',
        "# Metrics\n\n`sp2b_wait_seconds` expands into "
        "`sp2b_wait_seconds_bucket` / `sp2b_wait_seconds_sum` / "
        "`sp2b_wait_seconds_count`.\n",
    )
    assert check_docs.main([str(root)]) == 0


def test_missing_metrics_doc_fails_only_with_registrations(tmp_path, capsys):
    root = _metrics_repo(
        tmp_path, 'G = reg.gauge("sp2b_depth", "Depth.")\n', None
    )
    assert check_docs.main([str(root)]) == 1
    assert "docs/metrics.md: missing" in capsys.readouterr().out
