"""PartitionedStore: subject-hash segments sharing one term dictionary."""

import json
from collections import Counter

import pytest

from repro.rdf import BENCH, DC, RDF, Literal, Triple, URIRef
from repro.store import (
    IndexedStore,
    PartitionedStore,
    SnapshotFormatError,
    is_partition_manifest,
    merge_statistics,
    save_partitioned,
)
from repro.store.partitioned import partition_of

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"


@pytest.fixture(scope="module")
def whole_store(generated_graph_small):
    store = IndexedStore()
    store.bulk_load(generated_graph_small)
    return store


@pytest.fixture(scope="module")
def partitioned(whole_store):
    return PartitionedStore.from_store(whole_store, 4)


def test_every_triple_lands_in_its_subject_segment(whole_store, partitioned):
    assert partitioned.shard_count == 4
    for index, segment in enumerate(partitioned.segments):
        for s_id, _p_id, _o_id in segment.id_triples():
            assert partition_of(s_id, 4) == index
    assert len(partitioned) == len(whole_store)


def test_segments_are_disjoint_and_complete(whole_store, partitioned):
    merged = Counter()
    for segment in partitioned.segments:
        part = Counter(segment.id_triples())
        assert not (merged & part)  # disjoint: each triple in one segment
        merged += part
    assert merged == Counter(whole_store.id_triples())


def test_segments_share_one_dictionary(partitioned):
    dictionary = partitioned.dictionary
    for segment in partitioned.segments:
        assert segment.dictionary is dictionary


def test_merged_statistics_equal_whole_store(whole_store, partitioned):
    """The satellite invariant: merging per-segment statistics is exact."""
    assert partitioned.statistics == whole_store.statistics
    direct = merge_statistics(
        segment.statistics for segment in partitioned.segments
    )
    assert direct == whole_store.statistics
    assert direct.triple_count == len(whole_store)


def test_k1_is_the_degenerate_whole_store(whole_store):
    single = PartitionedStore.from_store(whole_store, 1)
    assert single.shard_count == 1
    assert Counter(single.id_triples()) == Counter(whole_store.id_triples())
    assert single.statistics == whole_store.statistics


def test_pattern_access_matches_whole_store(whole_store, partitioned):
    patterns = [
        (None, None, None),
        (None, RDF.type, None),
        (None, RDF.type, BENCH.Article),
        (None, DC.title, None),
    ]
    # Plus a bound-subject pattern, which routes to one segment.
    subject = next(iter(whole_store.triples(None, RDF.type, BENCH.Article))).subject
    patterns.append((subject, None, None))
    for pattern in patterns:
        expected = Counter(whole_store.triples(*pattern))
        assert Counter(partitioned.triples(*pattern)) == expected
        assert partitioned.count(*pattern) == sum(expected.values())


def test_bound_subject_routes_to_owning_segment(whole_store, partitioned):
    s_id, p_id, o_id = next(iter(whole_store.id_triples()))
    segment = partitioned.segment_of(s_id)
    assert segment is partitioned.segments[partition_of(s_id, 4)]
    assert list(partitioned.triples_ids(s_id, p_id, o_id)) == [(s_id, p_id, o_id)]
    assert partitioned.count_ids(s_id, None, None) == whole_store.count_ids(
        s_id, None, None
    )


def test_sorted_run_merges_segment_runs(whole_store, partitioned):
    predicate_id = whole_store.encode_pattern(None, RDF.type, None)[1]
    whole_run = whole_store.sorted_run(predicate_id)
    merged = partitioned.sorted_run(predicate_id)
    assert list(zip(merged.keys, merged.values)) == sorted(
        zip(whole_run.keys, whole_run.values)
    )
    # Cached: the same object comes back.
    assert partitioned.sorted_run(predicate_id) is merged
    assert partitioned.sorted_run(10**9) is None


def test_mutation_routes_and_invalidates(whole_store):
    part = PartitionedStore.from_store(whole_store, 3)
    version = part.version
    _ = part.statistics  # populate the cache
    triple = Triple(
        URIRef("http://example.org/new-subject"),
        DC.title,
        Literal("fresh", datatype=XSD_STRING),
    )
    assert part.add(triple)
    assert part.version == version + 1
    assert not part.add(triple)  # duplicate: no version churn
    assert part.version == version + 1
    assert part.contains(triple)
    subject_id = part.dictionary.lookup(triple.subject)
    assert part.segment_of(subject_id).contains(triple)
    # Statistics were invalidated and re-merge to the new truth.
    assert part.statistics.triple_count == len(whole_store) + 1
    assert part.remove(triple)
    assert part.version == version + 2
    assert part.statistics == whole_store.statistics
    missing = Triple(URIRef("http://example.org/never"), DC.title, triple.object)
    assert not part.remove(missing)


def test_save_load_round_trip(tmp_path, whole_store, partitioned):
    path = tmp_path / "doc.sp2b"
    manifest = partitioned.save(path, metadata={"origin": "test"})
    assert manifest["shards"] == 4
    assert is_partition_manifest(path)
    for index in range(4):
        assert (tmp_path / f"doc.sp2b.seg{index}").exists()

    loaded = PartitionedStore.load(path)
    assert loaded.shard_count == 4
    assert Counter(loaded.id_triples()) == Counter(partitioned.id_triples())
    assert loaded.statistics == whole_store.statistics
    shared = loaded.dictionary
    for segment in loaded.segments:
        assert segment.dictionary is shared


def test_save_partitioned_helper(tmp_path, whole_store):
    path = tmp_path / "helper.sp2b"
    part = save_partitioned(whole_store, path, shards=2)
    assert part.shard_count == 2
    assert is_partition_manifest(path)
    loaded = PartitionedStore.load(path)
    assert len(loaded) == len(whole_store)


def test_load_rejects_corrupt_manifests(tmp_path, partitioned):
    path = tmp_path / "doc.sp2b"
    partitioned.save(path)

    not_json = tmp_path / "garbage.sp2b"
    not_json.write_bytes(b"\x00\x01 not json")
    with pytest.raises(SnapshotFormatError):
        PartitionedStore.load(not_json)
    assert not is_partition_manifest(not_json)

    wrong_format = tmp_path / "wrong.sp2b"
    wrong_format.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(SnapshotFormatError):
        PartitionedStore.load(wrong_format)

    manifest = json.loads(path.read_text())
    manifest["manifest_version"] = 99
    bad_version = tmp_path / "version.sp2b"
    bad_version.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="version"):
        PartitionedStore.load(bad_version)

    manifest = json.loads(path.read_text())
    manifest["shards"] = 3  # disagrees with the four listed segment files
    bad_shards = tmp_path / "shards.sp2b"
    bad_shards.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="shards"):
        PartitionedStore.load(bad_shards)


def test_constructor_validation(whole_store):
    with pytest.raises(ValueError):
        PartitionedStore(())
    with pytest.raises(ValueError):
        PartitionedStore.from_store(whole_store, 0)
    alien = IndexedStore()  # its own dictionary: must be rejected
    with pytest.raises(ValueError, match="share"):
        PartitionedStore([whole_store, alien])


def test_encode_pattern_unknown_term(partitioned):
    unknown = URIRef("http://example.org/not-in-dictionary")
    assert partitioned.encode_pattern(unknown, None, None) is None
    assert partitioned.count(unknown, None, None) == 0
    assert list(partitioned.triples(unknown, None, None)) == []
    assert partitioned.estimate_count() == len(partitioned)


def test_from_memory_store_converts(generated_graph_small):
    from repro.store import MemoryStore

    memory = MemoryStore()
    for triple in generated_graph_small:
        memory.add(triple)
    part = PartitionedStore.from_store(memory, 2)
    assert len(part) == len(memory)
    assert part.shard_count == 2
