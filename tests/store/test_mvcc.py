"""MVCC store semantics: generations, snapshots, copy-on-write drafts.

What multi-version concurrency control must guarantee here:

* a snapshot pinned before a write never changes — readers see the
  generation they started on,
* a write transaction publishes atomically (all changes or none visible),
* a no-op transaction publishes nothing (no version bump),
* a draft's copy-on-write structures stay consistent with a from-scratch
  store holding the same triples (statistics, indexes, sorted runs).
"""

import threading

import pytest

from repro.rdf import Literal, Triple, URIRef
from repro.store import IndexedStore, MemoryStore, MvccStore, read_snapshot
from repro.store.indexed_store import RUN_BY_SUBJECT

P = URIRef("http://example.org/p")
Q = URIRef("http://example.org/q")


def triple(n, predicate=P):
    return Triple(URIRef(f"http://example.org/s{n}"), predicate, Literal(n))


@pytest.fixture(params=["memory", "indexed"])
def store(request):
    base = {"memory": MemoryStore, "indexed": IndexedStore}[request.param]()
    return MvccStore(base)


class TestSnapshots:
    def test_read_snapshot_pins_generation(self, store):
        store.add(triple(1))
        pinned = read_snapshot(store)
        store.add(triple(2))
        assert len(pinned) == 1
        assert len(read_snapshot(store)) == 2

    def test_read_snapshot_passthrough_for_plain_store(self):
        plain = IndexedStore()
        assert read_snapshot(plain) is plain

    def test_snapshot_is_immutable_during_transaction(self, store):
        store.bulk_load([triple(n) for n in range(5)])
        before = store.snapshot()
        with store.write_transaction() as txn:
            txn.insert(triple(99))
            txn.remove(triple(0))
            # Mid-transaction: the published generation is untouched.
            assert len(store) == 5
            assert store.snapshot() is before
        assert len(store) == 5  # -1 +1
        assert store.snapshot() is not before
        assert store.contains(triple(99))
        assert not store.contains(triple(0))

    def test_version_bumps_once_per_commit(self, store):
        v0 = store.version
        with store.write_transaction() as txn:
            txn.insert(triple(1))
            txn.insert(triple(2))
        assert store.version == v0 + 1

    def test_noop_transaction_does_not_publish(self, store):
        store.add(triple(1))
        generation = store.snapshot()
        version = store.version
        with store.write_transaction() as txn:
            txn.remove(triple(42))     # absent: nothing changes
        assert store.snapshot() is generation
        assert store.version == version

    def test_facade_delegates_reads(self, store):
        store.bulk_load([triple(n) for n in range(3)])
        assert store.count(None, P, None) == 3
        assert store.contains(triple(1))
        assert len(list(store.triples(None, P, None))) == 3
        assert "mvcc(" in store.name


class TestDraftConsistency:
    def scratch(self, triples, family):
        fresh = family()
        fresh.bulk_load(triples)
        return fresh

    @pytest.mark.parametrize("family", [MemoryStore, IndexedStore])
    def test_generation_matches_scratch_store(self, family):
        store = MvccStore(family())
        store.bulk_load([triple(n) for n in range(20)])
        with store.write_transaction() as txn:
            for n in range(5):
                txn.remove(triple(n))
            for n in range(20, 30):
                txn.insert(triple(n, predicate=Q))
        expected = [triple(n) for n in range(5, 20)] + \
                   [triple(n, predicate=Q) for n in range(20, 30)]
        scratch = self.scratch(expected, family)
        current = store.snapshot()
        assert set(current.triples()) == set(scratch.triples())
        for pattern in ((None, P, None), (None, Q, None),
                        (triple(7).subject, None, None)):
            assert current.count(*pattern) == scratch.count(*pattern)

    def test_indexed_draft_statistics_match_recount(self):
        store = MvccStore(IndexedStore())
        store.bulk_load([triple(n) for n in range(10)])
        with store.write_transaction() as txn:
            txn.remove(triple(0))
            txn.insert(triple(50, predicate=Q))
        current = store.snapshot()
        scratch = IndexedStore()
        scratch.bulk_load(list(current.triples()))
        assert current.statistics.triple_count == \
            scratch.statistics.triple_count
        assert current.statistics.predicate_counts == \
            scratch.statistics.predicate_counts
        assert current.estimate_count(None, P, None) == \
            scratch.estimate_count(None, P, None)
        assert current.estimate_count(None, Q, None) == \
            scratch.estimate_count(None, Q, None)

    def test_base_generation_unchanged_by_draft_mutations(self):
        base = IndexedStore()
        base.bulk_load([triple(n) for n in range(10)])
        store = MvccStore(base)
        pinned = store.snapshot()
        spo_before = set(pinned._spo)
        with store.write_transaction() as txn:
            for n in range(10):
                txn.remove(triple(n))
            txn.insert(triple(100))
        assert set(pinned._spo) == spo_before
        assert pinned.count(None, P, None) == 10

    def test_sorted_runs_shared_until_touched(self):
        base = IndexedStore()
        base.bulk_load([triple(n) for n in range(10)] +
                       [triple(n, predicate=Q) for n in range(10)])
        store = MvccStore(base)
        p_id = base._dictionary.lookup(P)
        q_id = base._dictionary.lookup(Q)
        run_p = base.sorted_run(p_id, RUN_BY_SUBJECT)
        run_q = base.sorted_run(q_id, RUN_BY_SUBJECT)
        with store.write_transaction() as txn:
            txn.insert(triple(99, predicate=Q))   # touches only Q
        current = store.snapshot()
        # Untouched predicate: the run object is carried over; touched
        # predicate: dropped, to be rebuilt lazily on the new generation.
        assert current.sorted_run(p_id, RUN_BY_SUBJECT) is run_p
        rebuilt = current.sorted_run(q_id, RUN_BY_SUBJECT)
        assert rebuilt is not run_q
        assert len(rebuilt.keys) == len(run_q.keys) + 1


class TestConcurrency:
    def test_writers_serialize(self):
        store = MvccStore(IndexedStore())
        rounds = 50
        def writer(offset):
            for n in range(rounds):
                with store.write_transaction() as txn:
                    txn.insert(triple(offset + n))
        threads = [threading.Thread(target=writer, args=(k * rounds,))
                   for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 4 * rounds
        assert store.version == 4 * rounds

    def test_no_lost_updates_under_read_modify_write(self):
        # Each transaction reads the current counter value through its own
        # base generation *inside* the writer lock, so increments never
        # race.
        store = MvccStore(IndexedStore())
        counter = URIRef("http://example.org/counter")
        value = URIRef("http://example.org/value")
        store.add(Triple(counter, value, Literal(0)))
        def bump():
            for _ in range(25):
                with store.write_transaction() as txn:
                    current = next(txn.base.triples(counter, value, None))
                    held = int(current.object.lexical)
                    txn.remove(current)
                    txn.insert(Triple(counter, value, Literal(held + 1)))
        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = next(store.triples(counter, value, None))
        assert int(final.object.lexical) == 100
