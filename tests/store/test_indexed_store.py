"""Unit tests for the dictionary-encoded IndexedStore."""

import itertools

import pytest

from repro.rdf import BNode, Literal, Triple, URIRef
from repro.store import IndexedStore, MemoryStore

EX = "http://example.org/"


def uri(local):
    return URIRef(EX + local)


def sample_triples():
    return [
        Triple(uri("a"), uri("p"), uri("b")),
        Triple(uri("a"), uri("p"), uri("c")),
        Triple(uri("a"), uri("q"), Literal("v")),
        Triple(uri("b"), uri("p"), uri("c")),
        Triple(BNode("n"), uri("q"), Literal("w")),
    ]


@pytest.fixture
def store():
    return IndexedStore(sample_triples())


class TestBasics:
    def test_len(self, store):
        assert len(store) == 5

    def test_duplicate_add_ignored(self, store):
        assert store.add(sample_triples()[0]) is False
        assert len(store) == 5

    def test_contains(self, store):
        assert store.contains(sample_triples()[0])
        assert not store.contains(Triple(uri("z"), uri("p"), uri("b")))

    def test_contains_with_unknown_term(self, store):
        assert not store.contains(Triple(uri("unknown"), uri("p"), uri("b")))

    def test_dictionary_grows_with_distinct_terms(self, store):
        distinct_terms = set()
        for triple in sample_triples():
            distinct_terms.update(triple)
        assert len(store.dictionary) == len(distinct_terms)


class TestPatternAccess:
    def test_every_bound_combination_matches_linear_scan(self, store):
        """The index answers all 8 binding combinations identically to a scan."""
        reference = MemoryStore(sample_triples())
        terms = {
            "s": [uri("a"), uri("b"), BNode("n"), None],
            "p": [uri("p"), uri("q"), None],
            "o": [uri("b"), uri("c"), Literal("v"), Literal("w"), None],
        }
        for s, p, o in itertools.product(terms["s"], terms["p"], terms["o"]):
            expected = set(reference.triples(s, p, o))
            actual = set(store.triples(s, p, o))
            assert actual == expected, (s, p, o)

    def test_unknown_term_yields_nothing(self, store):
        assert list(store.triples(subject=uri("nope"))) == []

    def test_count_by_predicate(self, store):
        assert store.count(predicate=uri("p")) == 3
        assert store.count(predicate=uri("q")) == 2

    def test_count_fully_bound(self, store):
        assert store.count(uri("a"), uri("p"), uri("b")) == 1
        assert store.count(uri("a"), uri("p"), Literal("v")) == 0

    def test_count_unconstrained(self, store):
        assert store.count() == 5


class TestEstimates:
    def test_estimate_matches_exact_for_bound_patterns(self, store):
        assert store.estimate_count(predicate=uri("p")) == 3
        assert store.estimate_count(subject=uri("a"), predicate=uri("p")) == 2

    def test_estimate_for_unbound_pattern_is_total(self, store):
        assert store.estimate_count() == 5

    def test_estimate_zero_for_unknown_terms(self, store):
        assert store.estimate_count(subject=uri("nope")) == 0


class TestStatisticsIntegration:
    def test_statistics_observe_all_triples(self, store):
        assert store.statistics.triple_count == 5

    def test_predicate_counts(self, store):
        assert store.statistics.predicate_count(uri("p")) == 3

    def test_class_counts_only_for_rdf_type(self, store):
        assert store.statistics.class_counts == {}


class TestIdLevelAccess:
    def test_supports_id_access_capability(self, store):
        assert store.supports_id_access is True
        assert MemoryStore().supports_id_access is False

    def test_encode_pattern_round_trips_known_terms(self, store):
        encoded = store.encode_pattern(uri("a"), uri("p"), None)
        assert encoded is not None
        s_id, p_id, o_id = encoded
        assert store.dictionary.decode(s_id) == uri("a")
        assert store.dictionary.decode(p_id) == uri("p")
        assert o_id is None

    def test_encode_pattern_unknown_term_is_none(self, store):
        assert store.encode_pattern(uri("nope"), None, None) is None

    def test_triples_ids_matches_term_level_view(self, store):
        decode = store.dictionary.decode
        for pattern in ((None, uri("p"), None), (uri("a"), None, None),
                        (None, None, None)):
            encoded = store.encode_pattern(*pattern)
            decoded = {
                Triple(decode(s), decode(p), decode(o))
                for s, p, o in store.triples_ids(*encoded)
            }
            assert decoded == set(store.triples(*pattern)), pattern

    def test_triples_ids_yields_raw_int_tuples(self, store):
        encoded = store.encode_pattern(None, uri("q"), None)
        rows = list(store.triples_ids(*encoded))
        assert len(rows) == 2
        assert all(
            isinstance(component, int) for row in rows for component in row
        )

    def test_count_ids_matches_count(self, store):
        encoded = store.encode_pattern(None, uri("p"), None)
        assert store.count_ids(*encoded) == store.count(predicate=uri("p")) == 3
        assert store.count_ids() == len(store)


class TestRemove:
    def test_remove_present_triple(self, store):
        target = sample_triples()[0]
        assert store.remove(target) is True
        assert len(store) == 4
        assert not store.contains(target)
        assert store.remove(target) is False

    def test_remove_unknown_term_is_noop(self, store):
        assert store.remove(Triple(uri("zz"), uri("p"), uri("b"))) is False
        assert len(store) == 5

    def test_remove_maintains_indexes(self, store):
        for triple in sample_triples():
            if triple.predicate == uri("p"):
                assert store.remove(triple) is True
        assert store.count(predicate=uri("p")) == 0
        assert list(store.triples(predicate=uri("p"))) == []
        assert store.count(predicate=uri("q")) == 2
        # Fully removed keys estimate to zero through the index path too.
        assert store.estimate_count(subject=uri("a"), predicate=uri("p")) == 0

    def test_remove_maintains_statistics(self, store):
        removed = sample_triples()[0]
        store.remove(removed)
        assert store.statistics.triple_count == 4
        assert store.statistics.predicate_count(uri("p")) == 2
        # uri("a") still appears as subject of another p-triple.
        assert store.statistics.distinct_subjects(uri("p")) == 2

    def test_remove_then_re_add(self, store):
        target = sample_triples()[0]
        store.remove(target)
        assert store.add(target) is True
        assert len(store) == 5
        assert set(store.triples()) == set(sample_triples())

    def test_remove_matches_memory_store_behaviour(self):
        triples = sample_triples()
        indexed, memory = IndexedStore(triples), MemoryStore(triples)
        for target in (triples[1], triples[3]):
            assert indexed.remove(target) == memory.remove(target) is True
        assert set(indexed.triples()) == set(memory.triples())
        assert len(indexed) == len(memory)
