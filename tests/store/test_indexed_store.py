"""Unit tests for the dictionary-encoded IndexedStore."""

import itertools

import pytest

from repro.rdf import BNode, Literal, Triple, URIRef
from repro.store import IndexedStore, MemoryStore

EX = "http://example.org/"


def uri(local):
    return URIRef(EX + local)


def sample_triples():
    return [
        Triple(uri("a"), uri("p"), uri("b")),
        Triple(uri("a"), uri("p"), uri("c")),
        Triple(uri("a"), uri("q"), Literal("v")),
        Triple(uri("b"), uri("p"), uri("c")),
        Triple(BNode("n"), uri("q"), Literal("w")),
    ]


@pytest.fixture
def store():
    return IndexedStore(sample_triples())


class TestBasics:
    def test_len(self, store):
        assert len(store) == 5

    def test_duplicate_add_ignored(self, store):
        assert store.add(sample_triples()[0]) is False
        assert len(store) == 5

    def test_contains(self, store):
        assert store.contains(sample_triples()[0])
        assert not store.contains(Triple(uri("z"), uri("p"), uri("b")))

    def test_contains_with_unknown_term(self, store):
        assert not store.contains(Triple(uri("unknown"), uri("p"), uri("b")))

    def test_dictionary_grows_with_distinct_terms(self, store):
        distinct_terms = set()
        for triple in sample_triples():
            distinct_terms.update(triple)
        assert len(store.dictionary) == len(distinct_terms)


class TestPatternAccess:
    def test_every_bound_combination_matches_linear_scan(self, store):
        """The index answers all 8 binding combinations identically to a scan."""
        reference = MemoryStore(sample_triples())
        terms = {
            "s": [uri("a"), uri("b"), BNode("n"), None],
            "p": [uri("p"), uri("q"), None],
            "o": [uri("b"), uri("c"), Literal("v"), Literal("w"), None],
        }
        for s, p, o in itertools.product(terms["s"], terms["p"], terms["o"]):
            expected = set(reference.triples(s, p, o))
            actual = set(store.triples(s, p, o))
            assert actual == expected, (s, p, o)

    def test_unknown_term_yields_nothing(self, store):
        assert list(store.triples(subject=uri("nope"))) == []

    def test_count_by_predicate(self, store):
        assert store.count(predicate=uri("p")) == 3
        assert store.count(predicate=uri("q")) == 2

    def test_count_fully_bound(self, store):
        assert store.count(uri("a"), uri("p"), uri("b")) == 1
        assert store.count(uri("a"), uri("p"), Literal("v")) == 0

    def test_count_unconstrained(self, store):
        assert store.count() == 5


class TestEstimates:
    def test_estimate_matches_exact_for_bound_patterns(self, store):
        assert store.estimate_count(predicate=uri("p")) == 3
        assert store.estimate_count(subject=uri("a"), predicate=uri("p")) == 2

    def test_estimate_for_unbound_pattern_is_total(self, store):
        assert store.estimate_count() == 5

    def test_estimate_zero_for_unknown_terms(self, store):
        assert store.estimate_count(subject=uri("nope")) == 0


class TestStatisticsIntegration:
    def test_statistics_observe_all_triples(self, store):
        assert store.statistics.triple_count == 5

    def test_predicate_counts(self, store):
        assert store.statistics.predicate_count(uri("p")) == 3

    def test_class_counts_only_for_rdf_type(self, store):
        assert store.statistics.class_counts == {}
