"""Unit tests for store statistics and selectivity estimation."""

import pytest

from repro.rdf import BENCH, RDF, Literal, Triple, URIRef
from repro.store import StoreStatistics

EX = "http://example.org/"


def uri(local):
    return URIRef(EX + local)


def build_statistics():
    statistics = StoreStatistics()
    triples = [
        Triple(uri("a1"), RDF.type, BENCH.Article),
        Triple(uri("a2"), RDF.type, BENCH.Article),
        Triple(uri("p1"), RDF.type, BENCH.Proceedings),
        Triple(uri("a1"), uri("pages"), Literal("1--10")),
        Triple(uri("a2"), uri("pages"), Literal("11--20")),
        Triple(uri("a1"), uri("creator"), uri("alice")),
        Triple(uri("a2"), uri("creator"), uri("alice")),
        Triple(uri("a2"), uri("creator"), uri("bob")),
    ]
    for triple in triples:
        statistics.observe(triple)
    return statistics


class TestCounts:
    def test_triple_count(self):
        assert build_statistics().triple_count == 8

    def test_predicate_count(self):
        statistics = build_statistics()
        assert statistics.predicate_count(uri("creator")) == 3
        assert statistics.predicate_count(uri("missing")) == 0

    def test_distinct_subjects_and_objects(self):
        statistics = build_statistics()
        assert statistics.distinct_subjects(uri("creator")) == 2
        assert statistics.distinct_objects(uri("creator")) == 2

    def test_class_counts_from_rdf_type(self):
        statistics = build_statistics()
        assert statistics.class_count(BENCH.Article) == 2
        assert statistics.class_count(BENCH.Proceedings) == 1
        assert statistics.class_count(BENCH.Journal) == 0


class TestEstimates:
    def test_bound_predicate_estimate_is_predicate_count(self):
        assert build_statistics().estimate(None, uri("creator"), None) == 3

    def test_unknown_predicate_estimates_zero(self):
        assert build_statistics().estimate(None, uri("missing"), None) == 0

    def test_rdf_type_with_object_uses_class_count(self):
        assert build_statistics().estimate(None, RDF.type, BENCH.Article) == 2

    def test_bound_subject_reduces_estimate(self):
        statistics = build_statistics()
        bound = statistics.estimate(uri("a1"), uri("creator"), None)
        unbound = statistics.estimate(None, uri("creator"), None)
        assert bound < unbound

    def test_variable_predicate_uses_total(self):
        statistics = build_statistics()
        assert statistics.estimate(None, None, None) == pytest.approx(8.0)

    def test_variable_predicate_with_bound_subject_scales_down(self):
        statistics = build_statistics()
        estimate = statistics.estimate(uri("a1"), None, None)
        assert 0 < estimate < 8


class TestForget:
    def test_distinct_predicates(self):
        assert build_statistics().distinct_predicates() == 3

    def test_distinct_subject_total_spans_predicates(self):
        # Subjects: a1, a2, p1 — counted once each across all predicates.
        assert build_statistics().distinct_subject_total() == 3

    def test_distinct_object_total_spans_predicates(self):
        # Objects: Article, Proceedings, "1--10", "11--20", alice, bob.
        assert build_statistics().distinct_object_total() == 6

    def test_distinct_totals_track_removal(self):
        statistics = build_statistics()
        statistics.forget(Triple(uri("a2"), uri("creator"), uri("bob")))
        assert statistics.distinct_object_total() == 5

    def test_forget_is_inverse_of_observe(self):
        statistics = build_statistics()
        statistics.forget(Triple(uri("a1"), uri("creator"), uri("alice")))
        assert statistics.triple_count == 7
        assert statistics.predicate_count(uri("creator")) == 2
        # alice still appears as an object of another creator triple.
        assert statistics.distinct_objects(uri("creator")) == 2
        assert statistics.distinct_subjects(uri("creator")) == 1

    def test_forget_drops_distinct_entry_at_zero_occurrences(self):
        statistics = build_statistics()
        statistics.forget(Triple(uri("a2"), uri("creator"), uri("bob")))
        assert statistics.distinct_objects(uri("creator")) == 1

    def test_forget_maintains_class_counts(self):
        statistics = build_statistics()
        statistics.forget(Triple(uri("a1"), RDF.type, BENCH.Article))
        assert statistics.class_count(BENCH.Article) == 1
        statistics.forget(Triple(uri("a2"), RDF.type, BENCH.Article))
        assert statistics.class_count(BENCH.Article) == 0

    def test_forget_all_restores_empty_estimates(self):
        statistics = build_statistics()
        for triple in [
            Triple(uri("a1"), uri("pages"), Literal("1--10")),
            Triple(uri("a2"), uri("pages"), Literal("11--20")),
        ]:
            statistics.forget(triple)
        assert statistics.predicate_count(uri("pages")) == 0
        assert statistics.estimate(None, uri("pages"), None) == 0
