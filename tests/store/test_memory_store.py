"""Unit tests for the unindexed MemoryStore."""

from repro.rdf import Graph, Literal, Triple, URIRef
from repro.store import MemoryStore

EX = "http://example.org/"


def uri(local):
    return URIRef(EX + local)


def sample_triples():
    return [
        Triple(uri("a"), uri("p"), uri("b")),
        Triple(uri("a"), uri("p"), uri("c")),
        Triple(uri("b"), uri("q"), Literal("v")),
    ]


class TestMemoryStore:
    def test_add_and_len(self):
        store = MemoryStore()
        for triple in sample_triples():
            assert store.add(triple) is True
        assert len(store) == 3

    def test_add_duplicate_is_noop(self):
        store = MemoryStore(sample_triples())
        assert store.add(sample_triples()[0]) is False
        assert len(store) == 3

    def test_constructor_loads_iterable(self):
        assert len(MemoryStore(sample_triples())) == 3

    def test_load_graph_returns_added_count(self):
        store = MemoryStore()
        assert store.load_graph(Graph(sample_triples())) == 3

    def test_triples_full_scan(self):
        store = MemoryStore(sample_triples())
        assert len(list(store.triples())) == 3

    def test_triples_by_subject(self):
        store = MemoryStore(sample_triples())
        assert len(list(store.triples(subject=uri("a")))) == 2

    def test_triples_by_predicate_object(self):
        store = MemoryStore(sample_triples())
        matches = list(store.triples(predicate=uri("q"), object=Literal("v")))
        assert matches == [sample_triples()[2]]

    def test_contains(self):
        store = MemoryStore(sample_triples())
        assert store.contains(sample_triples()[0])
        assert sample_triples()[0] in store
        assert Triple(uri("x"), uri("p"), uri("b")) not in store

    def test_count_matches_pattern(self):
        store = MemoryStore(sample_triples())
        assert store.count(subject=uri("a")) == 2
        assert store.count() == 3

    def test_estimate_count_defaults_to_exact(self):
        store = MemoryStore(sample_triples())
        assert store.estimate_count(subject=uri("a")) == 2

    def test_remove(self):
        store = MemoryStore(sample_triples())
        assert store.remove(sample_triples()[0]) is True
        assert store.remove(sample_triples()[0]) is False
        assert len(store) == 2

    def test_remove_preserves_scan_order(self):
        store = MemoryStore(sample_triples())
        store.remove(sample_triples()[1])
        assert list(store) == [sample_triples()[0], sample_triples()[2]]

    def test_remove_absent_triple_is_noop(self):
        store = MemoryStore(sample_triples())
        assert store.remove(Triple(uri("z"), uri("p"), uri("b"))) is False
        assert len(store) == 3

    def test_iteration(self):
        store = MemoryStore(sample_triples())
        assert list(store) == sample_triples()
