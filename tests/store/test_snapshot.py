"""Unit tests for the binary store snapshot format."""

import struct

import pytest

from repro.queries import get_query
from repro.rdf import BNode, Graph, Literal, Triple, URIRef
from repro.sparql import NATIVE_COST, SparqlEngine
from repro.store import (
    SNAPSHOT_FORMAT_VERSION,
    IndexedStore,
    MemoryStore,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    load_snapshot,
    read_snapshot_metadata,
    save_snapshot,
)
from repro.store.indexed_store import RUN_BY_OBJECT, RUN_BY_SUBJECT

EX = "http://example.org/"
XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"


def sample_triples():
    return [
        Triple(URIRef(EX + "a"), URIRef(EX + "p"), URIRef(EX + "b")),
        Triple(BNode("node1"), URIRef(EX + "p"), Literal("plain")),
        Triple(URIRef(EX + "a"), URIRef(EX + "q"), Literal("5", datatype=XSD_INT)),
        Triple(URIRef(EX + "a"), URIRef(EX + "q"), Literal("hi", language="en")),
        Triple(URIRef(EX + "b"), URIRef(EX + "p"), Literal("escaped \"quotes\"\n")),
    ]


class TestIndexedRoundTrip:
    @pytest.fixture()
    def saved(self, tmp_path):
        store = IndexedStore(sample_triples())
        path = tmp_path / "store.sp2b"
        save_snapshot(store, path, metadata={"note": "unit"})
        return store, path

    def test_triples_and_length_survive(self, saved):
        store, path = saved
        loaded = load_snapshot(path)
        assert isinstance(loaded, IndexedStore)
        assert len(loaded) == len(store)
        assert set(loaded.triples()) == set(store.triples())

    def test_dictionary_ids_are_stable(self, saved):
        store, path = saved
        loaded = load_snapshot(path)
        assert len(loaded.dictionary) == len(store.dictionary)
        for triple in store.triples():
            for term in triple:
                assert loaded.dictionary.lookup(term) == store.dictionary.lookup(term)

    def test_statistics_are_equal(self, saved):
        store, path = saved
        loaded = load_snapshot(path)
        assert loaded.statistics == store.statistics
        assert loaded.statistics.triple_count == len(store)

    def test_indexes_answer_every_pattern_shape(self, saved):
        store, path = saved
        loaded = load_snapshot(path)
        a, p = URIRef(EX + "a"), URIRef(EX + "p")
        for pattern in ((a, None, None), (None, p, None), (None, None, URIRef(EX + "b")),
                        (a, p, None), (None, p, URIRef(EX + "b")),
                        (a, None, URIRef(EX + "b")), (None, None, None)):
            assert set(loaded.triples(*pattern)) == set(store.triples(*pattern))
            assert loaded.count(*pattern) == store.count(*pattern)

    def test_loaded_store_stays_mutable(self, saved):
        store, path = saved
        loaded = load_snapshot(path)
        victim = sample_triples()[0]
        assert loaded.remove(victim)
        assert not loaded.contains(victim)
        assert len(loaded) == len(store) - 1
        new = Triple(URIRef(EX + "new"), URIRef(EX + "p"), Literal("x"))
        assert loaded.add(new)
        assert loaded.contains(new)

    def test_metadata_round_trip(self, saved):
        _store, path = saved
        metadata = read_snapshot_metadata(path)
        assert metadata["note"] == "unit"
        assert metadata["store"] == "indexed"
        assert metadata["triples"] == len(sample_triples())

    def test_empty_store_round_trips(self, tmp_path):
        path = tmp_path / "empty.sp2b"
        save_snapshot(IndexedStore(), path)
        loaded = load_snapshot(path)
        assert len(loaded) == 0
        assert loaded.statistics.triple_count == 0

    def test_save_and_load_methods_mirror_module_functions(self, tmp_path):
        store = IndexedStore(sample_triples())
        path = tmp_path / "method.sp2b"
        store.save(path)
        loaded = IndexedStore.load(path)
        assert set(loaded.triples()) == set(store.triples())


class TestMemoryRoundTrip:
    def test_round_trip(self, tmp_path):
        store = MemoryStore(sample_triples())
        path = tmp_path / "memory.sp2b"
        store.save(path)
        loaded = MemoryStore.load(path)
        assert isinstance(loaded, MemoryStore)
        assert set(loaded.triples()) == set(store.triples())

    def test_kind_dispatch_and_expectation(self, tmp_path):
        memory_path = tmp_path / "memory.sp2b"
        MemoryStore(sample_triples()).save(memory_path)
        assert isinstance(load_snapshot(memory_path), MemoryStore)
        with pytest.raises(SnapshotFormatError):
            IndexedStore.load(memory_path)
        indexed_path = tmp_path / "indexed.sp2b"
        IndexedStore(sample_triples()).save(indexed_path)
        with pytest.raises(SnapshotFormatError):
            MemoryStore.load(indexed_path)


class TestRejection:
    @pytest.fixture()
    def snapshot_path(self, tmp_path):
        path = tmp_path / "store.sp2b"
        save_snapshot(IndexedStore(sample_triples()), path)
        return path

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "junk.sp2b"
        path.write_bytes(b"certainly not a snapshot file")
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.sp2b"
        path.write_bytes(b"")
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)

    def test_wrong_version_is_rejected(self, snapshot_path):
        data = bytearray(snapshot_path.read_bytes())
        # Version lives at bytes 8..10 of the header (little-endian u16).
        data[8:10] = struct.pack("<H", SNAPSHOT_FORMAT_VERSION + 1)
        snapshot_path.write_bytes(bytes(data))
        with pytest.raises(SnapshotVersionError):
            load_snapshot(snapshot_path)
        with pytest.raises(SnapshotVersionError):
            read_snapshot_metadata(snapshot_path)

    def test_truncated_file_is_rejected(self, snapshot_path):
        data = snapshot_path.read_bytes()
        snapshot_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(snapshot_path)

    def test_corrupted_payload_fails_integrity_check(self, snapshot_path):
        data = bytearray(snapshot_path.read_bytes())
        data[-3] ^= 0xFF  # flip bits deep inside the payload
        snapshot_path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(snapshot_path)

    def test_all_rejections_are_snapshot_errors(self, tmp_path):
        # Cache resolution catches SnapshotError to rebuild — the subclasses
        # must stay inside that umbrella.
        assert issubclass(SnapshotFormatError, SnapshotError)
        assert issubclass(SnapshotVersionError, SnapshotError)
        assert issubclass(SnapshotCorruptError, SnapshotError)


class TestBulkConstruction:
    def test_from_id_triples_with_recomputed_statistics(self):
        source = IndexedStore(sample_triples())
        clone = IndexedStore.from_id_triples(
            source.dictionary, source.id_triples()
        )
        assert set(clone.triples()) == set(source.triples())
        assert clone.statistics == source.statistics

    def test_bulk_add_ids_skips_duplicates(self):
        source = IndexedStore(sample_triples())
        store = IndexedStore.from_id_triples(source.dictionary, source.id_triples())
        assert store.bulk_add_ids(source.id_triples()) == 0
        assert len(store) == len(source)


class TestQueriesOnLoadedStores:
    def test_catalog_queries_identical_on_loaded_store(
        self, tmp_path, generated_graph_small
    ):
        fresh = IndexedStore(generated_graph_small)
        path = tmp_path / "generated.sp2b"
        save_snapshot(fresh, path)
        loaded = load_snapshot(path)
        fresh_engine = SparqlEngine(NATIVE_COST, store=fresh)
        loaded_engine = SparqlEngine(NATIVE_COST, store=loaded)
        for query_id in ("Q1", "Q2", "Q3a", "Q4", "Q5a", "Q6", "Q8", "Q11", "Q12c"):
            text = get_query(query_id).text
            fresh_result = fresh_engine.query(text)
            loaded_result = loaded_engine.query(text)
            if fresh_result.form == "SELECT":
                assert fresh_result.as_multiset() == loaded_result.as_multiset()
            else:
                assert bool(fresh_result) == bool(loaded_result)

    def test_loaded_memory_store_queries_like_graph(self, tmp_path, sample_graph):
        path = tmp_path / "sample.sp2b"
        MemoryStore(sample_graph).save(path)
        loaded = MemoryStore.load(path)
        assert set(loaded.triples()) == set(Graph(sample_graph))


class TestSortedRunSection:
    """The version-2 sorted-run section and graceful version-1 loads."""

    def _save_v1(self, store, path, monkeypatch):
        """Write a true version-1 file: no runs section, version header 1."""
        from repro.store import snapshot as snapshot_module

        monkeypatch.setattr(snapshot_module, "FORMAT_VERSION", 1)
        monkeypatch.setattr(
            snapshot_module, "_pack_sorted_runs", lambda out, store: None
        )
        save_snapshot(store, path)

    def test_runs_round_trip_verbatim(self, tmp_path):
        store = IndexedStore(sample_triples())
        path = tmp_path / "runs.sp2b"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        for predicate_id in store._by_p:
            for order in (RUN_BY_SUBJECT, RUN_BY_OBJECT):
                fresh = store.sorted_run(predicate_id, order)
                # Loaded runs come straight from the snapshot section.
                adopted = loaded._sorted_runs[(predicate_id, order)]
                assert adopted.keys == fresh.keys
                assert adopted.values == fresh.values
                assert adopted.order == order
                assert adopted.predicate == predicate_id

    def test_save_materializes_runs_eagerly(self, tmp_path):
        store = IndexedStore(sample_triples())
        assert not store._sorted_runs
        path = tmp_path / "eager.sp2b"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        # Both orders of every predicate are present without any lazy build.
        assert len(loaded._sorted_runs) == 2 * len(store._by_p)

    def test_legacy_v1_loads_and_rebuilds_lazily(self, tmp_path, monkeypatch):
        from repro.store import snapshot as snapshot_module

        store = IndexedStore(sample_triples())
        path = tmp_path / "legacy.sp2b"
        self._save_v1(store, path, monkeypatch)
        assert struct.unpack_from("<H", path.read_bytes(), 8)[0] == 1
        loaded = load_snapshot(path)
        assert not loaded._sorted_runs
        for predicate_id in store._by_p:
            fresh = store.sorted_run(predicate_id, RUN_BY_SUBJECT)
            rebuilt = loaded.sorted_run(predicate_id, RUN_BY_SUBJECT)
            assert rebuilt.keys == fresh.keys
            assert rebuilt.values == fresh.values
        assert snapshot_module.READ_VERSIONS == (1, 2)

    def test_legacy_warning_logged_once(self, tmp_path, monkeypatch, caplog):
        from repro.store import snapshot as snapshot_module

        store = IndexedStore(sample_triples())
        path = tmp_path / "legacy.sp2b"
        self._save_v1(store, path, monkeypatch)
        monkeypatch.setattr(snapshot_module, "_warned_legacy_runs", False)
        with caplog.at_level("WARNING", logger=snapshot_module.__name__):
            load_snapshot(path)
            load_snapshot(path)
        notices = [
            record for record in caplog.records
            if "sorted-run" in record.getMessage()
        ]
        assert len(notices) == 1

    def test_vectorized_queries_on_loaded_runs(self, tmp_path, generated_graph_small):
        fresh = IndexedStore(generated_graph_small)
        path = tmp_path / "vec.sp2b"
        save_snapshot(fresh, path)
        loaded = load_snapshot(path)
        loaded_engine = SparqlEngine(NATIVE_COST, store=loaded)
        fresh_engine = SparqlEngine(NATIVE_COST, store=fresh)
        for query_id in ("Q2", "Q4", "Q6", "Q9"):
            text = get_query(query_id).text
            fresh_result = fresh_engine.query(text)
            loaded_result = loaded_engine.query(text)
            if fresh_result.form == "SELECT":
                assert fresh_result.as_multiset() == loaded_result.as_multiset()
            else:
                assert bool(fresh_result) == bool(loaded_result)
