"""Unit tests for the term dictionary."""

from repro.rdf import Literal, URIRef
from repro.store import TermDictionary


class TestTermDictionary:
    def test_encode_assigns_sequential_ids(self):
        dictionary = TermDictionary()
        assert dictionary.encode(URIRef("http://x/a")) == 0
        assert dictionary.encode(URIRef("http://x/b")) == 1

    def test_encode_is_idempotent(self):
        dictionary = TermDictionary()
        first = dictionary.encode(URIRef("http://x/a"))
        second = dictionary.encode(URIRef("http://x/a"))
        assert first == second
        assert len(dictionary) == 1

    def test_decode_inverts_encode(self):
        dictionary = TermDictionary()
        term = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        term_id = dictionary.encode(term)
        assert dictionary.decode(term_id) == term

    def test_lookup_returns_none_for_unknown(self):
        dictionary = TermDictionary()
        assert dictionary.lookup(URIRef("http://x/a")) is None

    def test_contains(self):
        dictionary = TermDictionary()
        dictionary.encode(URIRef("http://x/a"))
        assert URIRef("http://x/a") in dictionary
        assert URIRef("http://x/b") not in dictionary

    def test_distinct_literals_by_datatype(self):
        dictionary = TermDictionary()
        plain = dictionary.encode(Literal("5"))
        typed = dictionary.encode(Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer"))
        assert plain != typed

    def test_encoding_order_is_first_seen(self):
        dictionary = TermDictionary()
        terms = [URIRef(f"http://x/{i}") for i in range(10)]
        ids = [dictionary.encode(term) for term in terms]
        assert ids == list(range(10))
