"""Unit tests for the content-addressed dataset cache."""

from dataclasses import replace

import pytest

from repro.bench import BenchmarkHarness, ExperimentConfig
from repro.cache import (
    DatasetCache,
    combined_cache_key,
    dataset_key,
    default_cache_dir,
    resolve_dataset,
)
from repro.generator import GeneratorConfig
from repro.queries import get_query
from repro.sparql import NATIVE_OPTIMIZED
from repro.store import IndexedStore, MemoryStore


@pytest.fixture()
def cache(tmp_path):
    return DatasetCache(tmp_path / "cache")


SMALL = GeneratorConfig(triple_limit=500, seed=7)


class TestKeys:
    def test_key_is_deterministic(self):
        assert dataset_key(SMALL) == dataset_key(GeneratorConfig(triple_limit=500, seed=7))

    def test_key_covers_every_generator_knob(self):
        base = dataset_key(SMALL)
        assert dataset_key(replace(SMALL, seed=8)) != base
        assert dataset_key(replace(SMALL, triple_limit=501)) != base
        assert dataset_key(replace(SMALL, abstract_fraction=0.02)) != base
        assert dataset_key(SMALL, store_type="memory") != base

    def test_key_covers_generator_code(self, monkeypatch):
        # Editing the generator sources must invalidate every cached
        # dataset — a config-identical entry built by older code is stale.
        import repro.cache as cache_module

        base = dataset_key(SMALL)
        assert cache_module._generator_code_digest()  # real digest computed
        monkeypatch.setattr(
            cache_module, "_generator_digest_cache", "different-code"
        )
        assert dataset_key(SMALL) != base

    def test_key_is_human_readable(self):
        assert dataset_key(SMALL).startswith("indexed-500t-")
        assert dataset_key(GeneratorConfig(end_year=1950), "memory").startswith(
            "memory-y1950-"
        )

    def test_combined_key_order_independent(self):
        a = GeneratorConfig(triple_limit=100)
        b = GeneratorConfig(triple_limit=200)
        assert combined_cache_key([a, b]) == combined_cache_key([b, a])
        assert combined_cache_key([a]) != combined_cache_key([b])

    def test_unknown_store_type_rejected(self):
        with pytest.raises(ValueError):
            dataset_key(SMALL, store_type="quantum")


class TestResolve:
    def test_miss_builds_and_saves(self, cache):
        resolved = cache.resolve(SMALL)
        assert not resolved.hit
        assert resolved.path.exists()
        assert isinstance(resolved.store, IndexedStore)
        assert len(resolved.store) >= 500
        assert resolved.statistics["triples"] >= 500

    def test_hit_loads_identical_store_and_statistics(self, cache):
        built = cache.resolve(SMALL)
        loaded = cache.resolve(SMALL)
        assert loaded.hit
        assert set(loaded.store.triples()) == set(built.store.triples())
        assert loaded.store.statistics == built.store.statistics
        assert loaded.statistics == built.statistics
        assert len(list(cache.root.glob("*.sp2b"))) == 1

    def test_memory_store_family(self, cache):
        resolved = cache.resolve(SMALL, store_type="memory")
        assert isinstance(resolved.store, MemoryStore)
        assert isinstance(cache.resolve(SMALL, store_type="memory").store, MemoryStore)

    def test_corrupt_entry_is_rebuilt(self, cache):
        resolved = cache.resolve(SMALL)
        resolved.path.write_bytes(b"garbage" * 100)
        rebuilt = cache.resolve(SMALL)
        assert not rebuilt.hit
        assert set(rebuilt.store.triples()) == set(resolved.store.triples())

    def test_remove_and_clear(self, cache):
        cache.resolve(SMALL)
        cache.resolve(replace(SMALL, seed=8))
        assert cache.remove(SMALL)
        assert not cache.remove(SMALL)
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_entries_expose_metadata(self, cache):
        cache.resolve(SMALL)
        (entry,) = cache.entries()
        assert entry.key == dataset_key(SMALL)
        assert entry.metadata["triples"] >= 500
        assert entry.size_bytes > 0

    def test_unwritable_cache_dir_still_returns_store(self, tmp_path):
        # Best-effort cache: an uncreatable cache directory must not fail
        # the bench run — the store is built and returned, not persisted.
        # (A regular file where the directory should go defeats mkdir even
        # for root, unlike permission bits.)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        resolved = DatasetCache(blocker / "cache").resolve(SMALL)
        assert not resolved.hit
        assert len(resolved.store) >= 500
        assert not resolved.path.exists()

    def test_warm_hit_recalls_generation_time_not_load_time(self, cache):
        built = cache.resolve(SMALL)
        assert built.generation_time > 0
        hit = cache.resolve(SMALL)
        # The hit's own elapsed is the (fast) snapshot load; its
        # generation_time is the recorded build-time measurement.
        assert hit.generation_time == pytest.approx(built.generation_time)

    def test_prune_keeps_only_named_keys(self, cache):
        kept = cache.resolve(SMALL)
        cache.resolve(replace(SMALL, seed=8))
        orphan = cache.root / "stale.sp2b.tmp.42"
        orphan.write_bytes(b"half-written")
        assert cache.prune([kept.key]) == 1
        assert not orphan.exists()
        (entry,) = cache.entries()
        assert entry.key == kept.key

    def test_clear_sweeps_orphaned_temp_files(self, cache):
        cache.resolve(SMALL)
        orphan = cache.root / "indexed-500t-deadbeef.sp2b.tmp.999"
        orphan.write_bytes(b"half-written")
        assert cache.clear() == 1
        assert not orphan.exists()

    def test_resolve_dataset_convenience(self, tmp_path):
        resolved = resolve_dataset(
            cache_dir=tmp_path / "c", triple_limit=300, seed=7
        )
        assert resolved.path.parent == tmp_path / "c"
        assert len(resolved.store) >= 300


class TestDefaultDirectory:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("SP2B_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("SP2B_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "sp2bench"


class TestHarnessIntegration:
    def test_harness_resolves_documents_through_cache(self, tmp_path):
        config = ExperimentConfig(
            document_sizes=(400,),
            engines=(NATIVE_OPTIMIZED,),
            queries=(get_query("Q1"),),
            trace_memory=False,
            cache_dir=str(tmp_path / "cache"),
        )
        harness = BenchmarkHarness(config)
        first_documents = harness.generate_documents()
        assert len(list((tmp_path / "cache").glob("*.sp2b"))) == 1
        # The cached document is a store, still a valid triple source.
        document, _elapsed, stats = first_documents[400]
        assert isinstance(document, IndexedStore)
        assert stats["triples"] >= 400

        first = harness.run(first_documents)
        second = harness.run()  # re-resolves: must hit the cache
        assert len(list((tmp_path / "cache").glob("*.sp2b"))) == 1
        assert first.result_sizes(400) == second.result_sizes(400)

    def test_uncached_harness_behaviour_unchanged(self):
        config = ExperimentConfig(
            document_sizes=(400,),
            engines=(NATIVE_OPTIMIZED,),
            queries=(get_query("Q1"),),
            trace_memory=False,
        )
        documents = BenchmarkHarness(config).generate_documents()
        document, _elapsed, stats = documents[400]
        from repro.rdf import Graph

        assert isinstance(document, Graph)
        assert stats["triples"] >= 400

    def test_cached_and_fresh_runs_agree(self, tmp_path):
        queries = (get_query("Q1"), get_query("Q5a"), get_query("Q11"))
        base = dict(
            document_sizes=(600,),
            engines=(NATIVE_OPTIMIZED,),
            queries=queries,
            trace_memory=False,
        )
        fresh = BenchmarkHarness(ExperimentConfig(**base)).run()
        cached = BenchmarkHarness(
            ExperimentConfig(cache_dir=str(tmp_path / "cache"), **base)
        ).run()
        assert fresh.result_sizes(600) == cached.result_sizes(600)
