"""Tests for the Figure 2 data series."""


from repro.analysis import (
    citation_distribution_series,
    document_class_series,
    incoming_citation_series,
    publication_count_series,
)


class TestFigure2a:
    def test_model_probabilities_peak_near_mu(self):
        series = citation_distribution_series()["model"]
        probabilities = dict(series)
        assert probabilities[17] > probabilities[5]
        assert probabilities[17] > probabilities[45]

    def test_measured_series_is_normalised(self, generated_graph_medium):
        measured = citation_distribution_series(generated_graph_medium)["measured"]
        if measured is not None:
            total = sum(probability for _x, probability in measured)
            assert total <= 1.0 + 1e-9

    def test_series_covers_requested_range(self):
        series = citation_distribution_series(max_citations=25)["model"]
        assert [x for x, _p in series] == list(range(1, 26))


class TestFigure2b:
    def test_model_counts_grow_with_year(self):
        model = document_class_series()["model"]
        articles = dict(model["article"])
        assert articles[2005] > articles[1980] > articles[1960]

    def test_inproceedings_exceed_proceedings(self):
        model = document_class_series()["model"]
        inproceedings = dict(model["inproceedings"])
        proceedings = dict(model["proceedings"])
        for year in (1990, 2000):
            assert inproceedings[year] > proceedings[year]

    def test_measured_counts_available_for_generated_years(self, generated_graph_medium):
        years = tuple(range(1940, 1961))
        measured = document_class_series(generated_graph_medium, years=years)["measured"]
        article_counts = dict(measured["article"])
        assert sum(article_counts.values()) > 0


class TestFigure2c:
    def test_model_is_decreasing_in_publication_count(self):
        model = publication_count_series()["model"]
        series_1995 = dict(model[1995])
        assert series_1995[1] > series_1995[5] > series_1995[20]

    def test_model_moves_up_over_years(self):
        model = publication_count_series()["model"]
        assert dict(model[2005])[1] > dict(model[1975])[1]

    def test_measured_histogram_long_tailed(self, generated_graph_medium):
        measured = publication_count_series(generated_graph_medium)["measured"]
        counts = dict(measured)
        assert counts[1] > counts.get(10, 0)


class TestIncomingCitations:
    def test_series_shape(self, generated_graph_medium):
        series = incoming_citation_series(generated_graph_medium, max_count=10)
        assert [x for x, _count in series] == list(range(1, 11))
        assert all(count >= 0 for _x, count in series)
