"""Tests for the Section III measurements over generated documents."""

import pytest

from repro.analysis import DocumentSetStatistics, analyze
from repro.generator import attribute_probability


@pytest.fixture(scope="module")
def stats(generated_graph_medium):
    return DocumentSetStatistics(generated_graph_medium)


class TestClassCounts:
    def test_class_counts_cover_core_classes(self, stats):
        counts = stats.class_counts()
        assert counts.get("article", 0) > 0
        assert counts.get("journal", 0) > 0
        assert counts.get("inproceedings", 0) > 0

    def test_articles_dominate_books(self, stats):
        counts = stats.class_counts()
        assert counts.get("article", 0) > 10 * counts.get("book", 0)

    def test_counts_by_year_increase_over_time(self, stats):
        by_year = stats.class_counts_by_year()
        years = sorted(by_year)
        early, late = years[0], years[-1]
        early_total = sum(by_year[early].values())
        late_total = sum(by_year[late].values())
        assert late_total > early_total

    def test_last_year_is_plausible(self, stats):
        assert 1945 <= stats.last_year() <= 1975


class TestAttributeProbabilities:
    def test_measured_pages_probability_matches_table1(self, stats):
        measured = stats.attribute_probability("pages", "article")
        assert measured == pytest.approx(attribute_probability("pages", "article"), abs=0.08)

    def test_measured_month_probability_is_small(self, stats):
        assert stats.attribute_probability("month", "article") < 0.05

    def test_isbn_never_on_articles(self, stats):
        assert stats.attribute_probability("isbn", "article") == 0.0

    def test_title_always_present(self, stats):
        assert stats.attribute_probability("title", "article") == pytest.approx(1.0)

    def test_probability_of_unused_class_is_zero(self, stats):
        assert stats.attribute_probability("pages", "www") == 0.0

    def test_probability_table_shape(self, stats):
        table = stats.attribute_probability_table(("pages", "month"), ("article",))
        assert set(table) == {"pages", "month"}
        assert set(table["pages"]) == {"article"}


class TestAuthors:
    def test_total_authors_exceed_distinct_authors(self, stats):
        assert stats.total_authors() >= stats.distinct_authors() > 0

    def test_authors_per_paper_histogram_starts_at_one(self, stats):
        histogram = stats.authors_per_paper_histogram()
        assert min(histogram) >= 1

    def test_publication_count_histogram_long_tailed(self, stats):
        histogram = stats.publication_count_histogram()
        # More authors with one publication than with five or more.
        few = histogram.get(1, 0)
        many = sum(count for publications, count in histogram.items() if publications >= 5)
        assert few > many

    def test_person_count_consistency(self, stats):
        assert stats.person_count() >= stats.distinct_authors()
        assert stats.blank_node_person_count() == stats.person_count() - 1


class TestCitations:
    def test_outgoing_histogram_within_gaussian_support(self, stats):
        histogram = stats.outgoing_citation_histogram()
        if histogram:
            assert max(histogram) <= 80

    def test_incoming_histogram_skewed(self, stats):
        histogram = stats.incoming_citation_histogram()
        if histogram:
            assert min(histogram) >= 1


class TestSummary:
    def test_summary_fields(self, stats, generated_graph_medium):
        summary = stats.summary()
        assert summary["triples"] == len(generated_graph_medium)
        assert summary["total_authors"] == stats.total_authors()
        assert "class_counts" in summary

    def test_analyze_helper(self, generated_graph_small):
        assert isinstance(analyze(generated_graph_small), DocumentSetStatistics)
