"""Shared fixtures: hand-built sample graphs and generated documents."""

from __future__ import annotations

import pytest

from repro.generator import DblpGenerator, GeneratorConfig
from repro.rdf import (
    BENCH,
    DC,
    DCTERMS,
    FOAF,
    PERSON,
    RDF,
    RDFS,
    SWRC,
    BNode,
    Graph,
    Literal,
    Triple,
    URIRef,
)
from repro.sparql import (
    ENGINE_PRESETS,
    NATIVE_OPTIMIZED,
    SparqlEngine,
)

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"


def string_literal(value):
    return Literal(value, datatype=XSD_STRING)


@pytest.fixture(scope="session")
def sample_graph():
    """A small hand-built DBLP-like graph with known content.

    Contains: one journal ("Journal 1 (1940)"), two articles, one
    proceedings, two inproceedings, three persons (one of them Paul Erdoes),
    a citation bag, and the schema layer — enough to give every benchmark
    query a non-trivial evaluation.
    """
    g = Graph()

    # Schema layer.
    for class_uri in (BENCH.Journal, BENCH.Article, BENCH.Inproceedings,
                      BENCH.Proceedings, BENCH.Book):
        g.add(Triple(class_uri, RDFS.subClassOf, FOAF.Document))

    journal = URIRef("http://localhost/publications/journals/Journal1/1940")
    g.add(Triple(journal, RDF.type, BENCH.Journal))
    g.add(Triple(journal, DC.title, string_literal("Journal 1 (1940)")))
    g.add(Triple(journal, DCTERMS.issued, Literal(1940)))

    erdoes = PERSON.Paul_Erdoes
    alice = BNode("Alice_Smith")
    bob = BNode("Bob_Jones")
    for person, name in ((erdoes, "Paul Erdoes"), (alice, "Alice Smith"), (bob, "Bob Jones")):
        g.add(Triple(person, RDF.type, FOAF.Person))
        g.add(Triple(person, FOAF.name, string_literal(name)))

    article1 = URIRef("http://localhost/publications/article/1950/1")
    g.add(Triple(article1, RDF.type, BENCH.Article))
    g.add(Triple(article1, DC.title, string_literal("Optimization of queries")))
    g.add(Triple(article1, DCTERMS.issued, Literal(1950)))
    g.add(Triple(article1, DC.creator, erdoes))
    g.add(Triple(article1, DC.creator, alice))
    g.add(Triple(article1, SWRC.journal, journal))
    g.add(Triple(article1, SWRC.pages, string_literal("1--10")))
    g.add(Triple(article1, RDFS.seeAlso, string_literal("http://example.org/ee/1")))

    article2 = URIRef("http://localhost/publications/article/1960/2")
    g.add(Triple(article2, RDF.type, BENCH.Article))
    g.add(Triple(article2, DC.title, string_literal("Indexing semistructured data")))
    g.add(Triple(article2, DCTERMS.issued, Literal(1960)))
    g.add(Triple(article2, DC.creator, alice))
    g.add(Triple(article2, SWRC.journal, journal))
    g.add(Triple(article2, SWRC.month, Literal(4)))
    g.add(Triple(article2, RDFS.seeAlso, string_literal("http://example.org/ee/2")))

    proceedings = URIRef("http://localhost/publications/proceedings/1960/3")
    g.add(Triple(proceedings, RDF.type, BENCH.Proceedings))
    g.add(Triple(proceedings, DC.title, string_literal("Conference 1 (1960)")))
    g.add(Triple(proceedings, DCTERMS.issued, Literal(1960)))
    g.add(Triple(proceedings, SWRC.editor, erdoes))

    inproc1 = URIRef("http://localhost/publications/inproceedings/1960/4")
    g.add(Triple(inproc1, RDF.type, BENCH.Inproceedings))
    g.add(Triple(inproc1, DC.title, string_literal("A study of joins")))
    g.add(Triple(inproc1, DCTERMS.issued, Literal(1960)))
    g.add(Triple(inproc1, DC.creator, alice))
    g.add(Triple(inproc1, DC.creator, bob))
    g.add(Triple(inproc1, DCTERMS.partOf, proceedings))
    g.add(Triple(inproc1, BENCH.booktitle, string_literal("Conference 1 (1960)")))
    g.add(Triple(inproc1, SWRC.pages, string_literal("11--20")))
    g.add(Triple(inproc1, FOAF.homepage, string_literal("http://example.org/inproc/1")))
    g.add(Triple(inproc1, RDFS.seeAlso, string_literal("http://example.org/ee/3")))
    g.add(Triple(inproc1, BENCH.abstract, string_literal("lorem ipsum " * 30)))

    inproc2 = URIRef("http://localhost/publications/inproceedings/1960/5")
    g.add(Triple(inproc2, RDF.type, BENCH.Inproceedings))
    g.add(Triple(inproc2, DC.title, string_literal("Benchmarking engines")))
    g.add(Triple(inproc2, DCTERMS.issued, Literal(1960)))
    g.add(Triple(inproc2, DC.creator, bob))
    g.add(Triple(inproc2, DCTERMS.partOf, proceedings))
    g.add(Triple(inproc2, BENCH.booktitle, string_literal("Conference 1 (1960)")))
    g.add(Triple(inproc2, SWRC.pages, string_literal("21--30")))
    g.add(Triple(inproc2, FOAF.homepage, string_literal("http://example.org/inproc/2")))
    g.add(Triple(inproc2, RDFS.seeAlso, string_literal("http://example.org/ee/4")))

    # inproc1 cites article1 via an rdf:Bag reference list.
    bag = BNode("references_1")
    g.add(Triple(inproc1, DCTERMS.references, bag))
    g.add(Triple(bag, RDF.type, RDF.Bag))
    g.add(Triple(bag, RDF.term("_1"), article1))

    return g


@pytest.fixture(scope="session")
def generated_graph_small():
    """A deterministically generated ~2000-triple document."""
    return DblpGenerator(GeneratorConfig(triple_limit=2_000, seed=7)).graph()


@pytest.fixture(scope="session")
def generated_graph_medium():
    """A deterministically generated ~5000-triple document."""
    return DblpGenerator(GeneratorConfig(triple_limit=5_000, seed=7)).graph()


@pytest.fixture(scope="session")
def native_engine(generated_graph_small):
    """A native-optimized engine over the small generated document."""
    return SparqlEngine.from_graph(generated_graph_small, NATIVE_OPTIMIZED)


@pytest.fixture(scope="session")
def all_engines_small(generated_graph_small):
    """All four engine presets loaded with the small generated document."""
    return [SparqlEngine.from_graph(generated_graph_small, config) for config in ENGINE_PRESETS]


@pytest.fixture(scope="session")
def sample_engines(sample_graph):
    """All four engine presets loaded with the hand-built sample graph."""
    return [SparqlEngine.from_graph(sample_graph, config) for config in ENGINE_PRESETS]
