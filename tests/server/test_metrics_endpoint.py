"""Live-server telemetry: /metrics exposition, logs, and extended /health.

One instrumented server (enabled registry, access log into a StringIO,
zero slow-query threshold so every request produces a slow record) serves
the module.  The global registry is shared across the process, so every
assertion works on scrape *deltas* around this module's own requests.
"""

import io
import json
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro import SparqlEngine, SparqlServer, generate_graph, get_query
from repro.obs import ServerTelemetry, disable_metrics, enable_metrics
from repro.obs.logs import JsonLinesLogger
from repro.obs.scrape import parse_exposition

SELECT_QUERY = get_query("Q1").text


@pytest.fixture(scope="module")
def server():
    enable_metrics()
    access_stream = io.StringIO()
    telemetry = ServerTelemetry(
        access_logger=JsonLinesLogger(access_stream),
        slow_query_seconds=0.0,
        metrics_endpoint=True,
    )
    engine = SparqlEngine.from_graph(generate_graph(triple_limit=1_000))
    with SparqlServer(engine, port=0, workers=2, default_timeout=10.0,
                      telemetry=telemetry) as live:
        live.test_access_stream = access_stream
        yield live
    disable_metrics()


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.headers["Content-Type"], \
                response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.headers["Content-Type"], \
            error.read().decode("utf-8")


def run_query(server, text):
    quoted = urllib.parse.urlencode({"query": text})
    status, _type, body = fetch(f"{server.url}?{quoted}")
    return status, body


def scrape(server):
    status, content_type, body = fetch(server.metrics_url)
    assert status == 200
    return content_type, parse_exposition(body)


def scrape_when(server, predicate):
    """Scrape until ``predicate(snapshot)`` holds (workers observe their
    request *after* sending the response, so metrics trail the client)."""
    deadline = time.monotonic() + 2.0
    while True:
        _type, after = scrape(server)
        if predicate(after) or time.monotonic() > deadline:
            return after


class TestMetricsEndpoint:
    def test_exposition_is_prometheus_text(self, server):
        content_type, snapshot = scrape(server)
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert snapshot.get("sp2b_server_inflight_requests") is not None

    def test_request_counters_and_stage_timings_move(self, server):
        _type, before = scrape(server)
        for _ in range(3):
            status, _body = run_query(server, SELECT_QUERY)
            assert status == 200
        after = scrape_when(
            server,
            lambda s: s.delta(before, "sp2b_http_requests_total",
                              endpoint="/sparql", status="200") == 3,
        )
        assert after.delta(before, "sp2b_http_requests_total",
                           endpoint="/sparql", status="200") == 3
        assert after.delta(before, "sp2b_http_request_seconds_count",
                           endpoint="/sparql") == 3
        for stage in ("queue", "execute", "serialize"):
            assert after.delta(before, "sp2b_query_stage_seconds_count",
                               stage=stage) == 3, stage
        assert after.delta(before, "sp2b_server_queue_wait_seconds_count") == 3
        assert after.delta(before, "sp2b_http_result_rows_total") == 3

    def test_bad_query_counts_under_its_status(self, server):
        _type, before = scrape(server)
        status, _body = run_query(server, "SELECT WHERE broken")
        assert status == 400
        after = scrape_when(
            server,
            lambda s: s.delta(before, "sp2b_http_requests_total",
                              endpoint="/sparql", status="400") == 1,
        )
        assert after.delta(before, "sp2b_http_requests_total",
                           endpoint="/sparql", status="400") == 1

    def test_prepared_cache_hit_on_repeat(self, server):
        query = "SELECT ?s WHERE { ?s ?p ?o } LIMIT 2"
        _type, before = scrape(server)
        run_query(server, query)
        run_query(server, query)
        after = scrape_when(
            server,
            lambda s: s.delta(before, "sp2b_query_stage_seconds_count",
                              stage="execute") == 2,
        )
        assert after.delta(before, "sp2b_prepared_cache_misses_total") >= 1
        assert after.delta(before, "sp2b_prepared_cache_hits_total") >= 1
        # Only the cache miss parses and plans.
        parses = after.delta(before, "sp2b_query_stage_seconds_count",
                             stage="parse")
        executes = after.delta(before, "sp2b_query_stage_seconds_count",
                               stage="execute")
        assert parses < executes

    def test_metrics_endpoint_404_without_flag(self, server):
        plain = SparqlServer(server.engine, port=0, workers=1)
        with plain:
            status, _type, body = fetch(plain.metrics_url)
        assert status == 404

    def test_histogram_buckets_scrape_consistently(self, server):
        run_query(server, SELECT_QUERY)
        _type, snapshot = scrape(server)
        inf = snapshot.get("sp2b_http_request_seconds_bucket",
                           endpoint="/sparql", le="+Inf")
        count = snapshot.get("sp2b_http_request_seconds_count",
                             endpoint="/sparql")
        assert inf == count > 0


class TestStructuredLogs:
    def records(self, server, kind, minimum=1):
        # Telemetry is observed *after* the response bytes go out, so poll
        # briefly instead of racing the worker thread.
        deadline = time.monotonic() + 2.0
        while True:
            found = [json.loads(line) for line
                     in server.test_access_stream.getvalue().splitlines()]
            found = [record for record in found if record["type"] == kind]
            if len(found) >= minimum or time.monotonic() > deadline:
                return found

    def test_access_records_carry_stage_timings(self, server):
        already = len(self.records(server, "access", minimum=0))
        status, _body = run_query(server, SELECT_QUERY)
        assert status == 200
        record = self.records(server, "access", minimum=already + 1)[-1]
        assert record["endpoint"] == "/sparql"
        assert record["status"] == 200
        assert record["form"] == "SELECT"
        assert record["query_hash"]
        assert {"queue", "execute", "serialize"} <= set(record["stages_ms"])
        assert record["budget_s"] == 10.0
        assert 0 <= record["budget_consumed_s"] <= 10.0

    def test_repeat_query_is_marked_cache_hit(self, server):
        query = "SELECT ?s WHERE { ?s ?p ?o } LIMIT 3"
        already = len(self.records(server, "access", minimum=0))
        run_query(server, query)
        run_query(server, query)
        records = self.records(server, "access", minimum=already + 2)
        hits = [record["cache_hit"] for record in records[already:]]
        # Records may land out of submission order (telemetry is written
        # after the response goes out), so assert the multiset: the repeat
        # run must hit, and at most one run may miss.
        assert len(hits) == 2
        assert hits.count(True) >= 1

    def test_slow_query_record_has_text_and_timed_plan(self, server):
        already = len(self.records(server, "slow_query", minimum=0))
        status, _body = run_query(server, SELECT_QUERY)
        assert status == 200
        record = self.records(server, "slow_query",
                              minimum=already + 1)[-1]
        assert record["query"].lstrip().upper().startswith(("PREFIX",
                                                            "SELECT"))
        assert "plan:" in record["plan"]
        assert "stages:" in record["plan"]
        assert "BGP" in record["plan"]


class TestHealthTelemetryFields:
    def test_health_reports_uptime_and_occupancy(self, server):
        status, _type, body = fetch(server.health_url)
        assert status == 200
        payload = json.loads(body)
        assert payload["uptime_seconds"] >= 0
        # The health request itself occupies a worker slot.
        assert payload["inflight"] >= 1
        assert 0 < payload["occupancy"] <= 1
        assert payload["workers"] == 2
