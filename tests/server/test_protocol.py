"""Unit tests for the socket-free SPARQL Protocol logic.

Covers the three query transport forms, the ``timeout=`` extension, content
negotiation with q-values and wildcards, and the status/payload mapping of
protocol failures — all without starting a server.
"""

import pytest

from repro.server import ProtocolError, negotiate, parse_query_request
from repro.sparql.errors import (
    ERROR_BAD_REQUEST,
    ERROR_PARSE,
    ERROR_TIMEOUT,
    QueryTimeout,
    SparqlSyntaxError,
    error_code,
    error_payload,
)

QUERY = "SELECT ?s WHERE { ?s ?p ?o }"


class TestParseQueryRequest:
    def test_get_with_query_parameter(self):
        text, timeout = parse_query_request(
            "GET", "/sparql?query=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D"
        )
        assert text == QUERY
        assert timeout is None

    def test_get_without_query_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request("GET", "/sparql")
        assert excinfo.value.status == 400

    def test_get_with_duplicate_query_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request("GET", "/sparql?query=a&query=b")
        assert excinfo.value.status == 400

    def test_post_direct_body(self):
        text, _timeout = parse_query_request(
            "POST", "/sparql",
            content_type="application/sparql-query; charset=utf-8",
            body=QUERY,
        )
        assert text == QUERY

    def test_post_form_encoded_body(self):
        text, timeout = parse_query_request(
            "POST", "/sparql",
            content_type="application/x-www-form-urlencoded",
            body="query=SELECT%20%2A%20WHERE%20%7B%7D&timeout=2.5",
        )
        assert text == "SELECT * WHERE {}"
        assert timeout == 2.5

    def test_post_unknown_content_type_is_415(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request(
                "POST", "/sparql", content_type="text/turtle", body=QUERY
            )
        assert excinfo.value.status == 415

    def test_unknown_method_is_405(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request("PUT", "/sparql")
        assert excinfo.value.status == 405

    def test_empty_query_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request("GET", "/sparql?query=%20%20")
        assert excinfo.value.status == 400

    def test_timeout_url_parameter(self):
        _text, timeout = parse_query_request(
            "GET", f"/sparql?query={QUERY}&timeout=5"
        )
        assert timeout == 5.0

    def test_timeout_capped_by_server_maximum(self):
        _text, timeout = parse_query_request(
            "GET", f"/sparql?query={QUERY}&timeout=600", max_timeout=30.0
        )
        assert timeout == 30.0

    def test_malformed_timeout_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request("GET", f"/sparql?query={QUERY}&timeout=soon")
        assert excinfo.value.status == 400

    def test_negative_timeout_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request("GET", f"/sparql?query={QUERY}&timeout=-1")
        assert excinfo.value.status == 400


class TestNegotiate:
    def test_absent_and_wildcard_default_to_json(self):
        assert negotiate(None) == "json"
        assert negotiate("") == "json"
        assert negotiate("*/*") == "json"

    @pytest.mark.parametrize("media, format", [
        ("application/sparql-results+json", "json"),
        ("application/sparql-results+xml", "xml"),
        ("text/csv", "csv"),
        ("text/tab-separated-values", "tsv"),
        ("application/json", "json"),
        ("application/xml", "xml"),
    ])
    def test_each_supported_media_type(self, media, format):
        assert negotiate(media) == format

    def test_quality_values_rank_choices(self):
        accept = "text/csv;q=0.5, application/sparql-results+xml;q=0.9"
        assert negotiate(accept) == "xml"

    def test_first_listed_wins_ties(self):
        assert negotiate("text/csv, application/sparql-results+xml") == "csv"

    def test_wildcard_fallback_behind_explicit_type(self):
        assert negotiate("text/csv;q=0.2, */*;q=0.1") == "csv"

    def test_specific_type_beats_earlier_wildcard_at_equal_quality(self):
        # RFC 7231 §5.3.2: media-range precedence, not list order.
        assert negotiate("*/*, text/csv") == "csv"
        assert negotiate("application/*, application/sparql-results+xml") == "xml"
        assert negotiate("*/*, text/*") == "csv"

    def test_text_wildcard_prefers_csv(self):
        assert negotiate("text/*") == "csv"

    def test_zero_quality_excludes_a_type(self):
        assert negotiate("text/csv;q=0, */*") == "json"

    def test_unsupported_only_is_406(self):
        with pytest.raises(ProtocolError) as excinfo:
            negotiate("text/html")
        assert excinfo.value.status == 406

    def test_browser_style_accept_resolves(self):
        accept = "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"
        assert negotiate(accept) == "xml"


class TestErrorPayloads:
    def test_protocol_error_payload_shape(self):
        error = ProtocolError(400, "missing query parameter")
        payload = error.payload()
        assert payload["error"]["code"] == ERROR_BAD_REQUEST
        assert "missing query" in payload["error"]["message"]

    def test_syntax_error_classified_as_parse(self):
        error = SparqlSyntaxError("unexpected token", position=7)
        assert error_code(error) == ERROR_PARSE
        payload = error_payload(error)
        assert payload["error"]["code"] == ERROR_PARSE
        assert payload["error"]["position"] == 7

    def test_timeout_classified_with_budget(self):
        error = QueryTimeout(budget=1.5)
        assert error_code(error) == ERROR_TIMEOUT
        payload = error_payload(error)
        assert payload["error"]["code"] == ERROR_TIMEOUT
        assert payload["error"]["budget_seconds"] == 1.5

    def test_unknown_exception_is_internal(self):
        payload = error_payload(RuntimeError("boom"))
        assert payload["error"]["code"] == "internal_error"
        assert payload["error"]["message"] == "boom"