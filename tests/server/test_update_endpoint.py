"""SPARQL Update over HTTP: the ``/update`` endpoint against live servers.

A writable server (MVCC-wrapped store) takes updates over both transport
forms and makes them visible to subsequent protocol queries; a read-only
server refuses them with the structured 403. Error responses carry the
machine-readable payloads the protocol module defines.
"""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro import SparqlEngine, SparqlServer, generate_graph
from repro.store import MvccStore

UPDATE_TYPE = "application/sparql-update"
FORM_TYPE = "application/x-www-form-urlencoded"

INSERT = ('PREFIX ex: <http://test.example/>\n'
          'INSERT DATA { ex:s ex:p "endpoint check" . }')
PROBE = ('PREFIX ex: <http://test.example/>\n'
         'SELECT ?o WHERE { ex:s ex:p ?o }')


@pytest.fixture()
def server():
    engine = SparqlEngine.from_graph(generate_graph(triple_limit=500))
    engine.store = MvccStore(engine.store)
    with SparqlServer(engine, port=0, workers=2,
                      default_timeout=10.0) as live:
        yield live


@pytest.fixture()
def read_only_server():
    engine = SparqlEngine.from_graph(generate_graph(triple_limit=500))
    with SparqlServer(engine, port=0, workers=2, read_only=True) as live:
        yield live


def fetch(url, data=None, headers=None, method=None):
    request = urllib.request.Request(
        url, data=data, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def post_update(server, text, content_type=UPDATE_TYPE):
    if content_type == FORM_TYPE:
        data = urllib.parse.urlencode({"update": text}).encode("utf-8")
    else:
        data = text.encode("utf-8")
    return fetch(server.update_url, data=data,
                 headers={"Content-Type": content_type})


def run_query(server, text):
    url = f"{server.url}?{urllib.parse.urlencode({'query': text})}"
    status, body = fetch(
        url, headers={"Accept": "application/sparql-results+json"}
    )
    assert status == 200, body
    return json.loads(body)["results"]["bindings"]


class TestWritableServer:
    def test_insert_then_read_back(self, server):
        status, body = post_update(server, INSERT)
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["operation"] == "INSERT DATA"
        assert payload["inserted"] == 1
        rows = run_query(server, PROBE)
        assert [row["o"]["value"] for row in rows] == ["endpoint check"]

    def test_form_encoded_transport(self, server):
        status, body = post_update(server, INSERT, content_type=FORM_TYPE)
        assert status == 200
        assert json.loads(body)["inserted"] == 1

    def test_version_advances_and_health_reports_it(self, server):
        _status, before = fetch(server.health_url)
        post_update(server, INSERT)
        _status, after = fetch(server.health_url)
        before, after = json.loads(before), json.loads(after)
        assert after["version"] == before["version"] + 1
        assert after["read_only"] is False

    def test_delete_where_roundtrip(self, server):
        post_update(server, INSERT)
        status, body = post_update(
            server,
            'PREFIX ex: <http://test.example/>\n'
            'DELETE WHERE { ex:s ex:p ?o }',
        )
        assert status == 200
        assert json.loads(body)["deleted"] == 1
        assert run_query(server, PROBE) == []

    def test_malformed_update_is_structured_400(self, server):
        status, body = post_update(server, "INSERT GARBAGE { }")
        assert status == 400
        payload = json.loads(body)
        assert payload["error"]["code"] == "parse_error"

    def test_get_update_is_405(self, server):
        status, body = fetch(server.update_url)
        assert status == 405
        assert "POST" in json.loads(body)["error"]["message"]

    def test_wrong_content_type_is_415(self, server):
        status, body = fetch(
            server.update_url, data=INSERT.encode("utf-8"),
            headers={"Content-Type": "text/plain"},
        )
        assert status == 415
        assert "error" in json.loads(body)

    def test_missing_update_parameter_is_400(self, server):
        status, body = fetch(
            server.update_url,
            data=urllib.parse.urlencode({"query": PROBE}).encode("utf-8"),
            headers={"Content-Type": FORM_TYPE},
        )
        assert status == 400


class TestReadOnlyServer:
    def test_update_rejected_with_403(self, read_only_server):
        status, body = post_update(read_only_server, INSERT)
        assert status == 403
        assert json.loads(body)["error"]["code"] == "read_only"

    def test_queries_still_served(self, read_only_server):
        rows = run_query(
            read_only_server,
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 1",
        )
        assert len(rows) == 1

    def test_health_reports_read_only(self, read_only_server):
        _status, body = fetch(read_only_server.health_url)
        assert json.loads(body)["read_only"] is True

    def test_rejection_keeps_connection_usable(self, read_only_server):
        # The 403 path must drain the request body, or a keep-alive client's
        # next request would desync (the bug the mixed workload surfaced).
        import http.client

        parts = urllib.parse.urlsplit(read_only_server.url)
        connection = http.client.HTTPConnection(parts.hostname, parts.port,
                                                timeout=10.0)
        try:
            for _ in range(3):
                connection.request(
                    "POST", "/update", body=INSERT.encode("utf-8"),
                    headers={"Content-Type": UPDATE_TYPE},
                )
                response = connection.getresponse()
                assert response.status == 403
                response.read()
                connection.request(
                    "POST", "/sparql",
                    body=b"ASK { ?s ?p ?o }",
                    headers={"Content-Type": "application/sparql-query"},
                )
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
