"""SPARQL Protocol conformance tests against a live server.

One server (ephemeral port, small generated document) serves the whole
module; the tests exercise both query transport forms, all four result
content types, the structured 400/503/404/406/415 failure responses, and
concurrent clients sharing the worker pool.
"""

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from xml.etree import ElementTree

import pytest

from repro import SparqlEngine, SparqlServer, generate_graph, get_query

SELECT_QUERY = get_query("Q1").text       # one row: the year literal "1940"
ASK_QUERY = get_query("Q12a").text        # ASK with a non-empty pattern

RESULTS_NS = "{http://www.w3.org/2005/sparql-results#}"


@pytest.fixture(scope="module")
def server():
    engine = SparqlEngine.from_graph(generate_graph(triple_limit=1_000))
    with SparqlServer(engine, port=0, workers=4, default_timeout=10.0) as live:
        yield live


def fetch(url, data=None, headers=None, method=None):
    """One request; returns (status, content type, decoded body)."""
    request = urllib.request.Request(
        url, data=data, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.headers["Content-Type"], \
                response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.headers["Content-Type"], \
            error.read().decode("utf-8")


def query_url(server, text, **extra):
    parameters = {"query": text, **extra}
    return f"{server.url}?{urllib.parse.urlencode(parameters)}"


class TestQueryForms:
    def test_get_with_query_parameter(self, server):
        status, content_type, body = fetch(query_url(server, SELECT_QUERY))
        assert status == 200
        assert content_type == "application/sparql-results+json"
        document = json.loads(body)
        assert document["head"]["vars"] == ["yr"]
        values = [b["yr"]["value"] for b in document["results"]["bindings"]]
        assert values == ["1940"]

    def test_post_direct_sparql_query_body(self, server):
        status, _type, body = fetch(
            server.url,
            data=SELECT_QUERY.encode("utf-8"),
            headers={"Content-Type": "application/sparql-query"},
        )
        assert status == 200
        assert json.loads(body)["head"]["vars"] == ["yr"]

    def test_post_form_encoded_body(self, server):
        encoded = urllib.parse.urlencode({"query": SELECT_QUERY}).encode("ascii")
        status, _type, body = fetch(
            server.url,
            data=encoded,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        assert status == 200
        assert json.loads(body)["head"]["vars"] == ["yr"]

    def test_get_and_post_agree(self, server):
        _s1, _t1, get_body = fetch(query_url(server, SELECT_QUERY))
        _s2, _t2, post_body = fetch(
            server.url,
            data=SELECT_QUERY.encode("utf-8"),
            headers={"Content-Type": "application/sparql-query"},
        )
        assert get_body == post_body

    def test_ask_form(self, server):
        status, _type, body = fetch(query_url(server, ASK_QUERY))
        assert status == 200
        assert isinstance(json.loads(body)["boolean"], bool)


class TestContentNegotiation:
    @pytest.mark.parametrize("accept, expected_type", [
        ("application/sparql-results+json", "application/sparql-results+json"),
        ("application/sparql-results+xml", "application/sparql-results+xml"),
        ("text/csv", "text/csv; charset=utf-8"),
        ("text/tab-separated-values", "text/tab-separated-values; charset=utf-8"),
    ])
    def test_all_four_result_formats(self, server, accept, expected_type):
        status, content_type, body = fetch(
            query_url(server, SELECT_QUERY), headers={"Accept": accept}
        )
        assert status == 200
        assert content_type == expected_type
        assert body  # every format carries a non-empty document

    def test_xml_body_is_well_formed_sparql_results(self, server):
        _status, _type, body = fetch(
            query_url(server, SELECT_QUERY),
            headers={"Accept": "application/sparql-results+xml"},
        )
        root = ElementTree.fromstring(body)
        assert root.tag == f"{RESULTS_NS}sparql"
        literal = root.find(f".//{RESULTS_NS}literal")
        assert literal.text == "1940"

    def test_csv_body_has_header_and_row(self, server):
        _status, _type, body = fetch(
            query_url(server, SELECT_QUERY), headers={"Accept": "text/csv"}
        )
        lines = body.split("\r\n")
        assert lines[0] == "yr"
        assert lines[1] == "1940"

    def test_unsupported_accept_is_406(self, server):
        status, _type, body = fetch(
            query_url(server, SELECT_QUERY), headers={"Accept": "text/html"}
        )
        assert status == 406
        assert json.loads(body)["error"]["code"] == "bad_request"


class TestFailureResponses:
    def test_malformed_query_is_400_with_parse_payload(self, server):
        status, content_type, body = fetch(
            query_url(server, "SELECT WHERE broken {")
        )
        assert status == 400
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["error"]["code"] == "parse_error"
        assert payload["error"]["message"]

    def test_missing_query_parameter_is_400(self, server):
        status, _type, body = fetch(server.url)
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad_request"

    def test_expired_deadline_is_503_with_timeout_payload(self, server):
        status, _type, body = fetch(query_url(server, SELECT_QUERY, timeout=0))
        assert status == 503
        payload = json.loads(body)
        assert payload["error"]["code"] == "timeout"
        assert payload["error"]["budget_seconds"] == 0.0

    def test_unknown_path_is_404(self, server):
        root = server.url.rsplit("/sparql", 1)[0]
        status, _type, body = fetch(f"{root}/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_unsupported_post_content_type_is_415(self, server):
        status, _type, body = fetch(
            server.url,
            data=b"<rdf/>",
            headers={"Content-Type": "text/turtle"},
        )
        assert status == 415
        assert json.loads(body)["error"]["code"] == "bad_request"


class TestHealthAndConcurrency:
    def test_health_reports_engine_and_size(self, server):
        status, _type, body = fetch(server.health_url)
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["triples"] == len(server.engine.store)
        assert payload["workers"] == 4
        assert payload["uptime_seconds"] >= 0
        # The health request itself is being handled by a worker right now.
        assert payload["inflight"] >= 1
        assert 0 < payload["occupancy"] <= 1

    def test_concurrent_clients_get_identical_answers(self, server):
        url = query_url(server, SELECT_QUERY)
        results = [None] * 8
        errors = []

        def hit(index):
            try:
                results[index] = fetch(url)
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [
            threading.Thread(target=hit, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        statuses = {status for status, _type, _body in results}
        bodies = {body for _status, _type, body in results}
        assert statuses == {200}
        assert len(bodies) == 1