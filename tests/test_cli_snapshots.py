"""CLI tests for the snapshot and dataset-cache commands."""

import pytest

from repro.cli import main
from repro.store import read_snapshot_metadata


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "cache"
    monkeypatch.setenv("SP2B_CACHE_DIR", str(directory))
    return directory


class TestGenerateSaveSnapshot:
    def test_writes_document_and_snapshot(self, tmp_path, capsys):
        output = tmp_path / "doc.nt"
        assert main(["generate", str(output), "--triples", "400",
                     "--save-snapshot"]) == 0
        snapshot = tmp_path / "doc.sp2b"
        assert output.exists() and snapshot.exists()
        assert read_snapshot_metadata(snapshot)["store"] == "indexed"
        out = capsys.readouterr().out
        assert "saved store snapshot" in out

    def test_snapshot_and_document_answer_identically(self, tmp_path, capsys):
        # 2000 triples reach the 1940 entry points Q1 relies on.
        output = tmp_path / "doc.nt"
        main(["generate", str(output), "--triples", "2000", "--save-snapshot"])
        capsys.readouterr()

        def rows(document):
            main(["query", document, "--query", "Q1"])
            return capsys.readouterr().out.splitlines()

        snapshot_rows = rows(str(tmp_path / "doc.sp2b"))
        assert "Q1: 1 results" in snapshot_rows[0]
        assert snapshot_rows[1:] == rows(str(output))[1:]

    def test_snapshot_works_with_every_engine_preset(self, tmp_path, capsys):
        output = tmp_path / "doc.nt"
        main(["generate", str(output), "--triples", "2000", "--save-snapshot"])
        # A memory-profile engine on an indexed snapshot converts the store.
        assert main(["query", str(tmp_path / "doc.sp2b"), "--query", "Q1",
                     "--engine", "inmemory-optimized"]) == 0
        assert "Q1: 1 results" in capsys.readouterr().out


class TestBuildAndCacheCommands:
    def test_build_then_rebuild_hits_cache(self, cache_dir, capsys):
        assert main(["build", "--triples", "300", "500"]) == 0
        first = capsys.readouterr().out
        assert first.count("built") == 2
        assert len(list(cache_dir.glob("*.sp2b"))) == 2
        assert main(["build", "--triples", "300", "500"]) == 0
        second = capsys.readouterr().out
        assert second.count("cached") == 2

    def test_build_force_rebuilds(self, cache_dir, capsys):
        main(["build", "--triples", "300"])
        capsys.readouterr()
        assert main(["build", "--triples", "300", "--force"]) == 0
        assert "built" in capsys.readouterr().out

    def test_cache_list_and_clear(self, cache_dir, capsys):
        main(["build", "--triples", "300"])
        capsys.readouterr()
        assert main(["cache", "list"]) == 0
        listing = capsys.readouterr().out
        assert "indexed-300t-" in listing and "1 snapshot(s)" in listing
        assert main(["cache", "clear"]) == 0
        assert "removed 1 snapshot(s)" in capsys.readouterr().out
        assert main(["cache", "list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_prune_drops_stale_entries(self, cache_dir, capsys):
        main(["build", "--triples", "300", "500"])
        capsys.readouterr()
        assert main(["cache", "prune", "--sizes", "300"]) == 0
        assert "pruned 1 snapshot(s)" in capsys.readouterr().out
        assert len(list(cache_dir.glob("*.sp2b"))) == 1

    def test_cache_key_is_stable_and_parameter_sensitive(self, capsys):
        def key(arguments):
            assert main(["cache", "key"] + arguments) == 0
            return capsys.readouterr().out.strip()

        base = key(["--sizes", "1000,2500"])
        assert base == key(["--sizes", "1000,2500"])
        assert base.startswith("v")
        assert key(["--sizes", "1000"]) != base
        assert key(["--sizes", "1000,2500", "--seed", "1"]) != base

    def test_bench_uses_cache_dir(self, cache_dir, capsys):
        assert main(["bench", "--sizes", "400", "--queries", "Q1",
                     "--timeout", "10"]) == 0
        assert len(list(cache_dir.glob("*.sp2b"))) == 1
        capsys.readouterr()

    def test_bench_no_cache_skips_cache(self, cache_dir, capsys):
        assert main(["bench", "--sizes", "400", "--queries", "Q1",
                     "--timeout", "10", "--no-cache"]) == 0
        assert not cache_dir.exists()
        capsys.readouterr()


class TestSnapshotPath:
    def test_suffix_replacement(self):
        from repro.cli import _snapshot_path_for

        assert _snapshot_path_for("doc.nt") == "doc.sp2b"
        assert _snapshot_path_for("dir/doc.nt") == "dir/doc.sp2b"
        assert _snapshot_path_for("noext") == "noext.sp2b"
        assert _snapshot_path_for(".hidden") == ".hidden.sp2b"
        assert _snapshot_path_for("a.b.nt") == "a.b.sp2b"


class TestDispatch:
    def test_unknown_command_prints_usage(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "usage: repro" in capsys.readouterr().err
