"""Integration tests: the 17 benchmark queries on generated data.

These tests encode the result-size and behaviour invariants the paper states
in Section V-A and Table V, evaluated on a deterministically generated
document, plus the cross-engine correctness check the paper applies to
exclude misbehaving engines.
"""

import pytest

from repro.queries import ALL_QUERIES, get_query
from repro.sparql import AskResult


def query_on(engine, identifier):
    return engine.query(get_query(identifier).text)


class TestResultInvariants:
    def test_q1_returns_exactly_one_row(self, native_engine):
        assert len(query_on(native_engine, "Q1")) == 1

    def test_q1_year_is_1940(self, native_engine):
        result = query_on(native_engine, "Q1")
        assert result.rows()[0][0].to_python() == 1940

    def test_q2_rows_have_mandatory_fields_bound(self, native_engine):
        result = query_on(native_engine, "Q2")
        for binding in result:
            assert binding.get("inproc") is not None
            assert binding.get("yr") is not None

    def test_q2_is_ordered_by_year(self, native_engine):
        result = query_on(native_engine, "Q2")
        years = [binding.get("yr").to_python() for binding in result]
        assert years == sorted(years)

    def test_q3_selectivity_ordering(self, native_engine):
        # Table V: |Q3a| >> |Q3b| > |Q3c| = 0, mirroring the attribute
        # probabilities pages >> month > isbn.
        q3a = len(query_on(native_engine, "Q3a"))
        q3b = len(query_on(native_engine, "Q3b"))
        q3c = len(query_on(native_engine, "Q3c"))
        assert q3a > q3b >= q3c
        assert q3c == 0

    def test_q4_returns_symmetric_free_pairs(self, native_engine):
        result = query_on(native_engine, "Q4")
        pairs = {(str(b.get("name1")), str(b.get("name2"))) for b in result}
        for name1, name2 in pairs:
            assert name1 < name2
            assert (name2, name1) not in pairs

    def test_q5a_and_q5b_return_identical_person_sets(self, native_engine):
        # Section V-A: the one-to-one author/name mapping makes the implicit
        # and explicit join formulations equivalent.
        q5a = {str(b.get("person")) for b in query_on(native_engine, "Q5a")}
        q5b = {str(b.get("person")) for b in query_on(native_engine, "Q5b")}
        assert q5a == q5b

    def test_q6_authors_have_no_earlier_publication(self, native_engine):
        result = query_on(native_engine, "Q6")
        assert len(result) > 0
        # Every returned document year is the author's first publication year,
        # so no (name, year) pair may appear with an earlier year elsewhere.
        earliest = {}
        for binding in result:
            name = str(binding.get("name"))
            year = binding.get("yr").to_python()
            earliest.setdefault(name, set()).add(year)
        for years in earliest.values():
            assert len(years) == 1

    def test_q7_returns_few_results(self, native_engine):
        # The citation system is sparse (Section III-D), so double negation
        # yields few titles.
        assert len(query_on(native_engine, "Q7")) <= 25

    def test_q8_names_exclude_erdoes_himself(self, native_engine):
        result = query_on(native_engine, "Q8")
        names = {str(b.get("name")) for b in result}
        assert "Paul Erdoes" not in names
        assert len(result) > 0

    def test_q9_returns_exactly_four_predicates(self, native_engine):
        result = query_on(native_engine, "Q9")
        predicates = {str(b.get("predicate")) for b in result}
        assert len(result) == 4
        assert {
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            "http://xmlns.com/foaf/0.1/name",
            "http://purl.org/dc/elements/1.1/creator",
            "http://swrc.ontoware.org/ontology#editor",
        } == predicates

    def test_q10_returns_only_erdoes_relations(self, native_engine):
        result = query_on(native_engine, "Q10")
        assert len(result) > 0
        predicates = {str(b.get("pred")) for b in result}
        assert predicates <= {
            "http://purl.org/dc/elements/1.1/creator",
            "http://swrc.ontoware.org/ontology#editor",
        }

    def test_q11_returns_at_most_ten_ordered_rows(self, native_engine):
        result = query_on(native_engine, "Q11")
        values = [str(b.get("ee")) for b in result]
        assert len(values) <= 10
        assert values == sorted(values)

    def test_q12a_and_q12b_answer_yes(self, native_engine):
        assert bool(query_on(native_engine, "Q12a")) is True
        assert bool(query_on(native_engine, "Q12b")) is True

    def test_q12c_answers_no(self, native_engine):
        assert bool(query_on(native_engine, "Q12c")) is False

    def test_ask_queries_return_ask_results(self, native_engine):
        for identifier in ("Q12a", "Q12b", "Q12c"):
            assert isinstance(query_on(native_engine, identifier), AskResult)


class TestResultGrowthWithDocumentSize:
    """Table V: result sizes grow with the document for the scaling queries
    and stay constant for the constant-size queries."""

    @pytest.fixture(scope="class")
    def engines_by_size(self, generated_graph_small, generated_graph_medium):
        from repro.sparql import NATIVE_OPTIMIZED, SparqlEngine

        return {
            2000: SparqlEngine.from_graph(generated_graph_small, NATIVE_OPTIMIZED),
            5000: SparqlEngine.from_graph(generated_graph_medium, NATIVE_OPTIMIZED),
        }

    @pytest.mark.parametrize("identifier", ("Q2", "Q3a", "Q5a", "Q6"))
    def test_scaling_queries_grow(self, engines_by_size, identifier):
        small = len(query_on(engines_by_size[2000], identifier))
        large = len(query_on(engines_by_size[5000], identifier))
        assert large > small

    @pytest.mark.parametrize("identifier,expected", (("Q1", 1), ("Q3c", 0), ("Q9", 4)))
    def test_constant_queries_stay_constant(self, engines_by_size, identifier, expected):
        assert len(query_on(engines_by_size[2000], identifier)) == expected
        assert len(query_on(engines_by_size[5000], identifier)) == expected

    def test_q11_capped_at_ten_for_both_sizes(self, engines_by_size):
        assert len(query_on(engines_by_size[2000], "Q11")) <= 10
        assert len(query_on(engines_by_size[5000], "Q11")) == 10


class TestCrossEngineCorrectness:
    """All engine configurations must return identical results (the check the
    paper uses to exclude Redland and SDB)."""

    FAST_QUERIES = ("Q1", "Q2", "Q3a", "Q3b", "Q3c", "Q5b", "Q7", "Q9", "Q10",
                    "Q11", "Q12a", "Q12c")

    @pytest.mark.parametrize("identifier", FAST_QUERIES)
    def test_engines_agree(self, all_engines_small, identifier):
        reference = query_on(all_engines_small[0], identifier)
        for engine in all_engines_small[1:]:
            other = query_on(engine, identifier)
            if isinstance(reference, AskResult):
                assert bool(other) == bool(reference)
            else:
                assert other.as_multiset() == reference.as_multiset()

    @pytest.mark.parametrize("identifier", ("Q5a", "Q6", "Q8", "Q12b"))
    def test_engines_agree_on_heavier_queries(self, all_engines_small, identifier):
        reference = query_on(all_engines_small[0], identifier)
        for engine in all_engines_small[1:]:
            other = query_on(engine, identifier)
            if isinstance(reference, AskResult):
                assert bool(other) == bool(reference)
            else:
                assert other.as_multiset() == reference.as_multiset()


class TestSampleGraphBehaviour:
    """The hand-built sample graph exercises edge cases with known answers."""

    def test_all_queries_run_on_sample_graph(self, sample_engines):
        for query in ALL_QUERIES:
            for engine in sample_engines:
                result = engine.query(query.text)
                assert result is not None

    def test_q7_on_sample_graph_finds_cited_but_unthreatened_paper(self, sample_engines):
        # article1 is cited by inproc1; inproc1 itself is uncited, so the
        # double negation removes article1 from the answer.
        engine = sample_engines[-1]
        result = engine.query(get_query("Q7").text)
        assert len(result) == 0

    def test_q8_on_sample_graph(self, sample_engines):
        engine = sample_engines[-1]
        names = {str(b.get("name")) for b in engine.query(get_query("Q8").text)}
        # Alice published with Erdoes (Erdoes number 1); Bob published with
        # Alice (Erdoes number 2).
        assert names == {"Alice Smith", "Bob Jones"}

    def test_q10_on_sample_graph(self, sample_engines):
        engine = sample_engines[-1]
        result = engine.query(get_query("Q10").text)
        assert len(result) == 2
