"""Unit tests for the closed-loop multi-client workload generator."""

import pytest

from repro import SparqlEngine, SparqlServer, generate_graph
from repro.bench import reporting
from repro.bench.metrics import percentile
from repro.bench.workload import (
    EngineWorkloadClient,
    HttpWorkloadClient,
    WorkloadMix,
    WorkloadReport,
    process_mode_available,
    run_engine_workload,
    run_http_workload,
    run_workload,
)
from random import Random


@pytest.fixture(scope="module")
def engine():
    return SparqlEngine.from_graph(generate_graph(triple_limit=1_000))


class TestWorkloadMix:
    def test_from_catalog_default_mix(self):
        mix = WorkloadMix.from_catalog()
        assert "Q1" in mix.query_ids()
        assert all(text.strip() for _i, text, _w in mix.entries)

    def test_uniform_mix(self):
        mix = WorkloadMix.uniform(["Q1", "Q2"])
        assert mix.query_ids() == ["Q1", "Q2"]
        assert {weight for _i, _t, weight in mix.entries} == {1.0}

    def test_choose_is_seed_deterministic(self):
        mix = WorkloadMix.from_catalog({"Q1": 3, "Q2": 1})
        first = [mix.choose(Random(7))[0] for _ in range(20)]
        second = [mix.choose(Random(7))[0] for _ in range(20)]
        assert first == second

    def test_choose_respects_weights(self):
        mix = WorkloadMix.from_catalog({"Q1": 99, "Q2": 1})
        rng = Random(11)
        picks = [mix.choose(rng)[0] for _ in range(300)]
        assert picks.count("Q1") > picks.count("Q2")

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            WorkloadMix(())
        with pytest.raises(ValueError):
            WorkloadMix.from_catalog({"Q1": 0})

    def test_unknown_query_id_raises(self):
        with pytest.raises(KeyError):
            WorkloadMix.from_catalog({"Q99": 1})


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 0.5) == 3.0

    def test_interpolation_and_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5

    def test_order_independent(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.5


class TestEngineWorkload:
    def test_thread_mode_produces_successful_records(self, engine):
        report = run_engine_workload(
            engine, clients=2, duration=0.3, mode="thread", seed=5
        )
        assert report.total > 0
        assert report.errors == 0
        assert report.successes == report.total
        assert report.qps() > 0
        assert set(report.query_ids()) <= set(WorkloadMix.from_catalog().query_ids())

    def test_percentiles_are_monotone(self, engine):
        report = run_engine_workload(engine, clients=1, duration=0.3)
        tails = report.percentiles()
        assert 0 < tails["p50"] <= tails["p95"] <= tails["p99"]

    def test_zero_timeout_classifies_everything_as_timeout(self, engine):
        report = run_engine_workload(
            engine, clients=1, duration=0.2, timeout=0.0,
            mix=WorkloadMix.uniform(["Q2"]),
        )
        assert report.total > 0
        assert report.timeouts == report.total
        assert report.qps() == 0.0

    def test_broken_query_classifies_as_error(self, engine):
        mix = WorkloadMix([("bad", "SELECT WHERE {", 1.0)])
        report = run_engine_workload(engine, clients=1, duration=0.2, mix=mix)
        assert report.total > 0
        assert report.errors == report.total

    @pytest.mark.skipif(not process_mode_available(),
                        reason="requires the fork start method")
    def test_process_mode_produces_records(self, engine):
        report = run_engine_workload(
            engine, clients=2, duration=0.3, mode="process",
            mix=WorkloadMix.uniform(["Q1", "Q10"]),
        )
        assert report.mode == "process"
        assert report.total > 0
        assert report.errors == 0

    def test_unknown_mode_rejected(self, engine):
        with pytest.raises(ValueError):
            run_engine_workload(engine, clients=1, duration=0.1, mode="fiber")

    def test_client_factory_failure_propagates(self):
        def explode():
            raise RuntimeError("no client for you")

        with pytest.raises(RuntimeError):
            run_workload(explode, WorkloadMix.uniform(["Q1"]),
                         clients=2, duration=0.1)

    @pytest.mark.skipif(not process_mode_available(),
                        reason="requires the fork start method")
    def test_process_mode_client_failure_does_not_hang(self):
        """A child that cannot build its client fails the run, never hangs."""
        def explode():
            raise ValueError("no client for you")

        with pytest.raises(RuntimeError, match="no client for you"):
            run_workload(explode, WorkloadMix.uniform(["Q1"]),
                         clients=2, duration=0.1, mode="process")


class TestHttpWorkload:
    def test_http_clients_against_live_server(self, engine):
        with SparqlServer(engine, port=0, workers=4) as server:
            report = run_http_workload(
                server.url, clients=2, duration=0.3,
                mix=WorkloadMix.uniform(["Q1", "Q12c"]),
            )
        assert report.total > 0
        assert report.errors == 0
        assert report.successes == report.total

    def test_server_side_timeout_classified(self, engine):
        with SparqlServer(engine, port=0, workers=2) as server:
            client = HttpWorkloadClient(server.url, timeout=0.0)
            query_id, status, seconds = client.execute(
                "Q2", "SELECT ?s WHERE { ?s ?p ?o }"
            )
            client.close()
        assert status == "timeout"
        assert seconds >= 0

    def test_unreachable_endpoint_classified_as_error(self):
        client = HttpWorkloadClient("http://127.0.0.1:9/sparql")
        _query_id, status, _seconds = client.execute("Q1", "SELECT * WHERE {}")
        assert status == "error"

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            HttpWorkloadClient("ftp://example.org/sparql")


class TestWorkloadReporting:
    def make_report(self):
        report = WorkloadReport(clients=2, duration=1.0, mode="thread",
                               mix_ids=["Q1", "Q2"])
        report.spans = [(0.0, 1.0), (0.1, 1.1)]
        report.records = [
            ("Q1", "success", 0.010),
            ("Q1", "success", 0.020),
            ("Q2", "timeout", 0.500),
            ("Q2", "error", 0.001),
        ]
        return report

    def test_counts_and_window(self):
        report = self.make_report()
        assert report.total == 4
        assert report.successes == 2
        assert report.timeouts == 1
        assert report.errors == 1
        assert report.elapsed == pytest.approx(1.1)
        assert report.qps() == pytest.approx(2 / 1.1)
        assert report.qps(query_id="Q2") == 0.0

    def test_as_dict_round_trips_summary(self):
        summary = self.make_report().as_dict()
        assert summary["total"] == 4
        assert summary["per_query"]["Q1"]["success"] == 2
        assert summary["per_query"]["Q2"]["timeout"] == 1
        assert summary["p50"] > 0

    def test_table_and_summary_render(self):
        report = self.make_report()
        table = reporting.workload_table(report)
        assert "overall" in table
        assert "Q1" in table and "Q2" in table
        line = reporting.workload_summary(report)
        assert "2 client(s)" in line
        assert "timeout" in line

    def test_engine_client_records_shape(self):
        engine = SparqlEngine.from_graph(generate_graph(triple_limit=1_000))
        client = EngineWorkloadClient(engine)
        query_id, status, seconds = client.execute(
            "adhoc", "SELECT ?s WHERE { ?s rdf:type bench:Journal }"
        )
        assert (query_id, status) == ("adhoc", "success")
        assert seconds > 0