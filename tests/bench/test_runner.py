"""Unit tests for the query runner (timeout / memory / error classification)."""

import pytest

from repro.bench import ERROR, SUCCESS, TIMEOUT, QueryRunner, time_loading
from repro.queries import BenchmarkQuery, get_query
from repro.sparql import NATIVE_OPTIMIZED, IN_MEMORY_BASELINE, SparqlEngine


@pytest.fixture(scope="module")
def engine(generated_graph_small):
    return SparqlEngine.from_graph(generated_graph_small, NATIVE_OPTIMIZED)


class TestRun:
    def test_successful_select_measurement(self, engine):
        runner = QueryRunner(timeout=60.0)
        measurement = runner.run(engine, get_query("Q1"), document_size=2000)
        assert measurement.status == SUCCESS
        assert measurement.result_size == 1
        assert measurement.elapsed > 0.0
        assert measurement.query_id == "Q1"
        assert measurement.document_size == 2000
        assert measurement.engine == NATIVE_OPTIMIZED.name

    def test_ask_query_counts_one_result(self, engine):
        runner = QueryRunner(timeout=60.0)
        measurement = runner.run(engine, get_query("Q12c"))
        assert measurement.status == SUCCESS
        assert measurement.result_size == 1

    def test_timeout_classification(self, engine):
        runner = QueryRunner(timeout=0.0)
        measurement = runner.run(engine, get_query("Q2"))
        assert measurement.status == TIMEOUT
        assert measurement.elapsed > 0.0

    def test_timeout_fires_mid_stream_before_full_evaluation(self, engine):
        # The true-deadline guarantee: an over-budget query is interrupted
        # *while* evaluating — no result size is ever recorded and the
        # measured time stays far below what the full evaluation costs.
        runner = QueryRunner(timeout=60.0)
        full = runner.run(engine, get_query("Q2"))
        assert full.status == SUCCESS and full.result_size > 0
        timed_out = QueryRunner(timeout=1e-4).run(engine, get_query("Q2"))
        assert timed_out.status == TIMEOUT
        assert timed_out.result_size is None
        assert "deadline" in timed_out.error

    def test_prepared_queries_are_cached_per_engine(self, engine):
        runner = QueryRunner(timeout=60.0)
        runner.run(engine, get_query("Q1"))
        prepared = engine.prepare_cached(get_query("Q1").text)
        first_count = prepared.run_count
        runner.run(engine, get_query("Q1"))
        assert engine.prepare_cached(get_query("Q1").text) is prepared
        assert prepared.run_count == first_count + 1

    def test_runner_does_not_pin_engines(self, generated_graph_small):
        # The statement cache is engine-owned, so the runner holds no
        # references: a dropped engine (and its store) is collectable even
        # after the runner executed queries against it.
        import gc
        import weakref

        runner = QueryRunner(timeout=60.0, trace_memory=False)
        scratch = SparqlEngine.from_graph(generated_graph_small, NATIVE_OPTIMIZED)
        runner.run(scratch, get_query("Q1"))
        ref = weakref.ref(scratch)
        del scratch
        gc.collect()
        assert ref() is None

    def test_error_classification(self, engine):
        broken = BenchmarkQuery(
            identifier="Qbroken",
            description="intentionally malformed",
            text="SELECT ?x WHERE { ?x dc:title }",
        )
        measurement = QueryRunner(timeout=60.0).run(engine, broken)
        assert measurement.status == ERROR
        assert measurement.error

    def test_memory_limit_classification(self, engine):
        runner = QueryRunner(timeout=60.0, memory_limit_bytes=1)
        measurement = runner.run(engine, get_query("Q2"))
        assert measurement.status == "memory"

    def test_memory_tracing_can_be_disabled(self, engine):
        runner = QueryRunner(timeout=60.0, trace_memory=False)
        measurement = runner.run(engine, get_query("Q1"))
        assert measurement.peak_memory == 0

    def test_peak_memory_positive_when_traced(self, engine):
        runner = QueryRunner(timeout=60.0, trace_memory=True)
        measurement = runner.run(engine, get_query("Q2"))
        assert measurement.peak_memory > 0

    def test_run_many_returns_one_measurement_per_query(self, engine):
        runner = QueryRunner(timeout=60.0)
        queries = (get_query("Q1"), get_query("Q3c"), get_query("Q12c"))
        measurements = runner.run_many(engine, queries, document_size=2000)
        assert [m.query_id for m in measurements] == ["Q1", "Q3c", "Q12c"]


class TestOverallBudget:
    """The harness budget is passed down and stops new query issuance."""

    def test_exhausted_budget_classifies_without_executing(self, engine):
        runner = QueryRunner(timeout=60.0)
        queries = (get_query("Q1"), get_query("Q2"), get_query("Q3a"))
        measurements = runner.run_many(engine, queries, overall_budget=0.0)
        assert [m.status for m in measurements] == [TIMEOUT] * 3
        assert all(m.elapsed == 0.0 for m in measurements)
        assert all(m.result_size is None for m in measurements)
        assert all("budget exhausted" in m.error for m in measurements)

    def test_budget_stops_issuing_mid_suite(self, engine):
        # Q2 consumes the whole budget; everything after it is classified as
        # a timeout without being issued (elapsed stays 0).
        runner = QueryRunner(timeout=60.0)
        queries = (get_query("Q2"), get_query("Q1"), get_query("Q3a"))
        measurements = runner.run_many(engine, queries, overall_budget=1e-4)
        assert measurements[0].elapsed > 0.0          # was actually executed
        assert measurements[0].status == TIMEOUT      # but blew the budget
        assert [m.status for m in measurements[1:]] == [TIMEOUT, TIMEOUT]
        assert all(m.elapsed == 0.0 for m in measurements[1:])

    def test_remaining_budget_tightens_per_query_timeout(self, engine):
        # The per-query timeout alone would classify this run as a success;
        # the smaller remaining budget is what forces the timeout.
        runner = QueryRunner(timeout=60.0)
        measurement = runner.run(engine, get_query("Q2"), budget=1e-6)
        assert measurement.status == TIMEOUT
        assert measurement.elapsed > 1e-6

    def test_generous_budget_changes_nothing(self, engine):
        runner = QueryRunner(timeout=60.0)
        queries = (get_query("Q1"), get_query("Q12c"))
        measurements = runner.run_many(engine, queries, overall_budget=120.0)
        assert [m.status for m in measurements] == [SUCCESS, SUCCESS]

    def test_harness_overall_budget_classifies_whole_suite(self):
        from repro.bench import BenchmarkHarness, ExperimentConfig
        from repro.queries import get_query as query
        from repro.sparql import NATIVE_OPTIMIZED

        config = ExperimentConfig(
            document_sizes=(500,),
            engines=(NATIVE_OPTIMIZED,),
            queries=(query("Q1"), query("Q3a"), query("Q12c")),
            overall_budget=0.0,
            trace_memory=False,
        )
        report = BenchmarkHarness(config).run()
        assert report.measurements
        assert all(m.status == TIMEOUT for m in report.measurements)


class TestLoading:
    def test_time_loading_returns_ready_engine(self, generated_graph_small):
        engine, elapsed = time_loading(IN_MEMORY_BASELINE, generated_graph_small)
        assert elapsed >= 0.0
        assert len(engine.store) == len(generated_graph_small)

    def test_indexed_loading_slower_or_equal_but_both_complete(self, generated_graph_small):
        _memory_engine, memory_time = time_loading(IN_MEMORY_BASELINE, generated_graph_small)
        _native_engine, native_time = time_loading(NATIVE_OPTIMIZED, generated_graph_small)
        assert memory_time >= 0.0 and native_time >= 0.0
