"""Mixed read/write workload: classification, canary probe, report split.

The mixed workload interleaves SPARQL updates with the read mix and runs a
canary probe that turns a snapshot-isolation violation into a ``torn``
record.  These tests cover the status classifier, the mix composition, the
torn-pair detector (including a deliberately torn store), the read/write
report split, and short end-to-end runs in-process and over HTTP.
"""

import pytest

from repro import SparqlEngine, SparqlServer, generate_graph
from repro.bench.metrics import (
    ERROR,
    OVERLOAD,
    REJECTED,
    SUCCESS,
    TIMEOUT,
    TORN,
    classify_http_status,
)
from repro.bench.workload import (
    CANARY_DELETE_TEXT,
    CANARY_LEFT,
    CANARY_PROBE_ID,
    CANARY_PROBE_TEXT,
    CANARY_RIGHT,
    DELETE_ID,
    INSERT_ID,
    MixedEngineWorkloadClient,
    MixedWorkloadMix,
    WorkloadMix,
    WorkloadReport,
    canary_insert_text,
    run_mixed_engine_workload,
    run_mixed_http_workload,
)
from repro.bench import reporting
from repro.store import MvccStore


class TestClassifyHttpStatus:
    @pytest.mark.parametrize("status,expected", [
        (200, SUCCESS), (204, SUCCESS),
        (403, REJECTED), (405, REJECTED),
        (429, OVERLOAD),
        (400, ERROR), (404, ERROR), (500, ERROR),
    ])
    def test_status_only(self, status, expected):
        assert classify_http_status(status) == expected

    def test_503_with_timeout_code_is_timeout(self):
        body = b'{"error": {"code": "timeout", "message": "deadline"}}'
        assert classify_http_status(503, body) == TIMEOUT

    def test_503_without_timeout_code_is_overload(self):
        assert classify_http_status(503, b'{"error": {"code": "x"}}') == \
            OVERLOAD
        assert classify_http_status(503, b"Service Unavailable") == OVERLOAD

    def test_bare_503_defaults_to_timeout(self):
        assert classify_http_status(503) == TIMEOUT


class TestMixedWorkloadMix:
    def test_query_ids_include_write_operations(self):
        mix = MixedWorkloadMix(WorkloadMix.from_catalog({"Q1": 1}))
        assert mix.query_ids() == ["Q1", CANARY_PROBE_ID, INSERT_ID,
                                   DELETE_ID]

    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            MixedWorkloadMix(update_fraction=1.0)
        with pytest.raises(ValueError):
            MixedWorkloadMix(update_fraction=0.6, canary_fraction=0.5)

    def test_choose_respects_fractions(self):
        from random import Random

        mix = MixedWorkloadMix(WorkloadMix.from_catalog({"Q1": 1}),
                               update_fraction=0.4, canary_fraction=0.2)
        rng = Random(5)
        counts = {}
        for _ in range(4000):
            identifier, _text = mix.choose(rng)
            counts[identifier] = counts.get(identifier, 0) + 1
        writes = counts.get(INSERT_ID, 0) + counts.get(DELETE_ID, 0)
        assert writes == pytest.approx(1600, rel=0.15)
        assert counts.get(CANARY_PROBE_ID, 0) == pytest.approx(800, rel=0.2)
        assert counts.get("Q1", 0) == pytest.approx(1600, rel=0.15)

    def test_insert_texts_are_distinct_pairs(self):
        text = canary_insert_text(0xABC)
        assert "INSERT DATA" in text
        assert text.count(CANARY_LEFT) == 1
        assert text.count(CANARY_RIGHT) == 1
        assert canary_insert_text(1) != canary_insert_text(2)


class TestCanaryProbe:
    def test_probe_sees_no_tear_on_atomic_pairs(self):
        engine = SparqlEngine.from_graph([])
        engine.store = MvccStore(engine.store)
        engine.update(canary_insert_text(7))
        client = MixedEngineWorkloadClient(engine)
        _id, status, _seconds = client.execute(CANARY_PROBE_ID,
                                               CANARY_PROBE_TEXT)
        assert status == SUCCESS

    def test_probe_flags_half_written_pair_as_torn(self):
        # Plant a torn state directly (one half of a pair): the probe must
        # classify it as TORN, proving the detector actually detects.
        engine = SparqlEngine.from_graph([])
        engine.store = MvccStore(engine.store)
        engine.update(
            f'INSERT DATA {{ <http://localhost/canary/cbad> '
            f'<{CANARY_LEFT}> "bad" . }}'
        )
        client = MixedEngineWorkloadClient(engine)
        _id, status, _seconds = client.execute(CANARY_PROBE_ID,
                                               CANARY_PROBE_TEXT)
        assert status == TORN

    def test_delete_removes_only_complete_pairs(self):
        engine = SparqlEngine.from_graph([])
        engine.store = MvccStore(engine.store)
        engine.update(canary_insert_text(1))
        engine.update(
            f'INSERT DATA {{ <http://localhost/canary/chalf> '
            f'<{CANARY_RIGHT}> "h" . }}'
        )
        result = engine.update(CANARY_DELETE_TEXT)
        assert result.deleted == 2     # the complete pair only
        assert len(engine.store) == 1  # the torn remnant stays visible


class TestReportSplit:
    def report(self):
        return WorkloadReport(
            clients=1, duration=1.0, mode="thread",
            mix_ids=["Q1", CANARY_PROBE_ID, INSERT_ID, DELETE_ID],
            records=[
                ("Q1", SUCCESS, 0.01),
                ("Q1", SUCCESS, 0.01),
                (CANARY_PROBE_ID, TORN, 0.01),
                (INSERT_ID, SUCCESS, 0.02),
                (INSERT_ID, REJECTED, 0.02),
                (DELETE_ID, ERROR, 0.02),
            ],
            spans=[(0.0, 2.0)],
        )

    def test_read_write_counts(self):
        report = self.report()
        assert report.read_count() == 3
        assert report.write_count() == 3
        assert report.write_count(SUCCESS) == 1
        assert report.rejected == 1
        assert report.torn == 1

    def test_qps_split(self):
        report = self.report()
        assert report.read_qps() == pytest.approx(1.0)
        assert report.write_qps() == pytest.approx(0.5)

    def test_as_dict_carries_split(self):
        payload = self.report().as_dict()
        assert payload["reads"] == 3 and payload["writes"] == 3
        assert payload["rejected"] == 1 and payload["torn"] == 1
        assert payload["per_query"][INSERT_ID]["rejected"] == 1

    def test_summary_and_table_render_mixed_columns(self):
        report = self.report()
        summary = reporting.workload_summary(report)
        assert "1 rejected" in summary
        assert "1 TORN" in summary
        assert "read /" in summary and "write)" in summary
        table = reporting.workload_table(report)
        assert "rejected" in table and "torn" in table

    def test_read_only_reports_keep_plain_shape(self):
        report = WorkloadReport(
            clients=1, duration=1.0, mode="thread", mix_ids=["Q1"],
            records=[("Q1", SUCCESS, 0.01)], spans=[(0.0, 1.0)],
        )
        table = reporting.workload_table(report)
        assert "rejected" not in table and "torn" not in table
        summary = reporting.workload_summary(report)
        assert "rejected" not in summary and "read /" not in summary


class TestEndToEnd:
    def test_mixed_engine_run(self):
        engine = SparqlEngine.from_graph(generate_graph(triple_limit=1_000))
        report = run_mixed_engine_workload(
            engine, mix=WorkloadMix.from_catalog({"Q1": 1}),
            update_fraction=0.4, clients=2, duration=0.5, timeout=5.0,
            seed=11,
        )
        assert report.write_count() > 0
        assert report.torn == 0
        assert report.errors == 0
        assert report.count(query_id=CANARY_PROBE_ID) > 0

    def test_mixed_engine_run_wraps_plain_store(self):
        engine = SparqlEngine.from_graph([])
        assert not hasattr(type(engine.store), "write_transaction")
        run_mixed_engine_workload(
            engine, mix=WorkloadMix.from_catalog({"Q1": 1}),
            update_fraction=0.5, clients=1, duration=0.2, seed=1,
        )
        assert isinstance(engine.store, MvccStore)

    def test_mixed_http_run_against_writable_server(self):
        engine = SparqlEngine.from_graph(generate_graph(triple_limit=500))
        engine.store = MvccStore(engine.store)
        with SparqlServer(engine, port=0, workers=2) as server:
            report = run_mixed_http_workload(
                server.url, mix=WorkloadMix.from_catalog({"Q1": 1}),
                update_fraction=0.4, clients=2, duration=0.5,
                timeout=5.0, seed=11,
            )
        assert report.write_count(SUCCESS) > 0
        assert report.torn == 0
        assert report.errors == 0

    def test_mixed_http_run_against_read_only_server(self):
        engine = SparqlEngine.from_graph(generate_graph(triple_limit=500))
        with SparqlServer(engine, port=0, workers=2,
                          read_only=True) as server:
            report = run_mixed_http_workload(
                server.url, mix=WorkloadMix.from_catalog({"Q1": 1}),
                update_fraction=0.4, clients=2, duration=0.5,
                timeout=5.0, seed=11,
            )
        # Writes are refused by policy, not errors; reads keep flowing.
        assert report.rejected > 0
        assert report.errors == 0
        assert report.write_count(SUCCESS) == 0
        assert report.read_count(SUCCESS) > 0
