"""Unit tests for the benchmark metrics (Section VI-B)."""

import math

import pytest

from repro.bench import (
    ERROR,
    MEMORY,
    SUCCESS,
    TIMEOUT,
    QueryMeasurement,
    arithmetic_mean,
    geometric_mean,
    global_performance,
    success_matrix,
    success_rate,
)
from repro.bench.metrics import penalized_times


def measurement(query_id="Q1", status=SUCCESS, elapsed=1.0, size=1000, memory=1024):
    return QueryMeasurement(
        query_id=query_id,
        engine="native-optimized",
        document_size=size,
        status=status,
        elapsed=elapsed,
        peak_memory=memory,
    )


class TestMeans:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_arithmetic_mean_empty(self):
        assert arithmetic_mean([]) == 0.0

    def test_geometric_mean_basic(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_is_nth_root_of_product(self):
        values = [2.0, 4.0, 8.0]
        expected = math.prod(values) ** (1.0 / 3.0)
        assert geometric_mean(values) == pytest.approx(expected)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_tolerates_zero_measurements(self):
        assert geometric_mean([0.0, 1.0]) > 0.0

    def test_geometric_mean_moderates_outliers(self):
        # The paper points out the geometric mean moderates the impact of
        # penalized failures compared with the arithmetic mean.
        values = [0.01] * 16 + [3600.0]
        assert geometric_mean(values) < arithmetic_mean(values) / 10


class TestPenalties:
    def test_successful_queries_keep_their_time(self):
        times = penalized_times([measurement(elapsed=2.5)], penalty=100.0)
        assert times == [2.5]

    def test_failures_replaced_by_penalty(self):
        times = penalized_times(
            [measurement(status=TIMEOUT, elapsed=31.0)], penalty=100.0
        )
        assert times == [100.0]

    def test_global_performance_applies_penalty(self):
        measurements = [measurement(elapsed=1.0), measurement(status=ERROR, elapsed=0.1)]
        stats = global_performance(measurements, penalty=10.0)
        assert stats["arithmetic_mean_time"] == pytest.approx(5.5)
        assert stats["queries"] == 2

    def test_global_performance_memory_only_over_successes(self):
        measurements = [
            measurement(memory=2 * 1024),
            measurement(status=TIMEOUT, memory=50 * 1024),
        ]
        stats = global_performance(measurements, penalty=10.0)
        assert stats["mean_peak_memory"] == pytest.approx(2 * 1024)


class TestSuccessRate:
    def test_counts_by_status(self):
        measurements = [
            measurement(),
            measurement(status=TIMEOUT),
            measurement(status=MEMORY),
            measurement(status=ERROR),
            measurement(),
        ]
        rate = success_rate(measurements)
        assert rate["counts"][SUCCESS] == 2
        assert rate["counts"][TIMEOUT] == 1
        assert rate["total"] == 5
        assert rate["success_ratio"] == pytest.approx(0.4)

    def test_empty_measurements(self):
        assert success_rate([])["success_ratio"] == 0.0

    def test_status_shortcuts_match_table4_legend(self):
        assert measurement().status_shortcut() == "+"
        assert measurement(status=TIMEOUT).status_shortcut() == "T"
        assert measurement(status=MEMORY).status_shortcut() == "M"
        assert measurement(status=ERROR).status_shortcut() == "E"

    def test_success_matrix_layout(self):
        measurements = [
            measurement(query_id="Q1", size=1000),
            measurement(query_id="Q4", size=1000, status=TIMEOUT),
            measurement(query_id="Q1", size=5000),
        ]
        matrix = success_matrix(measurements)
        assert matrix[1000]["Q1"] == "+"
        assert matrix[1000]["Q4"] == "T"
        assert matrix[5000]["Q1"] == "+"
