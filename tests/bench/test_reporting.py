"""Unit tests for the plain-text table rendering."""

import pytest

from repro.bench import BenchmarkHarness, ExperimentConfig, reporting
from repro.queries import get_query
from repro.sparql import NATIVE_OPTIMIZED


@pytest.fixture(scope="module")
def report():
    config = ExperimentConfig(
        document_sizes=(600,),
        engines=(NATIVE_OPTIMIZED,),
        queries=(get_query("Q1"), get_query("Q9"), get_query("Q12c")),
        trace_memory=False,
    )
    return BenchmarkHarness(config).run()


class TestTables:
    def test_generation_times_table(self, report):
        text = reporting.generation_times_table(report)
        assert "#triples" in text and "600" in text

    def test_document_characteristics_table(self, report):
        text = reporting.document_characteristics_table(report)
        assert "data up to" in text
        assert "#article" in text

    def test_result_sizes_table_lists_select_queries(self, report):
        text = reporting.result_sizes_table(report)
        assert "Q1" in text and "Q9" in text
        # Queries not run show a placeholder rather than a number.
        assert "Q4" in text

    def test_success_rate_table(self, report):
        text = reporting.success_rate_table(report, "native-optimized")
        assert "Q12c" in text
        assert "+" in text

    def test_global_performance_table(self, report):
        text = reporting.global_performance_table(report)
        assert "Ta [s]" in text and "Tg [s]" in text
        assert "native-optimized" in text

    def test_loading_times_table(self, report):
        text = reporting.loading_times_table(report)
        assert "loading [s]" in text

    def test_per_query_table(self, report):
        text = reporting.per_query_table(report, "Q1")
        assert "native-optimized" in text

    def test_full_report_contains_all_sections(self, report):
        text = reporting.full_report(report)
        for heading in ("Table III", "Table IV", "Table V", "Table VIII",
                        "Tables VI/VII", "Loading times"):
            assert heading in text

    def test_table_columns_are_aligned(self, report):
        text = reporting.generation_times_table(report)
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])
