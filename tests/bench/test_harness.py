"""Integration tests for the benchmark harness and report views."""

import pytest

from repro.bench import BenchmarkHarness, ExperimentConfig
from repro.queries import get_query
from repro.sparql import IN_MEMORY_BASELINE, NATIVE_OPTIMIZED


QUICK_QUERIES = tuple(get_query(q) for q in ("Q1", "Q3c", "Q9", "Q10", "Q11", "Q12c"))


@pytest.fixture(scope="module")
def report():
    config = ExperimentConfig(
        document_sizes=(800, 1600),
        engines=(IN_MEMORY_BASELINE, NATIVE_OPTIMIZED),
        queries=QUICK_QUERIES,
        timeout=30.0,
        trace_memory=False,
    )
    return BenchmarkHarness(config).run()


class TestExperimentExecution:
    def test_generation_times_recorded_per_size(self, report):
        assert set(report.generation_times) == {800, 1600}
        assert all(value >= 0.0 for value in report.generation_times.values())

    def test_document_stats_recorded(self, report):
        assert report.document_stats[1600]["triples"] >= 1600

    def test_loading_times_for_every_engine_and_size(self, report):
        assert set(report.loading_times) == {
            (engine, size)
            for engine in ("inmemory-baseline", "native-optimized")
            for size in (800, 1600)
        }

    def test_one_measurement_per_engine_query_size(self, report):
        expected = 2 * 2 * len(QUICK_QUERIES)
        assert len(report.measurements) == expected

    def test_all_quick_queries_succeed(self, report):
        assert all(m.succeeded for m in report.measurements)


class TestReportViews:
    def test_engine_names(self, report):
        assert report.engine_names() == ["inmemory-baseline", "native-optimized"]

    def test_measurement_filtering(self, report):
        subset = report.measurements_for(engine="native-optimized", size=800, query_id="Q1")
        assert len(subset) == 1

    def test_success_matrix_shape(self, report):
        matrix = report.success_matrix("native-optimized")
        assert set(matrix) == {800, 1600}
        assert matrix[800]["Q1"] == "+"

    def test_success_rate_all_success(self, report):
        rate = report.success_rate("native-optimized")
        assert rate["success_ratio"] == 1.0

    def test_global_performance_fields(self, report):
        stats = report.global_performance("native-optimized", 1600)
        assert stats["queries"] == len(QUICK_QUERIES)
        assert stats["arithmetic_mean_time"] >= stats["geometric_mean_time"] > 0.0

    def test_result_sizes_match_known_invariants(self, report):
        sizes = report.result_sizes(1600)
        assert sizes["Q1"] == 1
        assert sizes["Q3c"] == 0
        assert sizes["Q9"] == 4
        assert sizes["Q11"] <= 10

    def test_per_query_series_covers_both_sizes(self, report):
        series = report.per_query_series("native-optimized", "Q10")
        assert [size for size, _time in series] == [800, 1600]
        assert all(time is not None for _size, time in series)

    def test_generated_documents_reusable_across_runs(self, report):
        # The harness accepts pre-generated documents so the same data can be
        # shared between experiments (used by the ablation benches).
        config = ExperimentConfig(
            document_sizes=(800,),
            engines=(NATIVE_OPTIMIZED,),
            queries=(get_query("Q1"),),
            trace_memory=False,
        )
        harness = BenchmarkHarness(config)
        documents = harness.generate_documents()
        first = harness.run(documents)
        second = harness.run(documents)
        assert first.result_sizes(800) == second.result_sizes(800)
