"""Scrape-side parsing, snapshot diffs, and the server report."""

import pytest

from repro.obs.exposition import render
from repro.obs.registry import MetricsRegistry
from repro.obs.scrape import (
    MetricsSnapshot,
    format_server_report,
    histogram_quantile,
    metrics_url_for,
    parse_exposition,
)


class TestMetricsUrl:
    @pytest.mark.parametrize("endpoint", [
        "http://127.0.0.1:8008/sparql",
        "http://127.0.0.1:8008/sparql?query=ASK%7B%7D",
        "http://127.0.0.1:8008/",
    ])
    def test_derives_metrics_path_on_same_host(self, endpoint):
        assert metrics_url_for(endpoint) == "http://127.0.0.1:8008/metrics"


class TestParsing:
    def test_skips_comments_and_blank_lines(self):
        snapshot = parse_exposition(
            "# HELP x_total h\n# TYPE x_total counter\n\nx_total 5\n"
        )
        assert snapshot.get("x_total") == 5

    def test_parses_labels_with_escapes(self):
        snapshot = parse_exposition(
            'x_total{text="say \\"hi\\"\\n",other="v"} 2\n'
        )
        assert snapshot.get("x_total", text='say "hi"\n', other="v") == 2

    def test_label_order_is_canonicalized(self):
        snapshot = parse_exposition(
            'x_total{b="2",a="1"} 1\ny_total{a="1",b="2"} 2\n'
        )
        assert snapshot.get("x_total", a="1", b="2") == 1
        assert snapshot.get("y_total", b="2", a="1") == 2


class TestSnapshotQueries:
    def snapshot(self):
        return parse_exposition(
            'req_total{endpoint="/sparql",status="200"} 10\n'
            'req_total{endpoint="/sparql",status="400"} 2\n'
            'req_total{endpoint="/update",status="200"} 3\n'
        )

    def test_sum_with_and_without_fixed_labels(self):
        snapshot = self.snapshot()
        assert snapshot.sum("req_total") == 15
        assert snapshot.sum("req_total", endpoint="/sparql") == 12
        assert snapshot.sum("missing_total") is None

    def test_by_label_groups_and_sums(self):
        by_status = self.snapshot().by_label("req_total", "status")
        assert by_status == {"200": 13, "400": 2}

    def test_delta_floors_at_zero_and_handles_missing(self):
        before = parse_exposition("x_total 10\n")
        after = parse_exposition("x_total 12\n")
        assert after.delta(before, "x_total") == 2
        assert before.delta(after, "x_total") == 0     # floored
        assert after.delta(before, "y_total") is None
        assert after.delta(MetricsSnapshot({}), "x_total") == 12


class TestHistogramQuantile:
    def rendered(self, observations):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("lat_seconds", "h",
                                       buckets=(0.01, 0.1, 1.0))
        for value in observations:
            histogram.observe(value)
        return parse_exposition(render(registry))

    def test_quantile_from_scraped_buckets(self):
        snapshot = self.rendered([0.005] * 90 + [0.5] * 10)
        assert histogram_quantile(snapshot, "lat_seconds", 0.5) <= 0.01
        assert histogram_quantile(snapshot, "lat_seconds", 0.99) <= 1.0

    def test_delta_quantile_ignores_earlier_observations(self):
        before = self.rendered([5.0] * 100)
        # Fresh registry: "after" re-observes the old tail plus fast ones.
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("lat_seconds", "h",
                                       buckets=(0.01, 0.1, 1.0))
        for value in [5.0] * 100 + [0.005] * 900:
            histogram.observe(value)
        after = parse_exposition(render(registry))
        assert histogram_quantile(after, "lat_seconds", 0.5,
                                  before=before) <= 0.01

    def test_absent_histogram_is_none(self):
        assert histogram_quantile(MetricsSnapshot({}), "lat_seconds",
                                  0.5) is None


class TestServerReport:
    def test_report_sections_reflect_moved_series(self):
        before = parse_exposition(
            'sp2b_http_requests_total{endpoint="/sparql",status="200"} 5\n'
            "sp2b_prepared_cache_hits_total 10\n"
        )
        after = parse_exposition(
            'sp2b_http_requests_total{endpoint="/sparql",status="200"} 25\n'
            'sp2b_http_requests_total{endpoint="/sparql",status="503"} 1\n'
            "sp2b_prepared_cache_hits_total 30\n"
            "sp2b_prepared_cache_misses_total 2\n"
            "sp2b_server_inflight_requests 1\n"
        )
        report = format_server_report(before, after)
        assert "requests            21" in report
        assert "200=20" in report and "503=1" in report
        assert "hits=+20" in report and "misses=+2" in report
        assert "in-flight now       1" in report

    def test_report_skips_absent_sections(self):
        empty = MetricsSnapshot({})
        report = format_server_report(empty, empty)
        assert report == "server-side /metrics deltas:"
