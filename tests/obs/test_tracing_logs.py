"""Trace spans, JSON log records, and the ServerTelemetry bundle."""

import io
import json
import time

from repro.obs import NULL_TRACE, QueryTrace, ServerTelemetry
from repro.obs.logs import (
    JsonLinesLogger,
    access_record,
    open_log_stream,
    query_hash,
    slow_query_record,
)
from repro.obs.registry import MetricsRegistry


class TestQueryTrace:
    def test_span_times_the_block(self):
        trace = QueryTrace()
        with trace.span("parse"):
            time.sleep(0.005)
        assert trace.stages["parse"] >= 0.004

    def test_repeated_spans_accumulate(self):
        trace = QueryTrace()
        with trace.span("execute"):
            pass
        first = trace.stages["execute"]
        with trace.span("execute"):
            time.sleep(0.002)
        assert trace.stages["execute"] > first

    def test_queue_wait_seeds_the_first_stage_and_total(self):
        trace = QueryTrace(queue_wait=1.0)
        assert list(trace.stages) == ["queue"]
        assert trace.total() >= 1.0
        assert trace.elapsed() < 1.0          # queue wait is not wall time

    def test_stages_ms_rounds_to_milliseconds(self):
        trace = QueryTrace()
        trace.add("plan", 0.0123456)
        assert trace.stages_ms()["plan"] == 12.346

    def test_null_trace_records_nothing(self):
        with NULL_TRACE.span("parse"):
            pass
        NULL_TRACE.add("plan", 1.0)
        assert NULL_TRACE.stages == {}


class TestLoggers:
    def test_one_compact_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLinesLogger(stream)
        logger.log({"a": 1})
        logger.log({"b": [1, 2]})
        lines = stream.getvalue().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1},
                                                        {"b": [1, 2]}]
        assert " " not in lines[0]            # compact separators

    def test_open_log_stream_dash_means_stderr(self, capsys):
        logger = open_log_stream("-")
        logger.log({"x": 1})
        logger.close()                        # must not close stderr
        assert json.loads(capsys.readouterr().err) == {"x": 1}

    def test_open_log_stream_appends_to_file(self, tmp_path):
        path = tmp_path / "access.log"
        for record in ({"n": 1}, {"n": 2}):
            logger = open_log_stream(str(path))
            logger.log(record)
            logger.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]

    def test_query_hash_is_short_and_stable(self):
        assert query_hash("SELECT * WHERE {}") == query_hash("SELECT * WHERE {}")
        assert len(query_hash("x")) == 16
        assert query_hash("x") != query_hash("y")


class TestRecords:
    def test_access_record_fields(self):
        trace = QueryTrace(queue_wait=0.001)
        trace.add("execute", 0.01)
        record = access_record(
            endpoint="/sparql", method="GET", status=200, trace=trace,
            query_text="SELECT", format="json", form="SELECT", rows=7,
            budget_seconds=30.0, budget_consumed_seconds=0.0123,
            cache_hit=True,
        )
        assert record["type"] == "access"
        assert record["status"] == 200
        assert record["query_hash"] == query_hash("SELECT")
        assert record["stages_ms"]["execute"] == 10.0
        assert record["rows"] == 7
        assert record["cache_hit"] is True
        assert record["budget_s"] == 30.0
        assert record["budget_consumed_s"] == 0.0123

    def test_access_record_omits_absent_fields(self):
        record = access_record(endpoint="/health", method="GET", status=200,
                               trace=QueryTrace())
        for field in ("query_hash", "form", "rows", "budget_s"):
            assert field not in record

    def test_slow_query_record_carries_text_and_plan(self):
        trace = QueryTrace()
        trace.add("execute", 0.2)
        record = slow_query_record(
            threshold_seconds=0.1, trace=trace, query_text="SELECT ?x {}",
            plan="BGP [1 pattern]", status=200, rows=3,
        )
        assert record["type"] == "slow_query"
        assert record["threshold_ms"] == 100.0
        assert record["query"] == "SELECT ?x {}"
        assert record["query_hash"] == query_hash("SELECT ?x {}")
        assert record["plan"] == "BGP [1 pattern]"


class TestServerTelemetry:
    def finished_trace(self):
        trace = QueryTrace(queue_wait=0.002)
        for stage, seconds in (("parse", 0.001), ("plan", 0.001),
                               ("execute", 0.05), ("serialize", 0.003)):
            trace.add(stage, seconds)
        return trace

    def test_observe_request_moves_every_metric(self):
        registry = MetricsRegistry(enabled=True)
        telemetry = ServerTelemetry(registry=registry)
        telemetry.observe_request(
            self.finished_trace(), endpoint="/sparql", method="POST",
            status=200, query_text="SELECT", format="json", form="SELECT",
            rows=12,
        )
        assert telemetry.requests_total.labels("/sparql", "200").value == 1
        assert telemetry.request_seconds.labels("/sparql").snapshot()[2] == 1
        stages = dict(telemetry.stage_seconds.children())
        assert set(label for (label,), _child in stages.items()) == \
            {"queue", "parse", "plan", "execute", "serialize"}
        assert telemetry.queue_wait_seconds.snapshot()[2] == 1
        assert telemetry.result_rows_total.value == 12

    def test_access_log_line_written(self):
        stream = io.StringIO()
        telemetry = ServerTelemetry(
            registry=MetricsRegistry(enabled=True),
            access_logger=JsonLinesLogger(stream),
        )
        telemetry.observe_request(
            self.finished_trace(), endpoint="/sparql", method="GET",
            status=400, query_text="broken",
        )
        record = json.loads(stream.getvalue())
        assert record["status"] == 400
        assert record["query_hash"] == query_hash("broken")

    def test_slow_query_goes_to_slow_logger_with_lazy_plan(self):
        stream = io.StringIO()
        rendered = []

        def renderer():
            rendered.append(True)
            return "PLAN"

        telemetry = ServerTelemetry(
            registry=MetricsRegistry(enabled=True),
            slow_logger=JsonLinesLogger(stream),
            slow_query_seconds=0.0,
        )
        telemetry.observe_request(
            self.finished_trace(), endpoint="/sparql", method="GET",
            status=200, query_text="SELECT", plan_renderer=renderer,
        )
        assert rendered == [True]
        record = json.loads(stream.getvalue())
        assert record["type"] == "slow_query"
        assert record["plan"] == "PLAN"
        assert telemetry.slow_queries_total.value == 1

    def test_fast_query_never_renders_a_plan(self):
        calls = []
        telemetry = ServerTelemetry(
            registry=MetricsRegistry(enabled=True),
            slow_logger=JsonLinesLogger(io.StringIO()),
            slow_query_seconds=1e9,
        )
        telemetry.observe_request(
            self.finished_trace(), endpoint="/sparql", method="GET",
            status=200, query_text="SELECT",
            plan_renderer=lambda: calls.append(True),
        )
        assert not calls
        assert telemetry.slow_queries_total.value == 0

    def test_failing_plan_renderer_does_not_break_logging(self):
        stream = io.StringIO()

        def renderer():
            raise RuntimeError("no plan for you")

        telemetry = ServerTelemetry(
            registry=MetricsRegistry(enabled=True),
            slow_logger=JsonLinesLogger(stream),
            slow_query_seconds=0.0,
        )
        telemetry.observe_request(
            self.finished_trace(), endpoint="/sparql", method="GET",
            status=200, query_text="SELECT", plan_renderer=renderer,
        )
        record = json.loads(stream.getvalue())
        assert record["type"] == "slow_query"
        assert "plan" not in record
