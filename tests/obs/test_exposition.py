"""Exposition conformance: what a Prometheus scraper would accept.

Rather than golden-file the output, these tests check the *rules* of the
0.0.4 text format — every sample line uses a valid metric name and valid
label names, every family has HELP and TYPE headers, histogram buckets
are cumulative and end in ``+Inf`` agreeing with ``_count`` — and then
round-trip the document through the scrape-side parser.
"""

import re

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    render,
)
from repro.obs.registry import (
    LABEL_NAME_RE,
    METRIC_NAME_RE,
    MetricsRegistry,
)
from repro.obs.scrape import parse_exposition

SAMPLE_RE = re.compile(
    r"^(?P<name>[^{\s]+)(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)


@pytest.fixture()
def registry():
    registry = MetricsRegistry(enabled=True)
    requests = registry.counter("req_total", "Requests served.",
                                labels=("endpoint", "status"))
    requests.labels("/sparql", "200").inc(3)
    requests.labels("/sparql", "400").inc()
    registry.gauge("inflight", "In-flight requests.").set(2)
    latency = registry.histogram("latency_seconds", "Latency.",
                                 buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 7.0):
        latency.observe(value)
    return registry


def sample_lines(text):
    return [line for line in text.splitlines()
            if line and not line.startswith("#")]


class TestDocumentShape:
    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE

    def test_every_family_has_help_and_type(self, registry):
        text = render(registry)
        for name, kind in (("req_total", "counter"), ("inflight", "gauge"),
                           ("latency_seconds", "histogram")):
            assert f"# TYPE {name} {kind}" in text
            assert any(line.startswith(f"# HELP {name} ")
                       for line in text.splitlines())

    def test_every_sample_line_is_well_formed(self, registry):
        for line in sample_lines(render(registry)):
            match = SAMPLE_RE.match(line)
            assert match, line
            base = re.sub(r"_(bucket|sum|count)$", "", match["name"])
            assert METRIC_NAME_RE.match(base), line
            for pair in filter(None, (match["labels"] or "").split(",")):
                label_name = pair.split("=", 1)[0]
                assert LABEL_NAME_RE.match(label_name), line
            float(match["value"])             # parses as a number

    def test_ends_with_trailing_newline(self, registry):
        assert render(registry).endswith("\n")


class TestHistogramRendering:
    def test_buckets_are_cumulative_and_end_at_inf(self, registry):
        text = render(registry)
        buckets = re.findall(
            r'latency_seconds_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert [le for le, _count in buckets] == ["0.1", "1", "+Inf"]
        counts = [int(count) for _le, count in buckets]
        assert counts == sorted(counts)       # cumulative: nondecreasing
        assert counts == [1, 3, 4]
        assert "latency_seconds_count 4" in text
        assert re.search(r"latency_seconds_sum 8\.05", text)

    def test_inf_bucket_equals_count(self, registry):
        snapshot = parse_exposition(render(registry))
        assert snapshot.get("latency_seconds_bucket", le="+Inf") == \
            snapshot.get("latency_seconds_count")


class TestEscaping:
    def test_label_values_escape_quotes_backslashes_newlines(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_escaped_label_round_trips_through_parser(self):
        registry = MetricsRegistry(enabled=True)
        family = registry.counter("odd_total", "h", labels=("text",))
        family.labels('say "hi"\n').inc(5)
        snapshot = parse_exposition(render(registry))
        assert snapshot.get("odd_total", text='say "hi"\n') == 5


class TestValueFormatting:
    def test_integral_floats_render_as_integers(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"


class TestRoundTrip:
    def test_parser_recovers_every_counter_and_gauge(self, registry):
        snapshot = parse_exposition(render(registry))
        assert snapshot.get("req_total", endpoint="/sparql", status="200") == 3
        assert snapshot.get("req_total", endpoint="/sparql", status="400") == 1
        assert snapshot.sum("req_total") == 4
        assert snapshot.get("inflight") == 2
