"""Registry correctness: kinds, labels, validation, and concurrency.

The registry is the foundation every instrumented subsystem writes through,
so these tests pin its contract: registration is idempotent, disabled
registries are no-ops that later *enable in place* (handles cached at
import time must start recording), and concurrent writers lose no updates.
"""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
    estimate_quantile,
)


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("t_total", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_is_rejected(self, registry):
        counter = registry.counter("t_total", "help")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_labelled_children_are_memoized(self, registry):
        family = registry.counter("req_total", "help",
                                  labels=("endpoint", "status"))
        child = family.labels("/sparql", "200")
        child.inc()
        assert family.labels(endpoint="/sparql", status="200") is child
        assert child.value == 1.0

    def test_label_count_mismatch_is_rejected(self, registry):
        family = registry.counter("req_total", "help", labels=("endpoint",))
        with pytest.raises(MetricError):
            family.labels("/sparql", "extra")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("inflight", "help")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3.0


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        histogram = registry.histogram("lat_seconds", "help",
                                       buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        counts, observed_sum, count = histogram.snapshot()
        assert counts == [1, 2, 1]          # <=0.1, <=1.0, +Inf overflow
        assert observed_sum == pytest.approx(6.05)
        assert count == 4

    def test_quantile_estimate(self, registry):
        histogram = registry.histogram("lat_seconds", "help",
                                       buckets=(0.1, 1.0))
        for _ in range(100):
            histogram.observe(0.05)
        assert histogram.quantile(0.5) <= 0.1

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == \
            sorted(DEFAULT_LATENCY_BUCKETS)


class TestEstimateQuantile:
    def test_empty_histogram_is_none(self):
        assert estimate_quantile([0.1, 1.0], [0, 0, 0], 0, 0.99) is None

    def test_overflow_clamps_to_largest_bound(self):
        assert estimate_quantile([0.1, 1.0], [0, 0, 10], 10, 0.99) == 1.0

    def test_interpolates_within_bucket(self):
        value = estimate_quantile([0.1, 1.0], [10, 0, 0], 10, 0.5)
        assert 0.0 < value <= 0.1


class TestRegistration:
    def test_same_name_returns_same_family(self, registry):
        first = registry.counter("x_total", "help")
        assert registry.counter("x_total", "help") is first

    def test_kind_clash_is_rejected(self, registry):
        registry.counter("x_total", "help")
        with pytest.raises(MetricError):
            registry.gauge("x_total", "help")

    def test_label_clash_is_rejected(self, registry):
        registry.counter("x_total", "help", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", "help", labels=("b",))

    def test_invalid_metric_name_is_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("bad-name", "help")

    def test_invalid_label_name_is_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("x_total", "help", labels=("bad-label",))

    def test_families_sorted_by_name(self, registry):
        registry.counter("z_total", "help")
        registry.counter("a_total", "help")
        assert [f.name for f in registry.families()] == \
            ["a_total", "z_total"]


class TestEnablement:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total", "help")
        counter.inc()
        assert counter.value == 0.0

    def test_enable_activates_existing_handles(self):
        # The server caches handles at construction; enabling later must
        # turn exactly those handles on.
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total", "help")
        histogram = registry.histogram("y_seconds", "help")
        counter.inc()
        registry.enable()
        counter.inc()
        histogram.observe(0.5)
        assert counter.value == 1.0
        assert histogram.snapshot()[2] == 1
        registry.disable()
        counter.inc()
        assert counter.value == 1.0


class TestConcurrency:
    def test_concurrent_counter_increments_are_exact(self, registry):
        counter = registry.counter("c_total", "help")
        family = registry.counter("l_total", "help", labels=("worker",))
        threads, per_thread = 8, 2_000

        def work(index):
            child = family.labels(str(index % 2))
            for _ in range(per_thread):
                counter.inc()
                child.inc()

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * per_thread
        assert sum(child.value for _labels, child in family.children()) == \
            threads * per_thread

    def test_concurrent_histogram_observations_are_exact(self, registry):
        histogram = registry.histogram("h_seconds", "help", buckets=(0.5,))
        threads, per_thread = 8, 2_000

        def work():
            for _ in range(per_thread):
                histogram.observe(0.25)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        counts, observed_sum, count = histogram.snapshot()
        assert count == threads * per_thread
        assert counts[0] == threads * per_thread
        assert observed_sum == pytest.approx(0.25 * threads * per_thread)
