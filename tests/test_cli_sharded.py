"""CLI tests for ``repro query --shards`` and partition-manifest loading."""

import pytest

from repro.cli import main
from repro.store import PartitionedStore, load_snapshot, save_partitioned


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """A 2000-triple document snapshot (reaches the 1940 entry points)."""
    directory = tmp_path_factory.mktemp("sharded-cli")
    output = directory / "doc.nt"
    assert main(["generate", str(output), "--triples", "2000",
                 "--save-snapshot"]) == 0
    return directory / "doc.sp2b"


def test_query_shards_matches_single_store(snapshot, capsys):
    capsys.readouterr()

    def rows(extra):
        assert main(["query", str(snapshot), "--query", "Q2"] + extra) == 0
        return capsys.readouterr().out.splitlines()

    single = rows([])
    sharded = rows(["--shards", "3"])
    assert "results" in single[0]
    assert sorted(single[1:]) == sorted(sharded[1:])


def test_query_shards_explain_shows_scatter(snapshot, capsys):
    capsys.readouterr()
    assert main(["query", str(snapshot), "--query", "Q2",
                 "--shards", "4", "--explain"]) == 0
    assert "scatter=union" in capsys.readouterr().out


def test_query_shards_rejects_memory_engines(snapshot):
    with pytest.raises(SystemExit, match="id-space"):
        main(["query", str(snapshot), "--query", "Q1",
              "--engine", "inmemory-optimized", "--shards", "2"])


def test_query_loads_partition_manifests(snapshot, tmp_path, capsys):
    manifest = tmp_path / "doc-parts.sp2b"
    save_partitioned(load_snapshot(snapshot), manifest, shards=2)
    capsys.readouterr()
    assert main(["query", str(manifest), "--query", "Q1"]) == 0
    assert "Q1: 1 results" in capsys.readouterr().out


def test_shards_on_plain_documents(snapshot, capsys):
    document = snapshot.with_suffix(".nt")
    capsys.readouterr()
    assert main(["query", str(document), "--query", "Q1", "--shards", "2"]) == 0
    assert "Q1: 1 results" in capsys.readouterr().out


def test_build_engine_repartitions_on_disagreement(snapshot, tmp_path):
    from repro.cli import _build_engine

    manifest = tmp_path / "doc-parts.sp2b"
    save_partitioned(load_snapshot(snapshot), manifest, shards=2)
    engine = _build_engine(str(manifest), "native-cost", shards=4)
    assert isinstance(engine.store, PartitionedStore)
    assert engine.store.shard_count == 4
