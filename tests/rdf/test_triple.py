"""Unit tests for the Triple value object."""

import pytest

from repro.rdf import BNode, Literal, TermError, Triple, URIRef, Variable

S = URIRef("http://example.org/s")
P = URIRef("http://example.org/p")
O = Literal("o")


class TestConstruction:
    def test_basic_triple(self):
        triple = Triple(S, P, O)
        assert triple.subject == S
        assert triple.predicate == P
        assert triple.object == O

    def test_blank_node_subject_allowed(self):
        assert Triple(BNode("b"), P, O).subject == BNode("b")

    def test_variable_positions_allowed(self):
        triple = Triple(Variable("s"), Variable("p"), Variable("o"))
        assert not triple.is_ground()

    def test_literal_subject_rejected(self):
        with pytest.raises(TermError):
            Triple(Literal("x"), P, O)

    def test_literal_predicate_rejected(self):
        with pytest.raises(TermError):
            Triple(S, Literal("x"), O)

    def test_bnode_predicate_rejected(self):
        with pytest.raises(TermError):
            Triple(S, BNode("b"), O)

    def test_plain_string_rejected(self):
        with pytest.raises(TermError):
            Triple("http://example.org/s", P, O)

    def test_immutable(self):
        triple = Triple(S, P, O)
        with pytest.raises(AttributeError):
            triple.subject = P


class TestBehaviour:
    def test_is_ground_true_for_constants(self):
        assert Triple(S, P, O).is_ground()

    def test_is_ground_false_with_any_variable(self):
        assert not Triple(S, P, Variable("o")).is_ground()

    def test_variables_returns_variable_set(self):
        triple = Triple(Variable("s"), P, Variable("o"))
        assert triple.variables() == {Variable("s"), Variable("o")}

    def test_iteration_and_indexing(self):
        triple = Triple(S, P, O)
        assert list(triple) == [S, P, O]
        assert triple[0] == S and triple[2] == O
        assert len(triple) == 3

    def test_equality_and_hash(self):
        assert Triple(S, P, O) == Triple(S, P, O)
        assert hash(Triple(S, P, O)) == hash(Triple(S, P, O))
        assert Triple(S, P, O) != Triple(S, P, Literal("other"))

    def test_n3_line(self):
        line = Triple(S, P, O).n3()
        assert line.startswith("<http://example.org/s>")
        assert line.endswith(" .")
