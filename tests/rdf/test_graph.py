"""Unit tests for the Graph container."""

import pytest

from repro.rdf import BNode, Graph, Literal, TermError, Triple, URIRef, Variable

EX = "http://example.org/"


def uri(local):
    return URIRef(EX + local)


def make_graph():
    g = Graph()
    g.add(Triple(uri("a"), uri("p"), uri("b")))
    g.add(Triple(uri("a"), uri("p"), uri("c")))
    g.add(Triple(uri("b"), uri("q"), Literal("x")))
    g.add(Triple(BNode("n"), uri("q"), Literal("y")))
    return g


class TestMutation:
    def test_add_returns_true_for_new_triple(self):
        g = Graph()
        assert g.add(Triple(uri("a"), uri("p"), uri("b"))) is True

    def test_add_duplicate_returns_false_and_keeps_length(self):
        g = Graph()
        t = Triple(uri("a"), uri("p"), uri("b"))
        g.add(t)
        assert g.add(t) is False
        assert len(g) == 1

    def test_add_three_terms_form(self):
        g = Graph()
        g.add(uri("a"), uri("p"), Literal("v"))
        assert len(g) == 1

    def test_add_non_ground_triple_rejected(self):
        g = Graph()
        with pytest.raises(TermError):
            g.add(Triple(uri("a"), uri("p"), Variable("x")))

    def test_discard_removes_triple(self):
        g = make_graph()
        assert g.discard(Triple(uri("a"), uri("p"), uri("b"))) is True
        assert len(g) == 3

    def test_discard_missing_returns_false(self):
        g = make_graph()
        assert g.discard(Triple(uri("z"), uri("p"), uri("b"))) is False

    def test_update_adds_iterable(self):
        g = Graph()
        g.update([Triple(uri("a"), uri("p"), uri("b")), Triple(uri("a"), uri("p"), uri("c"))])
        assert len(g) == 2

    def test_constructor_accepts_triples(self):
        g = Graph([Triple(uri("a"), uri("p"), uri("b"))])
        assert len(g) == 1


class TestQueries:
    def test_triples_wildcard_all(self):
        assert len(list(make_graph().triples())) == 4

    def test_triples_by_subject(self):
        matches = list(make_graph().triples(subject=uri("a")))
        assert len(matches) == 2

    def test_triples_by_predicate_and_object(self):
        matches = list(make_graph().triples(predicate=uri("q"), object=Literal("x")))
        assert len(matches) == 1
        assert matches[0].subject == uri("b")

    def test_triples_no_match(self):
        assert list(make_graph().triples(subject=uri("zzz"))) == []

    def test_subjects_deduplicated(self):
        assert list(make_graph().subjects(predicate=uri("p"))) == [uri("a")]

    def test_objects(self):
        objects = set(make_graph().objects(subject=uri("a"), predicate=uri("p")))
        assert objects == {uri("b"), uri("c")}

    def test_predicates(self):
        predicates = set(make_graph().predicates())
        assert predicates == {uri("p"), uri("q")}

    def test_value_returns_first_match(self):
        assert make_graph().value(subject=uri("b"), predicate=uri("q")) == Literal("x")

    def test_value_returns_none_when_absent(self):
        assert make_graph().value(subject=uri("zzz"), predicate=uri("q")) is None

    def test_value_requires_exactly_one_wildcard(self):
        with pytest.raises(ValueError):
            make_graph().value(subject=uri("a"))

    def test_contains(self):
        g = make_graph()
        assert Triple(uri("a"), uri("p"), uri("b")) in g
        assert Triple(uri("a"), uri("p"), uri("zzz")) not in g

    def test_iteration_preserves_insertion_order(self):
        g = make_graph()
        assert list(g)[0] == Triple(uri("a"), uri("p"), uri("b"))

    def test_bool(self):
        assert not Graph()
        assert make_graph()


class TestSetOperations:
    def test_union(self):
        g1 = Graph([Triple(uri("a"), uri("p"), uri("b"))])
        g2 = Graph([Triple(uri("a"), uri("p"), uri("c"))])
        assert len(g1.union(g2)) == 2

    def test_union_deduplicates(self):
        g1 = Graph([Triple(uri("a"), uri("p"), uri("b"))])
        g2 = Graph([Triple(uri("a"), uri("p"), uri("b"))])
        assert len(g1.union(g2)) == 1

    def test_intersection(self):
        g1 = make_graph()
        g2 = Graph([Triple(uri("a"), uri("p"), uri("b"))])
        assert len(g1.intersection(g2)) == 1

    def test_difference(self):
        g1 = make_graph()
        g2 = Graph([Triple(uri("a"), uri("p"), uri("b"))])
        assert len(g1.difference(g2)) == 3

    def test_equality_ignores_order(self):
        t1 = Triple(uri("a"), uri("p"), uri("b"))
        t2 = Triple(uri("a"), uri("p"), uri("c"))
        assert Graph([t1, t2]) == Graph([t2, t1])


class TestStatisticsHelpers:
    def test_subject_count(self):
        assert make_graph().subject_count() == 3

    def test_predicate_histogram(self):
        histogram = make_graph().predicate_histogram()
        assert histogram[uri("p")] == 2
        assert histogram[uri("q")] == 2

    def test_node_kinds(self):
        kinds = make_graph().node_kinds()
        assert kinds["bnode"] == 1
        assert kinds["literal"] == 2
        assert kinds["uri"] == 4 * 3 - 1 - 2
