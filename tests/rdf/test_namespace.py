"""Unit tests for namespace handling and the SP2Bench vocabulary."""

import pytest

from repro.rdf import (
    BENCH,
    DC,
    DCTERMS,
    DEFAULT_PREFIXES,
    FOAF,
    PERSON,
    RDF,
    RDFS,
    SWRC,
    XSD,
    Namespace,
    URIRef,
    expand_qname,
    qname_for,
)


class TestNamespace:
    def test_attribute_access_builds_uri(self):
        ns = Namespace("http://example.org/ns#")
        assert ns.thing == URIRef("http://example.org/ns#thing")

    def test_item_access_builds_uri(self):
        ns = Namespace("http://example.org/ns#")
        assert ns["other"] == URIRef("http://example.org/ns#other")

    def test_term_method(self):
        ns = Namespace("http://example.org/ns#")
        assert ns.term("a") == URIRef("http://example.org/ns#a")

    def test_contains_checks_prefix(self):
        ns = Namespace("http://example.org/ns#")
        assert ns.thing in ns
        assert URIRef("http://elsewhere.org/x") not in ns

    def test_equality_and_hash(self):
        assert Namespace("http://a/") == Namespace("http://a/")
        assert hash(Namespace("http://a/")) == hash(Namespace("http://a/"))

    def test_underscore_attribute_raises(self):
        ns = Namespace("http://example.org/ns#")
        with pytest.raises(AttributeError):
            ns._private


class TestFixedVocabulary:
    def test_rdf_type_uri(self):
        assert RDF.type.value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

    def test_rdfs_subclassof_uri(self):
        assert RDFS.subClassOf.value == "http://www.w3.org/2000/01/rdf-schema#subClassOf"

    def test_foaf_and_dc_uris(self):
        assert FOAF.name.value.endswith("foaf/0.1/name")
        assert DC.creator.value == "http://purl.org/dc/elements/1.1/creator"
        assert DCTERMS.issued.value == "http://purl.org/dc/terms/issued"

    def test_swrc_and_bench_namespaces_distinct(self):
        assert SWRC.pages != BENCH.pages

    def test_person_namespace_holds_erdoes(self):
        assert "Paul_Erdoes" in PERSON.Paul_Erdoes.value

    def test_default_prefix_table_covers_query_prologue(self):
        for prefix in ("rdf", "rdfs", "xsd", "foaf", "dc", "dcterms", "swrc",
                       "bench", "person"):
            assert prefix in DEFAULT_PREFIXES


class TestQNameHelpers:
    def test_expand_qname_with_default_prefixes(self):
        assert expand_qname("dc:title") == DC.title

    def test_expand_qname_with_custom_table(self):
        table = {"ex": Namespace("http://example.org/")}
        assert expand_qname("ex:a", table) == URIRef("http://example.org/a")

    def test_expand_unknown_prefix_raises(self):
        with pytest.raises(KeyError):
            expand_qname("nosuch:a")

    def test_qname_for_known_namespace(self):
        assert qname_for(DC.title) == "dc:title"

    def test_qname_for_prefers_longest_match(self):
        assert qname_for(XSD.string) == "xsd:string"

    def test_qname_for_unknown_namespace_returns_n3(self):
        uri = URIRef("http://unknown.example.org/x")
        assert qname_for(uri) == "<http://unknown.example.org/x>"
