"""Unit tests for RDF term types."""

import pytest

from repro.rdf import (
    XSD_BOOLEAN,
    XSD_INTEGER,
    XSD_STRING,
    BNode,
    Literal,
    TermError,
    URIRef,
    Variable,
    term_sort_key,
)


class TestURIRef:
    def test_value_is_stored(self):
        uri = URIRef("http://example.org/a")
        assert uri.value == "http://example.org/a"

    def test_n3_form(self):
        assert URIRef("http://example.org/a").n3() == "<http://example.org/a>"

    def test_str_returns_value(self):
        assert str(URIRef("http://example.org/a")) == "http://example.org/a"

    def test_equality_by_value(self):
        assert URIRef("http://x/a") == URIRef("http://x/a")
        assert URIRef("http://x/a") != URIRef("http://x/b")

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {URIRef("http://x/a"): 1}
        assert mapping[URIRef("http://x/a")] == 1

    def test_not_equal_to_literal_with_same_text(self):
        assert URIRef("http://x/a") != Literal("http://x/a")

    def test_empty_value_rejected(self):
        with pytest.raises(TermError):
            URIRef("")

    def test_non_string_rejected(self):
        with pytest.raises(TermError):
            URIRef(42)

    def test_forbidden_characters_rejected(self):
        with pytest.raises(TermError):
            URIRef("http://example.org/has space")

    def test_is_immutable(self):
        uri = URIRef("http://x/a")
        with pytest.raises(AttributeError):
            uri.value = "http://x/b"

    def test_is_ground(self):
        assert URIRef("http://x/a").is_ground()


class TestBNode:
    def test_label_is_stored(self):
        assert BNode("n1").label == "n1"

    def test_n3_form(self):
        assert BNode("n1").n3() == "_:n1"

    def test_equality_by_label(self):
        assert BNode("a") == BNode("a")
        assert BNode("a") != BNode("b")

    def test_not_equal_to_uri(self):
        assert BNode("a") != URIRef("http://x/a")

    def test_empty_label_rejected(self):
        with pytest.raises(TermError):
            BNode("")

    def test_is_immutable(self):
        node = BNode("a")
        with pytest.raises(AttributeError):
            node.label = "b"


class TestLiteral:
    def test_plain_literal(self):
        literal = Literal("hello")
        assert literal.lexical == "hello"
        assert literal.datatype is None
        assert literal.language is None

    def test_typed_literal(self):
        literal = Literal("5", datatype=XSD_INTEGER)
        assert literal.to_python() == 5

    def test_int_constructor_assigns_integer_datatype(self):
        literal = Literal(7)
        assert literal.datatype == XSD_INTEGER
        assert literal.to_python() == 7

    def test_float_constructor_assigns_double_datatype(self):
        literal = Literal(2.5)
        assert literal.to_python() == pytest.approx(2.5)

    def test_bool_constructor_assigns_boolean_datatype(self):
        assert Literal(True).datatype == XSD_BOOLEAN
        assert Literal(True).to_python() is True
        assert Literal(False).to_python() is False

    def test_language_tag(self):
        literal = Literal("bonjour", language="fr")
        assert literal.language == "fr"
        assert literal.n3() == '"bonjour"@fr'

    def test_datatype_and_language_exclusive(self):
        with pytest.raises(TermError):
            Literal("x", datatype=XSD_STRING, language="en")

    def test_datatype_uriref_accepted(self):
        literal = Literal("5", datatype=URIRef(XSD_INTEGER))
        assert literal.datatype == XSD_INTEGER

    def test_n3_plain(self):
        assert Literal("hi").n3() == '"hi"'

    def test_n3_typed(self):
        expected = f'"5"^^<{XSD_INTEGER}>'
        assert Literal("5", datatype=XSD_INTEGER).n3() == expected

    def test_n3_escapes_quotes_and_newlines(self):
        literal = Literal('say "hi"\nplease')
        assert '\\"hi\\"' in literal.n3()
        assert "\\n" in literal.n3()

    def test_equality_considers_datatype(self):
        assert Literal("5") != Literal("5", datatype=XSD_INTEGER)
        assert Literal("5", datatype=XSD_INTEGER) == Literal("5", datatype=XSD_INTEGER)

    def test_malformed_integer_falls_back_to_lexical(self):
        literal = Literal("not-a-number", datatype=XSD_INTEGER)
        assert literal.to_python() == "not-a-number"

    def test_is_numeric(self):
        assert Literal(3).is_numeric()
        assert not Literal("3").is_numeric()

    def test_numeric_sort_key_orders_by_value(self):
        low = Literal(2)
        high = Literal(10)
        assert low.sort_key() < high.sort_key()

    def test_string_sort_key_orders_lexically(self):
        assert Literal("apple").sort_key() < Literal("banana").sort_key()

    def test_non_string_lexical_rejected(self):
        with pytest.raises(TermError):
            Literal(object())


class TestVariable:
    def test_name_without_prefix(self):
        assert Variable("?x").name == "x"
        assert Variable("$y").name == "y"
        assert Variable("z").name == "z"

    def test_n3_form(self):
        assert Variable("x").n3() == "?x"

    def test_equality(self):
        assert Variable("?x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_not_ground(self):
        assert not Variable("x").is_ground()

    def test_empty_name_rejected(self):
        with pytest.raises(TermError):
            Variable("?")

    def test_nonstring_rejected(self):
        with pytest.raises(TermError):
            Variable(1)


class TestSortKeys:
    def test_order_blank_before_uri_before_literal(self):
        bnode_key = BNode("a").sort_key()
        uri_key = URIRef("http://x/a").sort_key()
        literal_key = Literal("a").sort_key()
        assert bnode_key < uri_key < literal_key

    def test_term_sort_key_handles_none(self):
        assert term_sort_key(None) < BNode("a").sort_key()

    def test_term_sort_key_matches_method(self):
        uri = URIRef("http://x/a")
        assert term_sort_key(uri) == uri.sort_key()
