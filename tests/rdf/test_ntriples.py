"""Unit tests for N-Triples serialization and parsing."""

import io

import pytest

from repro.rdf import (
    BNode,
    Graph,
    Literal,
    ParseError,
    Triple,
    URIRef,
    parse,
    parse_file,
    parse_graph,
    serialize,
    write_file,
)
from repro.rdf.ntriples import NTriplesParser, serialize_triple

EX = "http://example.org/"
XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"


def sample_triples():
    return [
        Triple(URIRef(EX + "a"), URIRef(EX + "p"), URIRef(EX + "b")),
        Triple(BNode("node1"), URIRef(EX + "p"), Literal("plain")),
        Triple(URIRef(EX + "a"), URIRef(EX + "q"), Literal("5", datatype=XSD_INT)),
        Triple(URIRef(EX + "a"), URIRef(EX + "r"), Literal("bonjour", language="fr")),
        Triple(URIRef(EX + "a"), URIRef(EX + "s"), Literal('with "quotes"\nand newline')),
    ]


class TestSerialization:
    def test_serialize_triple_line(self):
        line = serialize_triple(sample_triples()[0])
        assert line == f"<{EX}a> <{EX}p> <{EX}b> ."

    def test_serialize_to_string(self):
        text = serialize(sample_triples())
        assert text.count("\n") == len(sample_triples())

    def test_serialize_to_stream_returns_count(self):
        buffer = io.StringIO()
        assert serialize(sample_triples(), buffer) == len(sample_triples())

    def test_write_and_parse_file_roundtrip(self, tmp_path):
        path = tmp_path / "data.nt"
        count = write_file(sample_triples(), path)
        assert count == len(sample_triples())
        graph = Graph(parse_file(path))
        assert graph == Graph(sample_triples())

    def test_parse_file_is_a_streaming_iterator(self, tmp_path):
        # parse_file yields lazily: a malformed line deep in the file must
        # not prevent consuming the valid triples before it.
        path = tmp_path / "data.nt"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_triple(sample_triples()[0]) + "\n")
            handle.write("this is not a triple\n")
        stream = parse_file(path)
        assert iter(stream) is stream
        assert next(stream) == sample_triples()[0]
        with pytest.raises(ParseError):
            next(stream)

    def test_load_into_streams_into_a_store(self, tmp_path):
        from repro.rdf import load_into
        from repro.store import IndexedStore, MemoryStore

        path = tmp_path / "data.nt"
        write_file(sample_triples(), path)
        for store in (IndexedStore(), MemoryStore()):
            assert load_into(store, path) == len(sample_triples())
            assert set(store.triples()) == set(sample_triples())
        # file-like sources work too
        store = MemoryStore()
        with open(path, "r", encoding="utf-8") as handle:
            assert load_into(store, handle) == len(sample_triples())


class TestParsing:
    def test_roundtrip_preserves_all_term_kinds(self):
        text = serialize(sample_triples())
        assert parse_graph(text) == Graph(sample_triples())

    def test_blank_lines_and_comments_skipped(self):
        text = "# comment line\n\n" + serialize_triple(sample_triples()[0]) + "\n"
        assert len(list(parse(text))) == 1

    def test_typed_literal_parsed(self):
        line = f'<{EX}a> <{EX}p> "5"^^<{XSD_INT}> .'
        triple = next(iter(parse(line)))
        assert triple.object == Literal("5", datatype=XSD_INT)

    def test_language_literal_parsed(self):
        line = f'<{EX}a> <{EX}p> "hi"@en .'
        triple = next(iter(parse(line)))
        assert triple.object.language == "en"

    def test_escaped_characters_unescaped(self):
        line = f'<{EX}a> <{EX}p> "line\\nbreak and \\"quote\\"" .'
        triple = next(iter(parse(line)))
        assert triple.object.lexical == 'line\nbreak and "quote"'

    def test_unicode_escape(self):
        line = f'<{EX}a> <{EX}p> "\\u00e9" .'
        triple = next(iter(parse(line)))
        assert triple.object.lexical == "é"

    def test_blank_node_subject(self):
        line = f'_:b1 <{EX}p> <{EX}b> .'
        triple = next(iter(parse(line)))
        assert triple.subject == BNode("b1")

    def test_missing_terminating_dot_raises(self):
        with pytest.raises(ParseError):
            NTriplesParser().parse_line(f"<{EX}a> <{EX}p> <{EX}b>")

    def test_unterminated_uri_raises(self):
        with pytest.raises(ParseError):
            NTriplesParser().parse_line(f"<{EX}a <{EX}p> <{EX}b> .")

    def test_unterminated_literal_raises(self):
        with pytest.raises(ParseError):
            NTriplesParser().parse_line(f'<{EX}a> <{EX}p> "open .')

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            NTriplesParser().parse_line(f'"x" <{EX}p> <{EX}b> .')

    def test_bnode_predicate_rejected(self):
        with pytest.raises(ParseError):
            NTriplesParser().parse_line(f"<{EX}a> _:p <{EX}b> .")

    def test_error_reports_line_number(self):
        text = serialize_triple(sample_triples()[0]) + "\nnot a triple\n"
        with pytest.raises(ParseError) as excinfo:
            list(parse(text))
        assert "line 2" in str(excinfo.value)

    def test_parse_accepts_file_object(self):
        text = serialize(sample_triples())
        graph = Graph(parse(io.StringIO(text)))
        assert len(graph) == len(sample_triples())
