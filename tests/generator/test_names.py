"""Unit tests for deterministic name/title/abstract material."""

import random

from repro.generator import names


class TestPersonNames:
    def test_person_name_is_deterministic(self):
        assert names.person_name(42) == names.person_name(42)

    def test_person_names_unique_over_large_range(self):
        pool = {names.person_name(index) for index in range(20_000)}
        assert len(pool) == 20_000

    def test_person_name_has_first_and_last_part(self):
        first, last = names.person_name(7).split(" ", 1)
        assert first and last

    def test_first_and_last_name_extend_beyond_base_pool(self):
        sizes = names.pool_sizes()
        beyond = sizes["first_names"] + 3
        assert names.first_name(beyond) != names.first_name(beyond % sizes["first_names"])
        assert names.last_name(sizes["last_names"] + 1).startswith(
            names.last_name(1)
        )


class TestGeneratedText:
    def test_title_word_count_in_bounds(self):
        rng = random.Random(3)
        for _ in range(50):
            words = names.title(rng, 3, 9).split()
            assert 3 <= len(words) <= 9

    def test_title_starts_capitalised(self):
        rng = random.Random(3)
        assert names.title(rng)[0].isupper()

    def test_abstract_length_follows_gaussian_roughly(self):
        rng = random.Random(3)
        lengths = [len(names.abstract(rng).split()) for _ in range(100)]
        mean = sum(lengths) / len(lengths)
        assert 120 <= mean <= 180

    def test_abstract_has_minimum_length(self):
        rng = random.Random(3)
        assert all(len(names.abstract(rng, 30, 50).split()) >= 20 for _ in range(30))

    def test_publisher_from_fixed_pool(self):
        rng = random.Random(3)
        assert names.publisher(rng) in names._PUBLISHERS

    def test_word_is_deterministic_for_seeded_rng(self):
        assert names.word(random.Random(9)) == names.word(random.Random(9))

    def test_pool_sizes_reported(self):
        sizes = names.pool_sizes()
        assert sizes["first_names"] >= 50
        assert sizes["last_names"] >= 60
        assert sizes["title_words"] >= 80
