"""Unit tests for the Document -> RDF triple translation."""

import pytest

from repro.generator import Document, Journal, Person
from repro.generator import rdfwriter
from repro.rdf import BENCH, DC, DCTERMS, FOAF, PERSON, RDF, RDFS, SWRC, BNode, Graph, URIRef


def make_article():
    journal = Journal(number=1, year=1960)
    alice = Person(index=0, name="Alice Smith", first_year=1960)
    erdoes = Person(index=-1, name="Paul Erdoes", is_erdoes=True, first_year=1940)
    article = Document(
        key="article/1960/7",
        document_class="article",
        year=1960,
        title="A study of joins",
        values={"pages": "1--10", "volume": 3, "ee": "http://e.org/1", "url": "http://u.org/1"},
        authors=[alice, erdoes],
        journal=journal,
    )
    return article, journal, alice, erdoes


class TestSchema:
    def test_schema_triples_cover_all_classes(self):
        graph = Graph(rdfwriter.schema_triples())
        subjects = {t.subject for t in graph}
        assert BENCH.Article in subjects
        assert BENCH.Journal in subjects
        assert all(t.predicate == RDFS.subClassOf for t in graph)
        assert all(t.object == FOAF.Document for t in graph)


class TestPersons:
    def test_regular_person_is_blank_node(self):
        person = Person(index=1, name="Bob Jones", first_year=1970)
        node = rdfwriter.person_node(person)
        assert isinstance(node, BNode)
        assert node.label == "Bob_Jones"

    def test_erdoes_has_fixed_uri(self):
        erdoes = Person(index=-1, name="Paul Erdoes", is_erdoes=True)
        assert rdfwriter.person_node(erdoes) == PERSON.Paul_Erdoes

    def test_person_triples(self):
        person = Person(index=1, name="Bob Jones", first_year=1970)
        graph = Graph(rdfwriter.person_triples(person))
        node = rdfwriter.person_node(person)
        assert graph.value(subject=node, predicate=FOAF.name).lexical == "Bob Jones"
        assert (node, RDF.type, FOAF.Person) in [t.as_tuple() for t in graph]


class TestJournals:
    def test_journal_triples(self):
        journal = Journal(number=1, year=1940)
        graph = Graph(rdfwriter.journal_triples(journal))
        uri = rdfwriter.journal_uri(journal)
        assert graph.value(subject=uri, predicate=DC.title).lexical == "Journal 1 (1940)"
        assert graph.value(subject=uri, predicate=DCTERMS.issued).to_python() == 1940


class TestDocuments:
    def test_article_core_triples(self):
        article, journal, _alice, _erdoes = make_article()
        graph = Graph(rdfwriter.document_triples(article))
        uri = rdfwriter.document_uri(article)
        assert graph.value(subject=uri, predicate=RDF.type) == BENCH.Article
        assert graph.value(subject=uri, predicate=DC.title).lexical == "A study of joins"
        assert graph.value(subject=uri, predicate=DCTERMS.issued).to_python() == 1960
        assert graph.value(subject=uri, predicate=SWRC.journal) == rdfwriter.journal_uri(journal)

    def test_scalar_attribute_mapping(self):
        article, *_rest = make_article()
        graph = Graph(rdfwriter.document_triples(article))
        uri = rdfwriter.document_uri(article)
        assert graph.value(subject=uri, predicate=SWRC.pages).lexical == "1--10"
        assert graph.value(subject=uri, predicate=SWRC.volume).to_python() == 3
        assert graph.value(subject=uri, predicate=RDFS.seeAlso) is not None
        assert graph.value(subject=uri, predicate=FOAF.homepage) is not None

    def test_authors_emitted_with_creator_edges(self):
        article, _journal, alice, erdoes = make_article()
        graph = Graph(rdfwriter.document_triples(article))
        uri = rdfwriter.document_uri(article)
        creators = set(graph.objects(subject=uri, predicate=DC.creator))
        assert creators == {rdfwriter.person_node(alice), rdfwriter.person_node(erdoes)}

    def test_person_triples_emitted_once_when_tracking_set_used(self):
        article, *_rest = make_article()
        emitted = set()
        first = list(rdfwriter.document_triples(article, emitted))
        second = list(rdfwriter.document_triples(article, emitted))
        first_person_types = [t for t in first if t.predicate == RDF.type and t.object == FOAF.Person]
        second_person_types = [t for t in second if t.predicate == RDF.type and t.object == FOAF.Person]
        assert len(first_person_types) == 2
        assert len(second_person_types) == 0

    def test_inproceedings_part_of_link(self):
        proceedings = Document(key="proceedings/1960/1", document_class="proceedings",
                               year=1960, title="Conference 1 (1960)")
        inproc = Document(key="inproceedings/1960/2", document_class="inproceedings",
                          year=1960, title="Some paper", part_of=proceedings)
        graph = Graph(rdfwriter.document_triples(inproc))
        uri = rdfwriter.document_uri(inproc)
        assert graph.value(subject=uri, predicate=DCTERMS.partOf) == rdfwriter.document_uri(proceedings)

    def test_citation_bag_structure(self):
        target1 = Document(key="article/1950/1", document_class="article",
                           year=1950, title="Old paper")
        target2 = Document(key="article/1955/2", document_class="article",
                           year=1955, title="Older paper")
        citing = Document(key="article/1960/3", document_class="article",
                          year=1960, title="New paper",
                          citations=[target1, None, target2])
        graph = Graph(rdfwriter.document_triples(citing))
        uri = rdfwriter.document_uri(citing)
        bag = graph.value(subject=uri, predicate=DCTERMS.references)
        assert isinstance(bag, BNode)
        assert graph.value(subject=bag, predicate=RDF.type) == RDF.Bag
        members = {
            t.object for t in graph.triples(subject=bag)
            if str(t.predicate).split("#_")[-1].isdigit()
        }
        assert members == {rdfwriter.document_uri(target1), rdfwriter.document_uri(target2)}

    def test_untargeted_only_citations_produce_no_bag(self):
        citing = Document(key="article/1960/3", document_class="article",
                          year=1960, title="New paper", citations=[None, None])
        graph = Graph(rdfwriter.document_triples(citing))
        assert graph.value(subject=rdfwriter.document_uri(citing),
                           predicate=DCTERMS.references) is None

    def test_abstract_emitted_when_present(self):
        article, *_rest = make_article()
        article.abstract = "words " * 100
        graph = Graph(rdfwriter.document_triples(article))
        assert graph.value(subject=rdfwriter.document_uri(article),
                           predicate=BENCH.abstract) is not None

    def test_document_uri_is_stable(self):
        article, *_rest = make_article()
        assert rdfwriter.document_uri(article) == rdfwriter.document_uri(article)
        assert isinstance(rdfwriter.document_uri(article), URIRef)

    def test_literal_factories(self):
        assert rdfwriter.string_literal("x").datatype.endswith("string")
        assert rdfwriter.integer_literal(5).to_python() == 5
        with pytest.raises(ValueError):
            rdfwriter.integer_literal("not a number")
