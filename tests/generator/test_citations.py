"""Unit tests for citation assignment."""

import random

import pytest

from repro.generator import CitationManager, Document


def make_document(index, document_class="article"):
    return Document(
        key=f"{document_class}/1990/{index}",
        document_class=document_class,
        year=1990,
        title=f"Paper {index}",
    )


@pytest.fixture
def manager():
    return CitationManager(random.Random(3))


class TestRegistration:
    def test_publications_registered(self, manager):
        manager.register(make_document(1))
        assert len(manager) == 1

    def test_proceedings_not_registered(self, manager):
        manager.register(make_document(1, document_class="proceedings"))
        assert len(manager) == 0


class TestAssignment:
    def test_assign_returns_requested_count(self, manager):
        for index in range(20):
            manager.register(make_document(index))
        citing = make_document(99)
        citations = manager.assign(citing, count=5)
        assert len(citations) == 5
        assert citing.citations == citations

    def test_untargeted_citations_when_no_targets_exist(self, manager):
        citing = make_document(1)
        citations = manager.assign(citing, count=3)
        assert citations == [None, None, None]

    def test_no_self_citation(self, manager):
        document = make_document(1)
        manager.register(document)
        citations = manager.assign(document, count=10)
        assert all(target is not document for target in citations)

    def test_no_duplicate_targets(self, manager):
        for index in range(30):
            manager.register(make_document(index))
        citations = manager.assign(make_document(99), count=15)
        targets = [target for target in citations if target is not None]
        assert len(targets) == len(set(id(t) for t in targets))

    def test_targets_gain_incoming_citations(self, manager):
        target = make_document(1)
        manager.register(target)
        manager._untargeted_fraction = 0.0
        manager.assign(make_document(2), count=1)
        assert target.incoming_citations == 1

    def test_untargeted_fraction_zero_targets_everything(self):
        manager = CitationManager(random.Random(3), untargeted_fraction=0.0)
        for index in range(40):
            manager.register(make_document(index))
        citations = manager.assign(make_document(99), count=10)
        assert all(target is not None for target in citations)

    def test_outgoing_count_from_gaussian(self, manager):
        counts = [manager.outgoing_count() for _ in range(300)]
        assert min(counts) >= 1
        assert 10 < sum(counts) / len(counts) < 25


class TestIncomingDistribution:
    def test_incoming_histogram_shape_is_skewed(self):
        # With preferential attachment most documents end up uncited while a
        # few accumulate many incoming citations (the Section III-D power law).
        manager = CitationManager(random.Random(5), untargeted_fraction=0.0)
        documents = [make_document(index) for index in range(100)]
        for document in documents:
            manager.register(document)
        for index in range(60):
            manager.assign(make_document(1000 + index), count=5)
        histogram = manager.incoming_histogram()
        uncited_or_rare = sum(count for incoming, count in histogram.items() if incoming <= 2)
        heavily_cited = [incoming for incoming in histogram if incoming >= 8]
        assert uncited_or_rare > 50
        assert heavily_cited, "preferential attachment should create citation hubs"
