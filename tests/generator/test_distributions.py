"""Unit tests for the fitted distribution families (Section III constants)."""

import random

import pytest

from repro.generator import distributions as d


class TestGaussian:
    def test_peak_at_mu(self):
        curve = d.Gaussian(10.0, 2.0)
        assert curve.probability(10.0) > curve.probability(8.0) > curve.probability(5.0)

    def test_symmetric_around_mu(self):
        curve = d.Gaussian(10.0, 2.0)
        assert curve.probability(8.0) == pytest.approx(curve.probability(12.0))

    def test_density_integrates_to_one(self):
        curve = d.Gaussian(0.0, 1.0)
        total = sum(curve.probability(x / 100.0) for x in range(-600, 601)) / 100.0
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            d.Gaussian(1.0, 0.0)

    def test_sample_count_respects_minimum(self):
        rng = random.Random(1)
        curve = d.Gaussian(2.0, 5.0)
        samples = [curve.sample_count(rng, minimum=1) for _ in range(200)]
        assert min(samples) >= 1

    def test_sample_count_respects_maximum(self):
        rng = random.Random(1)
        curve = d.Gaussian(10.0, 5.0)
        samples = [curve.sample_count(rng, minimum=1, maximum=12) for _ in range(200)]
        assert max(samples) <= 12

    def test_sample_mean_tracks_mu(self):
        rng = random.Random(42)
        curve = d.Gaussian(16.82, 10.07)
        samples = [curve.sample_count(rng, minimum=1) for _ in range(3000)]
        assert sum(samples) / len(samples) == pytest.approx(16.82, abs=2.0)


class TestLogistic:
    def test_monotonically_increasing(self):
        curve = d.Logistic(100.0, 50.0, 0.1, x0=1950)
        values = [curve.value(year) for year in range(1950, 2010, 10)]
        assert values == sorted(values)

    def test_upper_asymptote(self):
        curve = d.Logistic(100.0, 50.0, 0.1, x0=1950)
        assert curve.value(3000) == pytest.approx(100.0, rel=1e-6)

    def test_lower_asymptote(self):
        curve = d.Logistic(100.0, 50.0, 0.1, x0=1950)
        assert curve.value(1000) == pytest.approx(0.0, abs=1e-6)

    def test_callable(self):
        curve = d.Logistic(1.0, 1.0, 1.0)
        assert curve(0) == curve.value(0)


class TestPowerLaw:
    def test_decreasing_for_negative_exponent(self):
        curve = d.PowerLaw(100.0, -2.0)
        assert curve.value(1) > curve.value(2) > curve.value(10)

    def test_offset_applied(self):
        assert d.PowerLaw(1.0, -1.0, b=5.0).value(1) == pytest.approx(6.0)

    def test_nonpositive_x_rejected(self):
        with pytest.raises(ValueError):
            d.PowerLaw(1.0, -1.0).value(0)


class TestPaperConstants:
    def test_journal_growth_1950_is_small(self):
        # f_journal(1950) = 740.43 / (1 + 426.28) ~ 1.7
        assert d.JOURNAL_GROWTH.value(1950) == pytest.approx(1.73, abs=0.1)

    def test_journal_growth_upper_asymptote(self):
        assert d.JOURNAL_GROWTH.value(2200) == pytest.approx(740.43, rel=1e-3)

    def test_article_growth_dominates_journal_growth(self):
        for year in (1970, 1990, 2005):
            assert d.ARTICLE_GROWTH.value(year) > d.JOURNAL_GROWTH.value(year)

    def test_inproceedings_to_proceedings_ratio_roughly_50_to_60(self):
        # Section III-B: "there are always about 50-60 times more
        # inproceedings than proceedings".
        for year in (1990, 2000, 2005):
            ratio = d.INPROCEEDINGS_GROWTH.value(year) / d.PROCEEDINGS_GROWTH.value(year)
            assert 40 <= ratio <= 70

    def test_author_count_mean_increases_over_years(self):
        assert (d.expected_authors_per_paper(2005)
                > d.expected_authors_per_paper(1985)
                > d.expected_authors_per_paper(1965))

    def test_author_count_mean_bounds(self):
        # mu_auth ranges between 1.05 (early) and 3.10 (asymptote).
        assert d.expected_authors_per_paper(1900) == pytest.approx(1.05, abs=0.1)
        assert d.expected_authors_per_paper(2200) == pytest.approx(3.10, abs=0.1)

    def test_citation_distribution_parameters(self):
        assert d.CITATION_COUNT.mu == pytest.approx(16.82)
        assert d.CITATION_COUNT.sigma == pytest.approx(10.07)

    def test_editor_distribution_parameters(self):
        assert d.EDITOR_COUNT.mu == pytest.approx(2.15)
        assert d.EDITOR_COUNT.sigma == pytest.approx(1.18)

    def test_distinct_author_fraction_decreases_over_time(self):
        assert d.distinct_author_fraction(1960) > d.distinct_author_fraction(2005)

    def test_distinct_author_fraction_limits(self):
        # From 0.84 down to 0.84 - 0.67 = 0.17 (Section III-C).
        assert d.distinct_author_fraction(1900) == pytest.approx(0.84, abs=0.02)
        assert d.distinct_author_fraction(2300) == pytest.approx(0.17, abs=0.02)

    def test_new_author_fraction_within_unit_interval(self):
        for year in range(1940, 2020, 10):
            assert 0.0 < d.new_author_fraction(year) <= 1.0

    def test_publication_exponent_range(self):
        # f'awp drifts from ~3.08 towards ~2.48.
        assert d.publication_count_exponent(1940) == pytest.approx(3.08, abs=0.05)
        assert d.publication_count_exponent(2300) == pytest.approx(2.48, abs=0.05)

    def test_authors_with_publications_decreasing_in_x(self):
        values = [d.authors_with_publications(x, 1995, 100000) for x in (1, 2, 5, 10)]
        assert values == sorted(values, reverse=True)

    def test_coauthor_expectations(self):
        assert d.expected_total_coauthors(10) == pytest.approx(21.2)
        assert d.expected_distinct_coauthors(10) == pytest.approx(10 ** 0.81)

    def test_random_class_limits_match_paper(self):
        assert d.RANDOM_CLASS_LIMITS == {"phdthesis": 20, "mastersthesis": 10, "www": 10}
