"""Unit tests for the author population management."""

import random

import pytest

from repro.generator import AuthorPool, GeneratorConfig, ERDOES_NAME


@pytest.fixture
def pool():
    return AuthorPool(GeneratorConfig(), random.Random(11))


class TestYearPlanning:
    def test_begin_year_creates_persons(self, pool):
        year_pool = pool.begin_year(1980, documents_with_authors=50)
        assert year_pool
        assert pool.persons

    def test_later_years_reuse_existing_persons(self, pool):
        pool.begin_year(1980, documents_with_authors=60)
        first_population = len(pool.persons)
        pool.begin_year(1981, documents_with_authors=60)
        returning = [p for p in pool._year_pool if p.first_year == 1980]
        assert returning, "some 1980 authors should publish again in 1981"
        assert len(pool.persons) > first_population

    def test_minimal_year_still_yields_a_pool(self, pool):
        assert pool.begin_year(1950, documents_with_authors=0)

    def test_yearly_statistics_recorded(self, pool):
        pool.begin_year(1980, documents_with_authors=10)
        assert 1980 in pool.yearly
        assert pool.yearly[1980]["distinct_planned"] >= 1


class TestAuthorSelection:
    def test_select_authors_returns_distinct_persons(self, pool):
        pool.begin_year(1990, documents_with_authors=40)
        authors = pool.select_authors(3)
        assert len(authors) == len(set(authors)) == 3

    def test_selection_updates_publication_counts(self, pool):
        pool.begin_year(1990, documents_with_authors=40)
        authors = pool.select_authors(2)
        assert all(author.publication_count == 1 for author in authors)

    def test_selection_tracks_coauthors(self, pool):
        pool.begin_year(1990, documents_with_authors=40)
        authors = pool.select_authors(3)
        for author in authors:
            assert len(author.coauthor_names) == 2

    def test_include_erdoes_puts_erdoes_first(self, pool):
        pool.begin_year(1990, documents_with_authors=40)
        authors = pool.select_authors(2, include_erdoes=True)
        assert authors[0] is pool.erdoes
        assert pool.erdoes.publication_count == 1

    def test_author_count_for_increases_over_years(self, pool):
        rng_counts_early = [
            AuthorPool(GeneratorConfig(), random.Random(5)).author_count_for(1965)
            for _ in range(1)
        ]
        assert min(rng_counts_early) >= 1

    def test_repeated_selection_builds_skewed_counts(self, pool):
        # Preferential attachment: publication counts end up long-tailed —
        # many authors with few publications, few authors with many
        # (the Figure 2c shape).
        pool.begin_year(1995, documents_with_authors=200)
        for _ in range(150):
            pool.select_authors(2)
        counts = sorted(p.publication_count for p in pool.persons if p.publication_count)
        mean = sum(counts) / len(counts)
        assert counts[-1] >= 2 * mean, "top author should publish far above the average"
        assert counts[0] == 1, "some authors should have a single publication"


class TestEditors:
    def test_select_editors_distinct(self, pool):
        pool.begin_year(1990, documents_with_authors=40)
        pool.select_authors(5)
        editors = pool.select_editors(2)
        assert len(editors) == len(set(editors)) == 2
        assert all(editor.editor_count == 1 for editor in editors)

    def test_erdoes_as_editor(self, pool):
        pool.begin_year(1990, documents_with_authors=10)
        editors = pool.select_editors(2, include_erdoes=True)
        assert editors[0] is pool.erdoes
        assert pool.erdoes.editor_count == 1


class TestStatistics:
    def test_total_author_slots_counts_assignments(self, pool):
        pool.begin_year(1990, documents_with_authors=20)
        pool.select_authors(3)
        pool.select_authors(2)
        assert pool.total_author_slots() == 5

    def test_distinct_author_count(self, pool):
        pool.begin_year(1990, documents_with_authors=20)
        pool.select_authors(4)
        assert pool.distinct_author_count() == 4

    def test_publication_histogram(self, pool):
        pool.begin_year(1990, documents_with_authors=20)
        pool.select_authors(2)
        histogram = pool.publication_histogram()
        assert histogram.get(1, 0) >= 2

    def test_erdoes_identity(self, pool):
        assert pool.erdoes.name == ERDOES_NAME
        assert pool.erdoes.is_erdoes
        assert pool.erdoes.node_label == "Paul_Erdoes"
