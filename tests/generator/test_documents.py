"""Unit tests for the document model and per-year class counts."""

import random

from repro.generator import Document, Journal, class_counts_for_year
from repro.generator.documents import expected_documents


class TestJournal:
    def test_title_format_matches_paper(self):
        journal = Journal(number=1, year=1940)
        assert journal.title == "Journal 1 (1940)"

    def test_key_contains_number_and_year(self):
        journal = Journal(number=3, year=1985)
        assert "Journal3" in journal.key and "1985" in journal.key


class TestDocument:
    def test_proceedings_is_not_a_publication(self):
        doc = Document(key="proceedings/1990/1", document_class="proceedings",
                       year=1990, title="Conference 1 (1990)")
        assert not doc.is_publication()

    def test_article_is_a_publication(self):
        doc = Document(key="article/1990/1", document_class="article",
                       year=1990, title="A title")
        assert doc.is_publication()

    def test_default_collections_are_independent(self):
        doc1 = Document(key="a", document_class="article", year=1990, title="t")
        doc2 = Document(key="b", document_class="article", year=1990, title="t")
        doc1.authors.append("someone")
        assert doc2.authors == []


class TestClassCounts:
    def test_counts_grow_over_time(self):
        rng = random.Random(0)
        early = class_counts_for_year(1960, rng)
        late = class_counts_for_year(2000, rng)
        for name in ("article", "inproceedings", "proceedings", "journal"):
            assert late[name] > early[name]

    def test_journal_1940_guaranteed(self):
        rng = random.Random(0)
        assert class_counts_for_year(1940, rng)["journal"] >= 1

    def test_articles_imply_a_journal(self):
        rng = random.Random(0)
        for year in (1945, 1955, 1975):
            counts = class_counts_for_year(year, rng)
            if counts["article"] > 0:
                assert counts["journal"] >= 1

    def test_inproceedings_imply_a_proceedings(self):
        rng = random.Random(0)
        for year in (1965, 1975, 1995):
            counts = class_counts_for_year(year, rng)
            if counts["inproceedings"] > 0:
                assert counts["proceedings"] >= 1

    def test_random_classes_absent_before_1980(self):
        rng = random.Random(0)
        counts = class_counts_for_year(1970, rng)
        assert counts["phdthesis"] == 0
        assert counts["mastersthesis"] == 0
        assert counts["www"] == 0

    def test_random_classes_bounded_after_1980(self):
        rng = random.Random(0)
        for _ in range(20):
            counts = class_counts_for_year(1995, rng)
            assert counts["phdthesis"] <= 20
            assert counts["mastersthesis"] <= 10
            assert counts["www"] <= 10

    def test_articles_and_inproceedings_dominate(self):
        # Section III-B: articles and inproceedings dominate other classes.
        rng = random.Random(0)
        counts = class_counts_for_year(2000, rng)
        dominant = counts["article"] + counts["inproceedings"]
        rest = counts["book"] + counts["incollection"] + counts["phdthesis"]
        assert dominant > 10 * rest

    def test_expected_documents_excludes_journals(self):
        rng = random.Random(0)
        counts = class_counts_for_year(1990, random.Random(0))
        total = expected_documents(1990, rng)
        assert total == sum(v for k, v in counts.items() if k != "journal")
