"""Unit and invariant tests for the end-to-end data generator."""

import pytest

from repro.generator import DblpGenerator, GeneratorConfig
from repro.rdf import (
    BENCH,
    DC,
    DCTERMS,
    FOAF,
    PERSON,
    RDF,
    RDFS,
    SWRC,
    BNode,
    parse_file,
    serialize,
)


class TestConfig:
    def test_defaults_are_valid(self):
        config = GeneratorConfig()
        assert config.effective_triple_limit() == config.default_triple_limit

    def test_triple_limit_used_when_set(self):
        assert GeneratorConfig(triple_limit=500).effective_triple_limit() == 500

    def test_end_year_disables_default_limit(self):
        config = GeneratorConfig(end_year=1950)
        assert config.effective_triple_limit() is None
        assert config.last_simulated_year() == 1950

    def test_invalid_triple_limit_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(triple_limit=0)

    def test_end_year_before_start_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(end_year=1900)

    def test_invalid_abstract_fraction_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(abstract_fraction=1.5)


class TestDeterminismAndLimits:
    def test_same_seed_gives_identical_output(self):
        first = serialize(DblpGenerator(GeneratorConfig(triple_limit=1500, seed=3)).triples())
        second = serialize(DblpGenerator(GeneratorConfig(triple_limit=1500, seed=3)).triples())
        assert first == second

    def test_different_seeds_give_different_output(self):
        first = serialize(DblpGenerator(GeneratorConfig(triple_limit=1500, seed=3)).triples())
        second = serialize(DblpGenerator(GeneratorConfig(triple_limit=1500, seed=4)).triples())
        assert first != second

    def test_triple_limit_respected_within_one_document(self):
        graph = DblpGenerator(GeneratorConfig(triple_limit=2000)).graph()
        # Generation stops after the document that crosses the limit, so the
        # overshoot is bounded by one document's triples (well under 10%).
        assert 2000 <= len(graph) <= 2200

    def test_larger_limits_extend_smaller_ones(self):
        # Incremental generation: a smaller document is a prefix of a larger
        # one generated with the same seed.
        small = list(DblpGenerator(GeneratorConfig(triple_limit=1000, seed=3)).triples())
        large = list(DblpGenerator(GeneratorConfig(triple_limit=2000, seed=3)).triples())
        assert large[: len(small)] == small

    def test_end_year_mode_covers_requested_years(self):
        generator = DblpGenerator(GeneratorConfig(end_year=1945))
        graph = generator.graph()
        assert generator.statistics.last_year == 1945
        assert len(graph) > 100

    def test_write_round_trips_through_ntriples(self, tmp_path):
        path = tmp_path / "doc.nt"
        generator = DblpGenerator(GeneratorConfig(triple_limit=1200, seed=5))
        count = generator.write(path)
        assert sum(1 for _triple in parse_file(path)) == count

    def test_generate_into_matches_graph_output(self):
        from repro.store import IndexedStore

        config = GeneratorConfig(triple_limit=1200, seed=5)
        graph = DblpGenerator(config).graph()
        store = IndexedStore()
        added = DblpGenerator(config).generate_into(store)
        assert added == len(graph)
        assert set(store.triples()) == set(graph)


class TestStructuralInvariants:
    @pytest.fixture(scope="class")
    def generated(self):
        generator = DblpGenerator(GeneratorConfig(triple_limit=4000, seed=9))
        return generator, generator.graph()

    def test_schema_layer_present(self, generated):
        _generator, graph = generated
        subclasses = {t.subject for t in graph.triples(None, RDFS.subClassOf, FOAF.Document)}
        assert BENCH.Article in subclasses
        assert BENCH.Journal in subclasses

    def test_journal_1_1940_exists(self, generated):
        _generator, graph = generated
        titles = {t.object.lexical for t in graph.triples(None, DC.title, None)}
        assert "Journal 1 (1940)" in titles

    def test_every_document_has_type_title_year(self, generated):
        _generator, graph = generated
        document_classes = {BENCH.Article, BENCH.Inproceedings, BENCH.Proceedings,
                            BENCH.Book, BENCH.Incollection, BENCH.PhDThesis,
                            BENCH.MastersThesis, BENCH.WWW}
        for triple in graph.triples(None, RDF.type, None):
            if triple.object not in document_classes:
                continue
            subject = triple.subject
            assert graph.value(subject=subject, predicate=DC.title) is not None
            assert graph.value(subject=subject, predicate=DCTERMS.issued) is not None

    def test_part_of_targets_exist(self, generated):
        _generator, graph = generated
        proceedings = set(graph.subjects(predicate=RDF.type, object=BENCH.Proceedings))
        for triple in graph.triples(None, DCTERMS.partOf, None):
            assert triple.object in proceedings

    def test_journal_links_target_existing_journals(self, generated):
        _generator, graph = generated
        journals = set(graph.subjects(predicate=RDF.type, object=BENCH.Journal))
        for triple in graph.triples(None, SWRC.journal, None):
            assert triple.object in journals

    def test_creators_are_typed_persons_with_names(self, generated):
        _generator, graph = generated
        persons = set(graph.subjects(predicate=RDF.type, object=FOAF.Person))
        named = set(graph.subjects(predicate=FOAF.name))
        for triple in graph.triples(None, DC.creator, None):
            assert triple.object in persons
            assert triple.object in named

    def test_persons_are_blank_nodes_except_erdoes(self, generated):
        _generator, graph = generated
        for person in graph.subjects(predicate=RDF.type, object=FOAF.Person):
            if person == PERSON.Paul_Erdoes:
                continue
            assert isinstance(person, BNode)

    def test_erdoes_present_with_publications_and_editorships(self, generated):
        _generator, graph = generated
        as_author = list(graph.triples(None, DC.creator, PERSON.Paul_Erdoes))
        as_editor = list(graph.triples(None, SWRC.editor, PERSON.Paul_Erdoes))
        assert as_author, "Paul Erdoes should author publications from 1940 on"
        assert as_editor, "Paul Erdoes should act as editor from 1940 on"

    def test_reference_lists_are_rdf_bags_of_existing_documents(self, generated):
        _generator, graph = generated
        documents = {
            t.subject for t in graph.triples(None, RDF.type, None)
            if str(t.object).startswith(BENCH.base)
        }
        for triple in graph.triples(None, DCTERMS.references, None):
            bag = triple.object
            assert graph.value(subject=bag, predicate=RDF.type) == RDF.Bag
            for member in graph.triples(subject=bag):
                if member.predicate in (RDF.type,):
                    continue
                assert member.object in documents

    def test_statistics_match_graph_contents(self, generated):
        generator, graph = generated
        stats = generator.statistics.as_dict()
        assert stats["triples"] == len(graph)
        articles_in_graph = sum(
            1 for _ in graph.triples(None, RDF.type, BENCH.Article)
        )
        assert stats["class_totals"].get("article", 0) == articles_in_graph

    def test_abstract_fraction_is_small(self, generated):
        _generator, graph = generated
        abstracts = sum(1 for _ in graph.triples(None, BENCH.abstract, None))
        articles = sum(1 for _ in graph.triples(None, RDF.type, BENCH.Article))
        inprocs = sum(1 for _ in graph.triples(None, RDF.type, BENCH.Inproceedings))
        assert abstracts <= 0.1 * max(articles + inprocs, 1)


class TestTableVIIIShape:
    def test_growth_of_characteristics_with_document_size(self):
        """Larger documents reach later years and hold more instances (Table VIII)."""
        small_gen = DblpGenerator(GeneratorConfig(triple_limit=1000, seed=2))
        large_gen = DblpGenerator(GeneratorConfig(triple_limit=8000, seed=2))
        small_gen.graph(), large_gen.graph()
        small, large = small_gen.statistics, large_gen.statistics
        assert large.last_year > small.last_year
        assert large.class_totals.get("article", 0) > small.class_totals.get("article", 0)
        assert large.class_totals.get("journal", 0) >= small.class_totals.get("journal", 0)

    def test_10k_document_matches_paper_scale(self):
        """The 10k-triple document lands near the paper's Table VIII row."""
        generator = DblpGenerator(GeneratorConfig(triple_limit=10_000))
        generator.graph()
        stats = generator.statistics
        # Paper: data up to 1955, 25 journals, 916 articles, 169 inproceedings.
        assert 1950 <= stats.last_year <= 1958
        assert 15 <= stats.class_totals.get("journal", 0) <= 40
        assert 500 <= stats.class_totals.get("article", 0) <= 1300
        assert 50 <= stats.class_totals.get("inproceedings", 0) <= 400
        # No theses or WWW documents this early (as in the paper).
        assert stats.class_totals.get("phdthesis", 0) == 0
        assert stats.class_totals.get("www", 0) == 0
