"""Unit tests for the Table I / Table IX attribute probability matrix."""

import random

import pytest

from repro.generator import (
    ATTRIBUTES,
    DOCUMENT_CLASSES,
    attribute_probability,
    class_probabilities,
    probability_table,
    sample_attributes,
)


class TestMatrixContents:
    def test_all_eight_document_classes_present(self):
        assert DOCUMENT_CLASSES == (
            "article", "inproceedings", "proceedings", "book", "incollection",
            "phdthesis", "mastersthesis", "www",
        )

    def test_all_22_dtd_attributes_present(self):
        assert len(ATTRIBUTES) == 22

    def test_table1_selected_values(self):
        # Spot-check the values printed in Table I of the paper.
        assert attribute_probability("author", "article") == pytest.approx(0.9895)
        assert attribute_probability("cite", "inproceedings") == pytest.approx(0.0104)
        assert attribute_probability("editor", "proceedings") == pytest.approx(0.7992)
        assert attribute_probability("isbn", "book") == pytest.approx(0.9294)
        assert attribute_probability("journal", "article") == pytest.approx(0.9994)
        assert attribute_probability("month", "article") == pytest.approx(0.0065)
        assert attribute_probability("pages", "article") == pytest.approx(0.9261)
        assert attribute_probability("title", "www") == pytest.approx(1.0)

    def test_q3_selectivity_ordering(self):
        # Q3a/Q3b/Q3c are built on pages >> month > isbn for articles.
        pages = attribute_probability("pages", "article")
        month = attribute_probability("month", "article")
        isbn = attribute_probability("isbn", "article")
        assert pages > month > isbn
        assert isbn == 0.0

    def test_every_class_always_has_title(self):
        for document_class in DOCUMENT_CLASSES:
            assert attribute_probability("title", document_class) == pytest.approx(1.0)

    def test_probabilities_are_valid(self):
        for attribute in ATTRIBUTES:
            for document_class in DOCUMENT_CLASSES:
                probability = attribute_probability(attribute, document_class)
                assert 0.0 <= probability <= 1.0

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            attribute_probability("nosuch", "article")

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError):
            attribute_probability("author", "nosuch")

    def test_class_probabilities_view(self):
        probabilities = class_probabilities("article")
        assert probabilities["pages"] == pytest.approx(0.9261)
        assert set(probabilities) == set(ATTRIBUTES)

    def test_probability_table_subsets(self):
        table = probability_table(attributes=("author", "cite"), classes=("article",))
        assert set(table) == {"author", "cite"}
        assert set(table["author"]) == {"article"}


class TestSampling:
    def test_forced_attributes_always_present(self):
        rng = random.Random(0)
        sampled = sample_attributes("article", rng, forced=("title", "year"))
        assert {"title", "year"} <= sampled

    def test_excluded_attributes_never_present(self):
        rng = random.Random(0)
        for _ in range(50):
            sampled = sample_attributes("article", rng, excluded=("author", "cite"))
            assert "author" not in sampled and "cite" not in sampled

    def test_zero_probability_attributes_never_sampled(self):
        rng = random.Random(0)
        for _ in range(100):
            assert "isbn" not in sample_attributes("article", rng)

    def test_certain_attributes_always_sampled(self):
        rng = random.Random(0)
        for _ in range(20):
            assert "title" in sample_attributes("inproceedings", rng)

    def test_sampling_frequency_tracks_probability(self):
        rng = random.Random(7)
        runs = 2000
        hits = sum("pages" in sample_attributes("article", rng) for _ in range(runs))
        assert hits / runs == pytest.approx(0.9261, abs=0.03)

    def test_sampling_is_deterministic_for_seeded_rng(self):
        first = [sample_attributes("article", random.Random(5)) for _ in range(1)]
        second = [sample_attributes("article", random.Random(5)) for _ in range(1)]
        assert first == second
