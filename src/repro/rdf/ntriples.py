"""N-Triples serialization and parsing.

The SP2Bench generator writes its output as N-Triples (one triple per line),
which keeps the writer streaming and memory-constant as required by the
paper's portability/scalability design principles (Section II).  The parser
is the inverse used by engine loaders and round-trip tests.
"""

from __future__ import annotations

import io

from .errors import ParseError
from .graph import Graph
from .terms import BNode, Literal, URIRef
from .triple import Triple

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


def serialize_triple(triple):
    """Return the N-Triples line (without newline) for a ground triple."""
    return triple.n3()


def serialize(triples, out=None):
    """Serialize an iterable of triples to N-Triples.

    If ``out`` is a file-like object the triples are streamed to it and the
    number of lines written is returned; otherwise a string is returned.
    """
    if out is None:
        buffer = io.StringIO()
        count = serialize(triples, buffer)
        del count
        return buffer.getvalue()
    written = 0
    for triple in triples:
        out.write(serialize_triple(triple))
        out.write("\n")
        written += 1
    return written


def write_file(triples, path):
    """Serialize triples to a file at ``path``; returns the triple count."""
    with open(path, "w", encoding="utf-8") as handle:
        return serialize(triples, handle)


class NTriplesParser:
    """A line-oriented N-Triples parser."""

    def parse_line(self, line, lineno=None):
        """Parse a single N-Triples line into a Triple, or None for blanks."""
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return None
        self._text = stripped
        self._pos = 0
        self._lineno = lineno
        subject = self._parse_term(allow_literal=False)
        self._skip_whitespace()
        predicate = self._parse_term(allow_literal=False, allow_bnode=False)
        self._skip_whitespace()
        object_term = self._parse_term(allow_literal=True)
        self._skip_whitespace()
        if self._pos >= len(self._text) or self._text[self._pos] != ".":
            raise ParseError("expected terminating '.'", self._lineno)
        return Triple(subject, predicate, object_term)

    def parse(self, source):
        """Parse a string or file-like object; yields triples."""
        if isinstance(source, str):
            lines = source.splitlines()
        else:
            lines = source
        for lineno, line in enumerate(lines, start=1):
            triple = self.parse_line(line, lineno)
            if triple is not None:
                yield triple

    # -- internals ---------------------------------------------------------

    def _skip_whitespace(self):
        while self._pos < len(self._text) and self._text[self._pos] in " \t":
            self._pos += 1

    def _parse_term(self, allow_literal, allow_bnode=True):
        self._skip_whitespace()
        if self._pos >= len(self._text):
            raise ParseError("unexpected end of line", self._lineno)
        char = self._text[self._pos]
        if char == "<":
            return self._parse_uri()
        if char == "_" and allow_bnode:
            return self._parse_bnode()
        if char == '"' and allow_literal:
            return self._parse_literal()
        raise ParseError(f"unexpected character {char!r} at column {self._pos}", self._lineno)

    def _parse_uri(self):
        end = self._text.find(">", self._pos)
        if end < 0:
            raise ParseError("unterminated URI", self._lineno)
        value = self._text[self._pos + 1:end]
        if any(ch in value for ch in "<> \t"):
            raise ParseError(f"malformed URI <{value}>", self._lineno)
        self._pos = end + 1
        return URIRef(value)

    def _parse_bnode(self):
        if not self._text.startswith("_:", self._pos):
            raise ParseError("malformed blank node", self._lineno)
        start = self._pos + 2
        end = start
        while end < len(self._text) and not self._text[end].isspace():
            end += 1
        label = self._text[start:end]
        if not label:
            raise ParseError("blank node with empty label", self._lineno)
        self._pos = end
        return BNode(label)

    def _parse_literal(self):
        # Opening quote is at self._pos.
        chars = []
        pos = self._pos + 1
        text = self._text
        while True:
            if pos >= len(text):
                raise ParseError("unterminated literal", self._lineno)
            char = text[pos]
            if char == "\\":
                if pos + 1 >= len(text):
                    raise ParseError("dangling escape in literal", self._lineno)
                escape = text[pos + 1]
                if escape in _ESCAPES:
                    chars.append(_ESCAPES[escape])
                    pos += 2
                    continue
                if escape == "u" and pos + 5 < len(text):
                    chars.append(chr(int(text[pos + 2:pos + 6], 16)))
                    pos += 6
                    continue
                raise ParseError(f"unknown escape sequence \\{escape}", self._lineno)
            if char == '"':
                pos += 1
                break
            chars.append(char)
            pos += 1
        lexical = "".join(chars)
        datatype = None
        language = None
        if pos < len(text) and text[pos] == "@":
            end = pos + 1
            while end < len(text) and (text[end].isalnum() or text[end] == "-"):
                end += 1
            language = text[pos + 1:end]
            pos = end
        elif text.startswith("^^<", pos):
            end = text.find(">", pos + 3)
            if end < 0:
                raise ParseError("unterminated datatype URI", self._lineno)
            datatype = text[pos + 3:end]
            pos = end + 1
        self._pos = pos
        return Literal(lexical, datatype=datatype, language=language)


def parse(source):
    """Parse N-Triples text (or a file-like object); yields triples."""
    return NTriplesParser().parse(source)


def parse_file(path):
    """Stream-parse an N-Triples file, yielding triples one at a time.

    A true streaming iterator: lines are read, parsed, and handed to the
    consumer without ever materializing the document — memory stays constant
    in the file size, mirroring the generator's streaming writer.  Wrap the
    result in :class:`Graph` when a materialized document is needed, or feed
    it to :func:`load_into` to fill a store directly.
    """
    parser = NTriplesParser()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            triple = parser.parse_line(line, lineno)
            if triple is not None:
                yield triple


def load_into(store, source):
    """Bulk-load N-Triples straight into a triple store; returns count added.

    ``source`` is a file path or a file-like object.  Triples stream from the
    parser into the store's bulk loader with no intermediate list or
    :class:`Graph` — the loading path the benchmark harness and CLI use so
    that document size never inflates peak memory beyond the store itself.
    """
    if hasattr(source, "read"):
        return store.bulk_load(parse(source))
    return store.bulk_load(parse_file(source))


def parse_graph(text):
    """Parse N-Triples text into a :class:`Graph`."""
    return Graph(parse(text))
