"""RDF term types: URIs, blank nodes, literals, and query variables.

The SP2Bench data model (Section IV of the paper) uses all three RDF node
types: URIs for documents, venues, and the fixed Paul Erdoes person; blank
nodes for persons and ``rdf:Bag`` reference lists; and literals (plain and
XSD-typed) for attribute values.  Query variables are included here because
triple patterns share the triple representation with ground triples.

Terms are immutable value objects.  They order and hash by their lexical
identity so they can be used as dictionary keys in stores and as sort keys in
``ORDER BY`` evaluation.
"""

from __future__ import annotations

from .errors import TermError

#: XSD datatype URIs understood by the literal value machinery.
XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"
XSD_GYEAR = "http://www.w3.org/2001/XMLSchema#gYear"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE, XSD_GYEAR})


class Term:
    """Common base class for all RDF terms (and variables)."""

    __slots__ = ()

    #: Sort rank used for total ordering across term kinds (SPARQL ORDER BY
    #: orders blank nodes before URIs before literals).
    _order_rank = 0

    def n3(self):
        """Return the N-Triples / SPARQL surface form of this term."""
        raise NotImplementedError

    def sort_key(self):
        """Key establishing a deterministic total order over terms."""
        return (self._order_rank, str(self))

    def is_ground(self):
        """True for concrete RDF terms, False for query variables."""
        return True

    def __reduce__(self):
        # The concrete classes enforce immutability by raising from
        # __setattr__, which also defeats the default slot-state unpickling;
        # rebuild through object.__new__/__setattr__ instead (the same
        # trusted path the snapshot loader uses).  Needed so query plans can
        # be shipped to scatter-gather segment workers.
        state = tuple(getattr(self, slot) for slot in type(self).__slots__)
        return (_restore_term, (type(self), state))


def _restore_term(cls, state):
    """Unpickle one term without running its validating constructor."""
    term = object.__new__(cls)
    for slot, value in zip(cls.__slots__, state):
        object.__setattr__(term, slot, value)
    return term


class URIRef(Term):
    """A URI reference identifying a resource."""

    __slots__ = ("value",)
    _order_rank = 2

    def __init__(self, value):
        if not isinstance(value, str) or not value:
            raise TermError(f"URIRef requires a non-empty string, got {value!r}")
        if any(ch in value for ch in "<> \n\t"):
            raise TermError(f"URIRef contains forbidden characters: {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, _value):
        raise AttributeError(f"URIRef is immutable (tried to set {name})")

    def n3(self):
        return f"<{self.value}>"

    def __str__(self):
        return self.value

    def __repr__(self):
        return f"URIRef({self.value!r})"

    def __eq__(self, other):
        return isinstance(other, URIRef) and other.value == self.value

    def __hash__(self):
        return hash((URIRef, self.value))


class BNode(Term):
    """A blank node, identified by a document-scoped label."""

    __slots__ = ("label",)
    _order_rank = 1

    def __init__(self, label):
        if not isinstance(label, str) or not label:
            raise TermError(f"BNode requires a non-empty label, got {label!r}")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, _value):
        raise AttributeError(f"BNode is immutable (tried to set {name})")

    def n3(self):
        return f"_:{self.label}"

    def __str__(self):
        return f"_:{self.label}"

    def __repr__(self):
        return f"BNode({self.label!r})"

    def __eq__(self, other):
        return isinstance(other, BNode) and other.label == self.label

    def __hash__(self):
        return hash((BNode, self.label))


class Literal(Term):
    """An RDF literal with an optional datatype and language tag.

    Numeric XSD datatypes expose a parsed Python value through
    :meth:`to_python`, which FILTER expression evaluation and ORDER BY use for
    value-based comparison (e.g. ``?yr2 < ?yr`` in Q6 compares years
    numerically).
    """

    __slots__ = ("lexical", "datatype", "language")
    _order_rank = 3

    def __init__(self, lexical, datatype=None, language=None):
        if isinstance(lexical, bool):
            datatype = datatype or XSD_BOOLEAN
            lexical = "true" if lexical else "false"
        elif isinstance(lexical, int):
            datatype = datatype or XSD_INTEGER
            lexical = str(lexical)
        elif isinstance(lexical, float):
            datatype = datatype or XSD_DOUBLE
            lexical = repr(lexical)
        elif not isinstance(lexical, str):
            raise TermError(f"Literal lexical form must be a string, got {lexical!r}")
        if datatype is not None and language is not None:
            raise TermError("a literal cannot carry both a datatype and a language tag")
        if isinstance(datatype, URIRef):
            datatype = datatype.value
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name, _value):
        raise AttributeError(f"Literal is immutable (tried to set {name})")

    def to_python(self):
        """Return the typed Python value for this literal.

        Plain and ``xsd:string`` literals map to ``str``; numeric datatypes to
        ``int``/``float``; booleans to ``bool``.  Malformed numeric lexical
        forms fall back to the lexical string.
        """
        if self.datatype in (XSD_INTEGER, XSD_GYEAR):
            try:
                return int(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            try:
                return float(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype == XSD_BOOLEAN:
            return self.lexical.strip().lower() in ("true", "1")
        return self.lexical

    def is_numeric(self):
        """True if the literal carries a numeric XSD datatype."""
        return self.datatype in _NUMERIC_DATATYPES

    def n3(self):
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def sort_key(self):
        value = self.to_python()
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            # Numbers order before strings, among themselves by value.
            return (self._order_rank, 0, float(value), self.lexical)
        return (self._order_rank, 1, str(value), self.lexical)

    def __str__(self):
        return self.lexical

    def __repr__(self):
        return f"Literal({self.lexical!r}, datatype={self.datatype!r}, language={self.language!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self):
        return hash((Literal, self.lexical, self.datatype, self.language))


class Variable(Term):
    """A SPARQL query variable (``?name``)."""

    __slots__ = ("name",)
    _order_rank = 4

    def __init__(self, name):
        if not isinstance(name, str) or not name:
            raise TermError(f"Variable requires a non-empty name, got {name!r}")
        name = name.lstrip("?$")
        if not name:
            raise TermError("Variable name must contain characters besides '?'/'$'")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, _value):
        raise AttributeError(f"Variable is immutable (tried to set {name})")

    def n3(self):
        return f"?{self.name}"

    def is_ground(self):
        return False

    def __str__(self):
        return f"?{self.name}"

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __eq__(self, other):
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self):
        return hash((Variable, self.name))


def term_sort_key(term):
    """Module-level helper: deterministic sort key for any term (or None)."""
    if term is None:
        return (-1, "")
    return term.sort_key()
