"""The Triple value object shared by graphs, stores, and query patterns."""

from __future__ import annotations

from .errors import TermError
from .terms import BNode, Literal, Term, URIRef, Variable


def _check_position(position, value, allowed):
    if not isinstance(value, Term) or not isinstance(value, allowed):
        names = "/".join(cls.__name__ for cls in allowed)
        raise TermError(
            f"triple {position} must be one of {names}, got {type(value).__name__}: {value!r}"
        )


class Triple:
    """An RDF triple ``(subject, predicate, object)``.

    A triple is *ground* when none of its components is a :class:`Variable`;
    ground triples are what graphs and stores hold, while non-ground triples
    serve as the triple patterns of SPARQL basic graph patterns.
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject, predicate, object):
        _check_position("subject", subject, (URIRef, BNode, Variable))
        _check_position("predicate", predicate, (URIRef, Variable))
        _check_position("object", object, (URIRef, BNode, Literal, Variable))
        assign = super().__setattr__
        assign("subject", subject)
        assign("predicate", predicate)
        assign("object", object)

    def __setattr__(self, name, _value):
        raise AttributeError(f"Triple is immutable (tried to set {name})")

    def __reduce__(self):
        # The raising __setattr__ defeats default slot-state unpickling;
        # the components were validated at construction, so re-running the
        # constructor is safe and cheap (scatter workers unpickle patterns).
        return (Triple, self.as_tuple())

    def is_ground(self):
        """True when the triple contains no variables."""
        return (
            self.subject.is_ground()
            and self.predicate.is_ground()
            and self.object.is_ground()
        )

    def variables(self):
        """Return the set of variables appearing in this triple."""
        return {
            component
            for component in (self.subject, self.predicate, self.object)
            if isinstance(component, Variable)
        }

    def as_tuple(self):
        return (self.subject, self.predicate, self.object)

    def n3(self):
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self):
        return iter(self.as_tuple())

    def __getitem__(self, index):
        return self.as_tuple()[index]

    def __len__(self):
        return 3

    def __eq__(self, other):
        return isinstance(other, Triple) and other.as_tuple() == self.as_tuple()

    def __hash__(self):
        return hash((Triple, self.subject, self.predicate, self.object))

    def __repr__(self):
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"
