"""Namespaces and the fixed vocabulary used by the SP2Bench data model.

The paper (Section IV, Figure 3a) reuses FOAF, SWRC, DC, and DCTERMS
vocabulary and introduces a benchmark-specific ``bench:`` namespace for the
DBLP document classes plus a ``person:`` namespace for the fixed Paul Erdoes
URI.  This module mirrors the namespace prefixes used in the published
queries so that query text from the paper parses unchanged.
"""

from __future__ import annotations

from .terms import URIRef


class Namespace:
    """A URI prefix from which terms can be derived by attribute access.

    >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    >>> FOAF.name
    URIRef('http://xmlns.com/foaf/0.1/name')
    """

    def __init__(self, base):
        self._base = base

    @property
    def base(self):
        return self._base

    def term(self, name):
        """Return the URIRef for ``name`` inside this namespace."""
        return URIRef(self._base + name)

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name):
        return self.term(name)

    def __contains__(self, uri):
        value = uri.value if isinstance(uri, URIRef) else str(uri)
        return value.startswith(self._base)

    def __repr__(self):
        return f"Namespace({self._base!r})"

    def __eq__(self, other):
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self):
        return hash((Namespace, self._base))


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/elements/1.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")
SWRC = Namespace("http://swrc.ontoware.org/ontology#")
BENCH = Namespace("http://localhost/vocabulary/bench/")
PERSON = Namespace("http://localhost/persons/")

#: Default prefix -> namespace table used by the SPARQL parser and the
#: benchmark queries; matches the prologue of the published SP2Bench queries.
DEFAULT_PREFIXES = {
    "rdf": RDF,
    "rdfs": RDFS,
    "xsd": XSD,
    "foaf": FOAF,
    "dc": DC,
    "dcterms": DCTERMS,
    "swrc": SWRC,
    "bench": BENCH,
    "person": PERSON,
}


def expand_qname(qname, prefixes=None):
    """Expand a prefixed name like ``dc:title`` into a :class:`URIRef`.

    Raises ``KeyError`` if the prefix is unknown.
    """
    table = prefixes if prefixes is not None else DEFAULT_PREFIXES
    prefix, _, local = qname.partition(":")
    namespace = table[prefix]
    if isinstance(namespace, Namespace):
        return namespace.term(local)
    return URIRef(str(namespace) + local)


def qname_for(uri, prefixes=None):
    """Compact a URIRef back into ``prefix:local`` form when possible.

    Returns the N3 form (``<...>``) if no registered namespace matches.
    """
    table = prefixes if prefixes is not None else DEFAULT_PREFIXES
    value = uri.value if isinstance(uri, URIRef) else str(uri)
    best = None
    for prefix, namespace in table.items():
        base = namespace.base if isinstance(namespace, Namespace) else str(namespace)
        if value.startswith(base) and (best is None or len(base) > len(best[1])):
            best = (prefix, base)
    if best is None:
        return f"<{value}>"
    prefix, base = best
    return f"{prefix}:{value[len(base):]}"
