"""A simple in-memory RDF graph with pattern matching.

:class:`Graph` is the user-facing container returned by the data generator
and accepted by engine loaders.  It stores ground triples in insertion order
(deduplicated) and answers ``(s, p, o)`` pattern queries where any component
may be ``None`` ("wildcard").  Storage backends with real index structures
live in :mod:`repro.store`; Graph deliberately stays minimal so that the
difference between an unindexed and an indexed engine remains visible in the
benchmark results, as in the paper's in-memory vs. native engine comparison.
"""

from __future__ import annotations

from .errors import TermError
from .terms import BNode, Literal, URIRef
from .triple import Triple


class Graph:
    """A mutable set of ground RDF triples."""

    def __init__(self, triples=None):
        self._triples = []
        self._index = set()
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # -- mutation ---------------------------------------------------------

    def add(self, triple, predicate=None, object=None):
        """Add a triple; accepts either a :class:`Triple` or three terms.

        Returns True if the triple was new, False if it was already present.
        """
        triple = self._coerce(triple, predicate, object)
        if not triple.is_ground():
            raise TermError(f"cannot add a non-ground triple to a graph: {triple!r}")
        if triple in self._index:
            return False
        self._index.add(triple)
        self._triples.append(triple)
        return True

    def discard(self, triple, predicate=None, object=None):
        """Remove a triple if present.  Returns True if it was removed."""
        triple = self._coerce(triple, predicate, object)
        if triple not in self._index:
            return False
        self._index.discard(triple)
        self._triples.remove(triple)
        return True

    def update(self, triples):
        """Add every triple from an iterable."""
        for triple in triples:
            self.add(triple)

    @staticmethod
    def _coerce(triple, predicate, object):
        if isinstance(triple, Triple) and predicate is None and object is None:
            return triple
        return Triple(triple, predicate, object)

    # -- queries ----------------------------------------------------------

    def triples(self, subject=None, predicate=None, object=None):
        """Yield all triples matching the wildcard pattern.

        Each of ``subject``/``predicate``/``object`` is either a ground term
        (must match exactly) or ``None`` (matches anything).  This is a linear
        scan by design — see module docstring.
        """
        for triple in self._triples:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if object is not None and triple.object != object:
                continue
            yield triple

    def subjects(self, predicate=None, object=None):
        """Yield distinct subjects of triples matching the pattern."""
        seen = set()
        for triple in self.triples(None, predicate, object):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject=None, predicate=None):
        """Yield distinct objects of triples matching the pattern."""
        seen = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def predicates(self, subject=None, object=None):
        """Yield distinct predicates of triples matching the pattern."""
        seen = set()
        for triple in self.triples(subject, None, object):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def value(self, subject=None, predicate=None, object=None):
        """Return one matching missing component, or None.

        Exactly one of the three arguments must be ``None``; the value of
        that position in the first matching triple is returned.
        """
        wildcards = [name for name, term in
                     (("subject", subject), ("predicate", predicate), ("object", object))
                     if term is None]
        if len(wildcards) != 1:
            raise ValueError("Graph.value requires exactly one wildcard position")
        for triple in self.triples(subject, predicate, object):
            return getattr(triple, wildcards[0])
        return None

    def __contains__(self, triple):
        return triple in self._index

    def __iter__(self):
        return iter(self._triples)

    def __len__(self):
        return len(self._triples)

    def __bool__(self):
        return bool(self._triples)

    def __eq__(self, other):
        return isinstance(other, Graph) and other._index == self._index

    def __ne__(self, other):
        return not self.__eq__(other)

    # -- set operations ---------------------------------------------------

    def union(self, other):
        """Return a new graph holding the triples of both graphs."""
        result = Graph(self._triples)
        result.update(other)
        return result

    def intersection(self, other):
        """Return a new graph holding the triples present in both graphs."""
        other_index = other._index if isinstance(other, Graph) else set(other)
        return Graph(t for t in self._triples if t in other_index)

    def difference(self, other):
        """Return a new graph holding triples of self absent from other."""
        other_index = other._index if isinstance(other, Graph) else set(other)
        return Graph(t for t in self._triples if t not in other_index)

    # -- statistics helpers ------------------------------------------------

    def subject_count(self):
        """Number of distinct subjects in the graph."""
        return len({t.subject for t in self._triples})

    def predicate_histogram(self):
        """Mapping predicate -> number of triples using that predicate."""
        histogram = {}
        for triple in self._triples:
            histogram[triple.predicate] = histogram.get(triple.predicate, 0) + 1
        return histogram

    def node_kinds(self):
        """Counts of URI / blank-node / literal occurrences across positions."""
        counts = {"uri": 0, "bnode": 0, "literal": 0}
        for triple in self._triples:
            for term in triple:
                if isinstance(term, URIRef):
                    counts["uri"] += 1
                elif isinstance(term, BNode):
                    counts["bnode"] += 1
                elif isinstance(term, Literal):
                    counts["literal"] += 1
        return counts

    def __repr__(self):
        return f"Graph(len={len(self)})"
