"""Error hierarchy for the RDF substrate."""


class RDFError(Exception):
    """Base class for all RDF-layer errors."""


class TermError(RDFError):
    """Raised when an RDF term is constructed from invalid material."""


class ParseError(RDFError):
    """Raised when an RDF serialization cannot be parsed.

    Carries the line number of the offending input when known.
    """

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
