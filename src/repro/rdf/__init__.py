"""RDF data model substrate: terms, triples, graphs, namespaces, N-Triples."""

from .errors import ParseError, RDFError, TermError
from .graph import Graph
from .namespace import (
    BENCH,
    DC,
    DCTERMS,
    DEFAULT_PREFIXES,
    FOAF,
    PERSON,
    RDF,
    RDFS,
    SWRC,
    XSD,
    Namespace,
    expand_qname,
    qname_for,
)
from .ntriples import parse, parse_file, parse_graph, serialize, write_file
from .terms import (
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    BNode,
    Literal,
    Term,
    URIRef,
    Variable,
    term_sort_key,
)
from .triple import Triple

__all__ = [
    "RDFError",
    "TermError",
    "ParseError",
    "Term",
    "URIRef",
    "BNode",
    "Literal",
    "Variable",
    "Triple",
    "Graph",
    "Namespace",
    "expand_qname",
    "qname_for",
    "term_sort_key",
    "parse",
    "parse_file",
    "parse_graph",
    "serialize",
    "write_file",
    "RDF",
    "RDFS",
    "XSD",
    "FOAF",
    "DC",
    "DCTERMS",
    "SWRC",
    "BENCH",
    "PERSON",
    "DEFAULT_PREFIXES",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
]
