"""Citation assignment (Sections III-A and III-D of the paper).

Outgoing citations: only a small fraction of documents cite at all (Table I,
``cite`` row); those that do draw their citation count from the Gaussian
``d_cite`` (mu=16.82, sigma=10.07).

Incoming citations: the paper observes a power-law distribution (most papers
are never cited, a few are cited very often) and notes that DBLP's citation
system is incomplete — many cite entries are untargeted.  Both effects are
reproduced: targets are drawn by preferential attachment over previously
generated publications (rich-get-richer yields the power law), and a fixed
fraction of citation slots stays untargeted.
"""

from __future__ import annotations

from . import distributions

#: Fraction of outgoing citation slots that remain untargeted (empty cite
#: tags in DBLP).  The paper reports that incoming citations are notably
#: fewer than outgoing ones; one half is a faithful middle ground.
UNTARGETED_FRACTION = 0.5


class CitationManager:
    """Tracks citable documents and assigns citation targets."""

    def __init__(self, rng, untargeted_fraction=UNTARGETED_FRACTION):
        self._rng = rng
        self._untargeted_fraction = untargeted_fraction
        self._documents = []
        self._weights = []

    def register(self, document):
        """Make a publication available as a future citation target."""
        if not document.is_publication():
            return
        self._documents.append(document)
        self._weights.append(1.0)

    def outgoing_count(self):
        """Draw the number of outgoing citations for a citing document."""
        return distributions.CITATION_COUNT.sample_count(self._rng, minimum=1)

    def assign(self, document, count=None):
        """Assign ``count`` outgoing citations to ``document``.

        Returns the citation list actually stored on the document: a mix of
        target documents (earlier publications) and ``None`` entries for
        untargeted citations.  A document never cites itself and never cites
        the same target twice.
        """
        if count is None:
            count = self.outgoing_count()
        citations = []
        chosen = set()
        for _ in range(count):
            if not self._documents or self._rng.random() < self._untargeted_fraction:
                citations.append(None)
                continue
            target = self._pick_target(exclude=chosen, citing=document)
            if target is None:
                citations.append(None)
                continue
            chosen.add(id(target))
            target.incoming_citations += 1
            self._bump_weight(target)
            citations.append(target)
        document.citations = citations
        return citations

    # -- internals ------------------------------------------------------------

    def _pick_target(self, exclude, citing, attempts=8):
        for _ in range(attempts):
            index = self._rng.choices(range(len(self._documents)), weights=self._weights, k=1)[0]
            candidate = self._documents[index]
            if candidate is citing or id(candidate) in exclude:
                continue
            return candidate
        return None

    def _bump_weight(self, target):
        # Preferential attachment: previously cited documents become more
        # likely targets, producing the incoming-citation power law.
        for index in range(len(self._documents) - 1, -1, -1):
            if self._documents[index] is target:
                self._weights[index] += 1.0
                return

    # -- statistics -------------------------------------------------------------

    def incoming_histogram(self):
        """Mapping incoming-citation count -> number of documents."""
        histogram = {}
        for document in self._documents:
            histogram[document.incoming_citations] = (
                histogram.get(document.incoming_citations, 0) + 1
            )
        return histogram

    def __len__(self):
        return len(self._documents)
