"""The attribute/document-class probability matrix (Tables I and IX).

Each entry gives the probability that a document of a given class carries the
given attribute.  The generator samples attribute presence independently per
attribute (the simplifying independence assumption the paper makes explicit
in Sections III-A and VII), and the analysis module measures the same matrix
back from generated data to verify the reproduction.
"""

from __future__ import annotations

#: Canonical document class names, in DTD order.
DOCUMENT_CLASSES = (
    "article",
    "inproceedings",
    "proceedings",
    "book",
    "incollection",
    "phdthesis",
    "mastersthesis",
    "www",
)

#: Attribute -> (per-class probability), classes in DOCUMENT_CLASSES order.
#: Values transcribed from Table IX of the paper.
_MATRIX = {
    "address":   (0.0000, 0.0000, 0.0004, 0.0000, 0.0000, 0.0000, 0.0000, 0.0000),
    "author":    (0.9895, 0.9970, 0.0001, 0.8937, 0.8459, 1.0000, 1.0000, 0.9973),
    "booktitle": (0.0006, 1.0000, 0.9579, 0.0183, 1.0000, 0.0000, 0.0000, 0.0001),
    "cdrom":     (0.0112, 0.0162, 0.0000, 0.0032, 0.0138, 0.0000, 0.0000, 0.0000),
    "chapter":   (0.0000, 0.0000, 0.0000, 0.0000, 0.0005, 0.0000, 0.0000, 0.0000),
    "cite":      (0.0048, 0.0104, 0.0001, 0.0079, 0.0047, 0.0000, 0.0000, 0.0000),
    "crossref":  (0.0006, 0.8003, 0.0016, 0.0000, 0.6951, 0.0000, 0.0000, 0.0000),
    "editor":    (0.0000, 0.0000, 0.7992, 0.1040, 0.0000, 0.0000, 0.0000, 0.0004),
    "ee":        (0.6781, 0.6519, 0.0019, 0.0079, 0.3610, 0.1444, 0.0000, 0.0000),
    "isbn":      (0.0000, 0.0000, 0.8592, 0.9294, 0.0073, 0.0222, 0.0000, 0.0000),
    "journal":   (0.9994, 0.0000, 0.0004, 0.0000, 0.0000, 0.0000, 0.0000, 0.0000),
    "month":     (0.0065, 0.0000, 0.0001, 0.0008, 0.0000, 0.0333, 0.0000, 0.0000),
    "note":      (0.0297, 0.0000, 0.0002, 0.0000, 0.0000, 0.0000, 0.0000, 0.0273),
    "number":    (0.9224, 0.0001, 0.0009, 0.0000, 0.0000, 0.0333, 0.0000, 0.0000),
    "pages":     (0.9261, 0.9489, 0.0000, 0.0000, 0.6849, 0.0000, 0.0000, 0.0000),
    "publisher": (0.0006, 0.0000, 0.9737, 0.9992, 0.0237, 0.0444, 0.0000, 0.0000),
    "school":    (0.0000, 0.0000, 0.0000, 0.0000, 0.0000, 1.0000, 1.0000, 0.0000),
    "series":    (0.0000, 0.0000, 0.5791, 0.5365, 0.0000, 0.0222, 0.0000, 0.0000),
    "title":     (1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000),
    "url":       (0.9986, 1.0000, 0.9860, 0.2373, 0.9992, 0.0222, 0.3750, 0.9624),
    "volume":    (0.9982, 0.0000, 0.5670, 0.5024, 0.0000, 0.0111, 0.0000, 0.0000),
    "year":      (1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 0.0011),
}

#: Attribute names in a deterministic iteration order.
ATTRIBUTES = tuple(sorted(_MATRIX))

_CLASS_INDEX = {name: index for index, name in enumerate(DOCUMENT_CLASSES)}


def attribute_probability(attribute, document_class):
    """Probability that ``document_class`` documents carry ``attribute``."""
    try:
        row = _MATRIX[attribute]
    except KeyError:
        raise KeyError(f"unknown attribute {attribute!r}") from None
    try:
        return row[_CLASS_INDEX[document_class]]
    except KeyError:
        raise KeyError(f"unknown document class {document_class!r}") from None


def class_probabilities(document_class):
    """Mapping attribute -> probability for one document class."""
    index = _CLASS_INDEX[document_class]
    return {attribute: row[index] for attribute, row in _MATRIX.items()}


def probability_table(attributes=None, classes=None):
    """A nested dict view of (a subset of) the matrix, for reports and tests."""
    selected_attributes = attributes or ATTRIBUTES
    selected_classes = classes or DOCUMENT_CLASSES
    return {
        attribute: {
            document_class: attribute_probability(attribute, document_class)
            for document_class in selected_classes
        }
        for attribute in selected_attributes
    }


def sample_attributes(document_class, rng, forced=(), excluded=()):
    """Sample the attribute set for a new document of ``document_class``.

    Each attribute is included independently with its Table IX probability.
    ``forced`` attributes are always included and ``excluded`` never — the
    generator uses this for structurally required fields (``title``/``year``)
    and for fields it realizes through dedicated machinery (authors, editors,
    citations) rather than plain sampling.
    """
    selected = set(forced)
    index = _CLASS_INDEX[document_class]
    for attribute in ATTRIBUTES:
        if attribute in excluded or attribute in selected:
            continue
        probability = _MATRIX[attribute][index]
        if probability <= 0.0:
            continue
        if probability >= 1.0 or rng.random() < probability:
            selected.add(attribute)
    return selected
