"""Generator configuration.

The original generator exposes two stop criteria — a triple-count limit or a
final simulation year (Section IV, "Data Generation") — plus a fixed random
seed that makes the output deterministic and platform independent.  This
configuration object captures those knobs and a few reproduction-specific
toggles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional as Opt


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters controlling one generator run.

    Exactly one of ``triple_limit`` and ``end_year`` is normally set; when
    both are given, generation stops at whichever limit is hit first.  When
    neither is set a default triple limit guards against unbounded output.
    """

    #: Stop once at least this many triples have been produced.
    triple_limit: Opt[int] = None
    #: Simulate through this year (inclusive).
    end_year: Opt[int] = None
    #: Seed of the deterministic pseudo-random stream.
    seed: int = 823645187
    #: First simulated year; DBLP contains noise before the mid 1930s.
    start_year: int = 1936
    #: Hard ceiling on the simulated year span (safety net).
    max_year: int = 2100
    #: Fraction of articles/inproceedings that receive a bench:abstract
    #: (the paper enriches "about 1%" of them with large literals).
    abstract_fraction: float = 0.01
    #: Paul Erdoes activity range and per-year workload (Section IV).
    erdoes_first_year: int = 1940
    erdoes_last_year: int = 1996
    erdoes_publications_per_year: int = 10
    erdoes_editor_activities_per_year: int = 2
    #: Default triple limit applied when neither stop criterion is given.
    default_triple_limit: int = 10_000

    def __post_init__(self):
        if self.triple_limit is not None and self.triple_limit <= 0:
            raise ValueError("triple_limit must be positive")
        if self.end_year is not None and self.end_year < self.start_year:
            raise ValueError("end_year must not precede start_year")
        if not 0.0 <= self.abstract_fraction <= 1.0:
            raise ValueError("abstract_fraction must be within [0, 1]")

    def effective_triple_limit(self):
        """The triple limit actually applied during generation."""
        if self.triple_limit is not None:
            return self.triple_limit
        if self.end_year is not None:
            return None
        return self.default_triple_limit

    def last_simulated_year(self):
        """The final year bound used by the simulation loop."""
        if self.end_year is not None:
            return min(self.end_year, self.max_year)
        return self.max_year
