"""Deterministic text material: person names, title words, publishers.

The original generator ships word lists for first names, last names,
publishers, and random words; this module provides equivalent deterministic
material.  Base lists are extended combinatorially (syllable composition) so
the pool is large enough that name collisions stay rare even for documents
with hundreds of thousands of authors, while remaining fully reproducible.
"""

from __future__ import annotations

_FIRST_NAMES = (
    "Adam", "Alice", "Anna", "Antonio", "Bernd", "Bianca", "Boris", "Carla",
    "Carlos", "Chen", "Claire", "Daniel", "Diana", "Dmitri", "Elena", "Emil",
    "Erik", "Fatima", "Felix", "Frida", "George", "Gita", "Hans", "Helena",
    "Igor", "Ines", "Ivan", "Jana", "John", "Julia", "Karl", "Keiko", "Lars",
    "Laura", "Liam", "Lin", "Maria", "Marta", "Miguel", "Nadia", "Niels",
    "Nina", "Omar", "Oskar", "Paula", "Pedro", "Petra", "Rajesh", "Rita",
    "Robert", "Rosa", "Samir", "Sara", "Stefan", "Tanja", "Thomas", "Uma",
    "Victor", "Wei", "Yusuf", "Zara",
)

_LAST_NAMES = (
    "Abel", "Adams", "Baker", "Becker", "Bell", "Berg", "Blake", "Braun",
    "Brown", "Carter", "Chen", "Clark", "Costa", "Diaz", "Dietrich", "Evans",
    "Fischer", "Fox", "Franke", "Garcia", "Gray", "Gruber", "Hansen", "Hart",
    "Hoffmann", "Huber", "Ivanov", "Jansen", "Jones", "Kaur", "Keller",
    "Kim", "Klein", "Koch", "Kumar", "Lang", "Larsen", "Lee", "Lehmann",
    "Lopez", "Maier", "Martin", "Meyer", "Miller", "Moreau", "Mueller",
    "Nakamura", "Nguyen", "Novak", "Olsen", "Patel", "Peters", "Popov",
    "Richter", "Rossi", "Santos", "Sato", "Schmidt", "Schneider", "Schulz",
    "Silva", "Singh", "Smith", "Sorensen", "Suzuki", "Tanaka", "Torres",
    "Vogel", "Wagner", "Walker", "Wang", "Weber", "White", "Wolf", "Wright",
    "Yamamoto", "Yilmaz", "Young", "Zhang", "Zimmermann",
)

_TITLE_WORDS = (
    "adaptive", "algebraic", "analysis", "approach", "architectures",
    "automated", "benchmarking", "caching", "classification", "clustering",
    "compilation", "complexity", "compression", "concurrent", "consistency",
    "constraints", "cost", "data", "databases", "declarative", "dependency",
    "design", "distributed", "dynamic", "efficient", "embedded", "engines",
    "estimation", "evaluation", "experimental", "expressive", "federated",
    "formal", "framework", "graphs", "heterogeneous", "hierarchical",
    "incremental", "indexing", "inference", "integration", "interactive",
    "join", "knowledge", "language", "large", "learning", "logic",
    "management", "mapping", "metadata", "methods", "mining", "model",
    "networks", "normalization", "ontologies", "optimization", "parallel",
    "patterns", "performance", "persistent", "planning", "probabilistic",
    "processing", "provenance", "queries", "ranking", "reasoning",
    "recursive", "relational", "reliability", "replication", "retrieval",
    "rewriting", "scalable", "schema", "search", "selectivity", "semantic",
    "semistructured", "storage", "streams", "structures", "systems",
    "techniques", "temporal", "transactions", "transformation", "tuning",
    "views", "visualization", "web", "workloads",
)

_PUBLISHERS = (
    "ACM Press", "Addison-Wesley", "Cambridge University Press", "CEUR-WS",
    "Elsevier", "IEEE Computer Society", "IOS Press", "MIT Press",
    "Morgan Kaufmann", "North-Holland", "Oxford University Press",
    "Prentice Hall", "Springer", "Wiley", "World Scientific",
)

_SYLLABLES = ("ba", "da", "ka", "la", "ma", "na", "ra", "sa", "ta", "va",
              "bel", "dor", "gan", "lin", "mir", "nov", "ril", "son", "tan", "vich")


def first_name(index):
    """Deterministic first name for a person index."""
    base = _FIRST_NAMES[index % len(_FIRST_NAMES)]
    generation = index // len(_FIRST_NAMES)
    if generation == 0:
        return base
    return base + _SYLLABLES[generation % len(_SYLLABLES)].capitalize()

def last_name(index):
    """Deterministic last name for a person index."""
    base = _LAST_NAMES[index % len(_LAST_NAMES)]
    generation = index // len(_LAST_NAMES)
    if generation == 0:
        return base
    suffix_index = generation - 1
    suffix = _SYLLABLES[suffix_index % len(_SYLLABLES)]
    extra = suffix_index // len(_SYLLABLES)
    if extra:
        suffix += _SYLLABLES[extra % len(_SYLLABLES)]
    return base + suffix


def person_name(index):
    """Deterministic full person name for a person index.

    First and last name indices are decorrelated so that consecutive persons
    do not share surnames, and the combination is unique per index.
    """
    return f"{first_name(index * 7 + index // 13)} {last_name(index)}"


def publisher(rng):
    """Pick a publisher name."""
    return rng.choice(_PUBLISHERS)


def title(rng, minimum_words=3, maximum_words=9):
    """Generate a paper title from the title word pool."""
    count = rng.randint(minimum_words, maximum_words)
    words = [rng.choice(_TITLE_WORDS) for _ in range(count)]
    words[0] = words[0].capitalize()
    return " ".join(words)


def abstract(rng, mean_words=150, stddev_words=30):
    """Generate an abstract (Section IV: Gaussian with mu=150, sigma=30 words)."""
    count = max(20, int(round(rng.gauss(mean_words, stddev_words))))
    words = [rng.choice(_TITLE_WORDS) for _ in range(count)]
    return " ".join(words)


def word(rng):
    """One random word from the pool (used e.g. for series/notes)."""
    return rng.choice(_TITLE_WORDS)


def pool_sizes():
    """Sizes of the base word pools (used by sanity tests)."""
    return {
        "first_names": len(_FIRST_NAMES),
        "last_names": len(_LAST_NAMES),
        "title_words": len(_TITLE_WORDS),
        "publishers": len(_PUBLISHERS),
    }
