"""The function families the paper fits to DBLP (Section III).

Three families are used:

* **Gaussian (bell-shaped) curves** model the number of repeated attribute
  occurrences per document (citations, editors, authors per paper),
* **logistic curves** model limited growth over time (documents per year,
  distinct/new author fractions, the drift of the author-count Gaussian),
* **power laws** model the publication-count and incoming-citation
  distributions.

All the constants fitted in the paper are collected here under the names used
in the text (``dcite``, ``dauth``, ``fjournal``, ``fawp`` …) so that
generator code and analysis code reference a single source of truth.

Two of the printed formulas (``fincoll`` and ``fbook``) are missing the
``1 +`` term in the logistic denominator, which would make them diverge; the
standard logistic form is used here and noted in DESIGN.md/EXPERIMENTS.md.
"""

from __future__ import annotations

import math


class Gaussian:
    """A bell-shaped curve ``p(x) = 1/(sigma*sqrt(2*pi)) * exp(-0.5((x-mu)/sigma)^2)``."""

    def __init__(self, mu, sigma):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def probability(self, x):
        """Probability density at ``x``."""
        z = (x - self.mu) / self.sigma
        return math.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2.0 * math.pi))

    def sample_count(self, rng, minimum=1, maximum=None):
        """Draw an integer count ``>= minimum`` following this curve.

        The paper truncates the curves at ``x >= 1`` (a document with a
        repeated attribute has at least one occurrence); sampling draws a
        normal variate and clamps it into ``[minimum, maximum]``.
        """
        upper = maximum if maximum is not None else max(int(self.mu + 6 * self.sigma), minimum)
        value = int(round(rng.gauss(self.mu, self.sigma)))
        return max(minimum, min(value, upper))

    def __repr__(self):
        return f"Gaussian(mu={self.mu}, sigma={self.sigma})"


class Logistic:
    """A logistic (limited-growth) curve ``f(x) = a / (1 + b*exp(-c*(x - x0)))``."""

    def __init__(self, a, b, c, x0=0.0):
        self.a = float(a)
        self.b = float(b)
        self.c = float(c)
        self.x0 = float(x0)

    def value(self, x):
        return self.a / (1.0 + self.b * math.exp(-self.c * (x - self.x0)))

    def __call__(self, x):
        return self.value(x)

    def __repr__(self):
        return f"Logistic(a={self.a}, b={self.b}, c={self.c}, x0={self.x0})"


class PowerLaw:
    """A power-law curve ``f(x) = a * x**k + b`` with ``k < 0``."""

    def __init__(self, a, k, b=0.0):
        self.a = float(a)
        self.k = float(k)
        self.b = float(b)

    def value(self, x):
        if x <= 0:
            raise ValueError("power law defined for x > 0 only")
        return self.a * (x ** self.k) + self.b

    def __call__(self, x):
        return self.value(x)

    def __repr__(self):
        return f"PowerLaw(a={self.a}, k={self.k}, b={self.b})"


# ---------------------------------------------------------------------------
# Repeated-attribute distributions (Section III-A)
# ---------------------------------------------------------------------------

#: Number of outgoing citations for documents that cite at all: d_cite.
CITATION_COUNT = Gaussian(16.82, 10.07)

#: Number of editors for documents that have editors: d_editor.
EDITOR_COUNT = Gaussian(2.15, 1.18)

#: Drift of the authors-per-paper Gaussian over time: mu_auth / sigma_auth.
_AUTHOR_MU = Logistic(2.05, 17.59, 0.11, x0=1975)
_AUTHOR_SIGMA = Logistic(1.00, 6.46, 0.10, x0=1975)


def author_count_distribution(year):
    """The Gaussian ``d_auth(x, yr)`` for the number of authors per paper."""
    mu = _AUTHOR_MU.value(year) + 1.05
    sigma = _AUTHOR_SIGMA.value(year) + 0.50
    return Gaussian(mu, sigma)


def expected_authors_per_paper(year):
    """Mean of the authors-per-paper distribution in ``year``."""
    return _AUTHOR_MU.value(year) + 1.05


# ---------------------------------------------------------------------------
# Document-class growth curves (Section III-B)
# ---------------------------------------------------------------------------

JOURNAL_GROWTH = Logistic(740.43, 426.28, 0.12, x0=1950)
ARTICLE_GROWTH = Logistic(58519.12, 876.80, 0.12, x0=1950)
PROCEEDINGS_GROWTH = Logistic(5502.31, 1250.26, 0.14, x0=1965)
INPROCEEDINGS_GROWTH = Logistic(337132.34, 1901.05, 0.15, x0=1965)
INCOLLECTION_GROWTH = Logistic(3577.31, 196.49, 0.09, x0=1980)
BOOK_GROWTH = Logistic(52.97, 40739.38, 0.32, x0=1950)

#: Upper bounds for the randomly distributed classes (f_phd, f_masters, f_www).
RANDOM_CLASS_LIMITS = {"phdthesis": 20, "mastersthesis": 10, "www": 10}


# ---------------------------------------------------------------------------
# Author population curves (Section III-C)
# ---------------------------------------------------------------------------

_DISTINCT_AUTHOR_FRACTION = Logistic(-0.67, 169.41, 0.07, x0=1936)
_NEW_AUTHOR_FRACTION = Logistic(-0.29, 1749.00, 0.14, x0=1937)
_PUBLICATION_EXPONENT = Logistic(-0.60, 216223.0, 0.20, x0=1936)


def distinct_author_fraction(year):
    """Fraction of distinct persons among all author attributes: f_dauth / f_auth."""
    return _DISTINCT_AUTHOR_FRACTION.value(year) + 0.84


def new_author_fraction(year):
    """Fraction of first-time authors among distinct authors: f_new / f_dauth."""
    return _NEW_AUTHOR_FRACTION.value(year) + 0.628


def publication_count_exponent(year):
    """Exponent ``f'awp(yr)`` of the authors-with-x-publications power law."""
    return _PUBLICATION_EXPONENT.value(year) + 3.08


def authors_with_publications(x, year, total_publications):
    """``f_awp(x, yr)``: number of authors with exactly ``x`` publications."""
    exponent = publication_count_exponent(year)
    return 1.50 * total_publications * (x ** (-exponent)) - 5.0


# ---------------------------------------------------------------------------
# Coauthor relations (Section III-C)
# ---------------------------------------------------------------------------

def expected_total_coauthors(publications):
    """Average number of (non-distinct) coauthors of an author with x publications."""
    return 2.12 * publications


def expected_distinct_coauthors(publications):
    """Average number of distinct coauthors of an author with x publications."""
    return publications ** 0.81
