"""Author population management (Section III-C of the paper).

The simulation keeps a growing pool of persons.  Every simulated year it

* estimates the number of *author slots* (total author attributes) from the
  per-class document counts, attribute probabilities, and the
  authors-per-paper Gaussian,
* derives the number of *distinct* authors and of *new* authors from the
  paper's logistic fractions (``f_dauth``, ``f_new``),
* builds a year pool of that many persons (new persons plus returning ones,
  where returning persons are drawn with probability proportional to their
  past productivity — preferential attachment, which yields the power-law
  publication-count distribution of Figure 2c), and
* answers per-document author/editor selection requests from that pool.

Paul Erdoes is a special fixed person (URI instead of blank node) with a
prescribed workload of 10 publications and 2 editor activities per year
between 1940 and 1996 — the entry point for Q8 and Q10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import distributions, names


@dataclass
class Person:
    """A person appearing as author and/or editor."""

    index: int
    name: str
    is_erdoes: bool = False
    first_year: int = 0
    publication_count: int = 0
    editor_count: int = 0
    coauthor_names: set = field(default_factory=set)

    @property
    def node_label(self):
        """Blank-node label, mirroring the paper's ``_:givenname_lastname`` scheme."""
        return self.name.replace(" ", "_")

    def __hash__(self):
        return hash((Person, self.index))

    def __eq__(self, other):
        return isinstance(other, Person) and other.index == self.index


ERDOES_NAME = "Paul Erdoes"


class AuthorPool:
    """The evolving population of authors across simulated years."""

    def __init__(self, config, rng):
        self._config = config
        self._rng = rng
        self.persons = []
        self.erdoes = Person(index=-1, name=ERDOES_NAME, is_erdoes=True,
                             first_year=config.erdoes_first_year)
        self._year = None
        self._year_pool = []
        self._year_weights = []
        #: Yearly statistics: year -> dict with author-slot/distinct/new counts.
        self.yearly = {}

    # -- year planning -------------------------------------------------------

    def begin_year(self, year, documents_with_authors):
        """Plan the author population for ``year``.

        ``documents_with_authors`` is the number of documents that will carry
        at least one author attribute; the expected number of author slots is
        that count times the mean of the authors-per-paper distribution.
        """
        self._year = year
        expected_slots = documents_with_authors * distributions.expected_authors_per_paper(year)
        distinct = max(1, int(round(expected_slots * distributions.distinct_author_fraction(year))))
        new = max(1, int(round(distinct * distributions.new_author_fraction(year))))
        new = min(new, distinct)
        returning = distinct - new

        pool = []
        if returning and self.persons:
            pool.extend(self._select_returning(returning))
        for _ in range(new):
            pool.append(self._create_person(year))
        if not pool:
            pool.append(self._create_person(year))
        self._year_pool = pool
        self._year_weights = [1.0 + person.publication_count for person in pool]
        # Planned distinct authors should actually publish: documents draw
        # from this queue first, so the year's distinct-author count tracks
        # f_dauth instead of collapsing onto a few hubs.  Once the queue is
        # exhausted, further author slots fall back to productivity-weighted
        # selection, which produces the cross-year power law of Figure 2c.
        self._year_unused = list(pool)
        self._rng.shuffle(self._year_unused)
        self.yearly[year] = {
            "author_slots": 0,
            "distinct_planned": distinct,
            "new_planned": new,
            "distinct_used": set(),
        }
        return pool

    def _select_returning(self, count):
        """Draw returning authors weighted by past productivity."""
        population = self.persons
        weights = [1.0 + person.publication_count for person in population]
        count = min(count, len(population))
        # Insertion-ordered dict, not a set: Person hashes by identity, so a
        # set would return the selection in memory-address order and make the
        # generated document depend on the process — the paper requires the
        # output to be a pure function of the configuration.
        chosen = {}
        guard = 0
        while len(chosen) < count and guard < count * 20:
            person = self._rng.choices(population, weights=weights, k=1)[0]
            chosen[person] = None
            guard += 1
        # Top up deterministically if rejection sampling under-filled.
        if len(chosen) < count:
            for person in population:
                chosen[person] = None
                if len(chosen) >= count:
                    break
        return list(chosen)

    def _create_person(self, year):
        person = Person(index=len(self.persons), name=names.person_name(len(self.persons)),
                        first_year=year)
        self.persons.append(person)
        return person

    # -- per-document selection --------------------------------------------------

    def author_count_for(self, year):
        """Draw the number of authors for one document (d_auth)."""
        return distributions.author_count_distribution(year).sample_count(self._rng, minimum=1)

    def select_authors(self, count, include_erdoes=False):
        """Select ``count`` distinct persons as authors of one document.

        First-time slots of the year are served from the planned year pool
        (every planned distinct author publishes); additional slots are drawn
        with probability proportional to past productivity.
        """
        selected = []
        if include_erdoes:
            selected.append(self.erdoes)
        while len(selected) < count and self._year_unused:
            person = self._year_unused.pop()
            if person not in selected:
                selected.append(person)
        available = self._year_pool
        weights = self._year_weights
        guard = 0
        while len(selected) < count and guard < count * 30:
            person = self._rng.choices(available, weights=weights, k=1)[0]
            if person not in selected:
                selected.append(person)
            guard += 1
        if len(selected) < count:
            for person in available:
                if person not in selected:
                    selected.append(person)
                if len(selected) >= count:
                    break
        self._record_publication(selected)
        return selected

    def select_editors(self, count, include_erdoes=False):
        """Select ``count`` distinct persons as editors of one document.

        Editors are drawn from the whole population (persons "known in the
        community", Section III-C), preferring productive authors.
        """
        selected = []
        if include_erdoes:
            selected.append(self.erdoes)
        population = self.persons or self._year_pool
        if population:
            weights = [1.0 + person.publication_count for person in population]
            guard = 0
            while len(selected) < count and guard < count * 30:
                person = self._rng.choices(population, weights=weights, k=1)[0]
                if person not in selected:
                    selected.append(person)
                guard += 1
        for person in selected:
            person.editor_count += 1
        return selected

    def _record_publication(self, persons):
        year_stats = self.yearly.get(self._year)
        names_in_document = {person.name for person in persons}
        for person in persons:
            person.publication_count += 1
            person.coauthor_names.update(names_in_document - {person.name})
            if year_stats is not None:
                year_stats["author_slots"] += 1
                if not person.is_erdoes:
                    year_stats["distinct_used"].add(person.index)

    # -- statistics ---------------------------------------------------------------

    def total_author_slots(self):
        """Total number of author attributes assigned so far."""
        return sum(stats["author_slots"] for stats in self.yearly.values())

    def distinct_author_count(self):
        """Number of distinct persons that authored at least one document."""
        count = sum(1 for person in self.persons if person.publication_count > 0)
        if self.erdoes.publication_count > 0:
            count += 1
        return count

    def publication_histogram(self):
        """Mapping publication count -> number of authors with that count."""
        histogram = {}
        for person in self.persons:
            if person.publication_count > 0:
                histogram[person.publication_count] = (
                    histogram.get(person.publication_count, 0) + 1
                )
        return histogram
