"""The SP2Bench data generator: year-by-year simulation (Figure 4).

For every simulated year the generator

1. evaluates the growth curves to determine how many instances of each
   document class the year contains,
2. creates the year's journals and proceedings first (so that articles and
   inproceedings always have an existing venue to attach to — the
   "permanently keeping output consistent" requirement),
3. plans the author population for the year (total / distinct / new authors),
4. creates each document: samples its attribute set from the Table IX
   probabilities, assigns authors, editors, and outgoing citations, and
5. emits the document's triples, stopping once the configured triple limit
   is reached (or the configured end year has been simulated).

Everything is driven by a single seeded ``random.Random`` instance, so a
configuration uniquely identifies the output — the determinism property the
paper requires for cross-platform comparability.
"""

from __future__ import annotations

import random

from ..rdf.graph import Graph
from ..rdf.ntriples import serialize_triple
from . import attributes as attribute_tables
from . import distributions, names, rdfwriter
from .authors import AuthorPool
from .citations import CitationManager
from .config import GeneratorConfig
from .documents import Document, Journal, class_counts_for_year

#: Attributes realized through dedicated machinery rather than scalar sampling.
_STRUCTURAL_ATTRIBUTES = ("author", "editor", "cite", "crossref", "journal",
                          "title", "year", "booktitle")

#: Document classes whose instances may cite and be cited.
_CITING_CLASSES = ("article", "inproceedings", "book", "incollection")


class GeneratorStatistics:
    """Counters collected during generation (feeds Table VIII / Figure 2)."""

    def __init__(self):
        self.triples_written = 0
        self.documents_written = 0
        self.last_year = None
        self.class_totals = {}
        self.class_by_year = {}
        self.journals_by_year = {}

    def record_document(self, document):
        self.documents_written += 1
        self.class_totals[document.document_class] = (
            self.class_totals.get(document.document_class, 0) + 1
        )
        per_year = self.class_by_year.setdefault(document.year, {})
        per_year[document.document_class] = per_year.get(document.document_class, 0) + 1

    def record_journal(self, journal):
        self.class_totals["journal"] = self.class_totals.get("journal", 0) + 1
        self.journals_by_year[journal.year] = self.journals_by_year.get(journal.year, 0) + 1

    def as_dict(self):
        """A plain-dict summary used by reports and Table VIII benches."""
        return {
            "triples": self.triples_written,
            "documents": self.documents_written,
            "data_up_to_year": self.last_year,
            "class_totals": dict(self.class_totals),
        }


class DblpGenerator:
    """Generates DBLP-like RDF data according to a :class:`GeneratorConfig`."""

    def __init__(self, config=None):
        self.config = config or GeneratorConfig()
        self.statistics = GeneratorStatistics()
        self._rng = random.Random(self.config.seed)
        self._author_pool = AuthorPool(self.config, self._rng)
        self._citations = CitationManager(self._rng)
        self._emitted_persons = set()
        self._document_serial = 0
        self._scalar_fillers = _ScalarAttributeFillers(self._rng)

    # -- public API ------------------------------------------------------------

    def triples(self):
        """Yield the generated triples in document order (streaming)."""
        limit = self.config.effective_triple_limit()
        produced = 0

        def emit(triple_iterable):
            nonlocal produced
            for triple in triple_iterable:
                produced += 1
                self.statistics.triples_written = produced
                yield triple

        yield from emit(rdfwriter.schema_triples())
        yield from emit(self._author_pool_seed_triples())

        year = self.config.start_year
        last_year = self.config.last_simulated_year()
        while year <= last_year:
            if limit is not None and produced >= limit:
                break
            for triple_block in self._simulate_year(year):
                yield from emit(triple_block)
                if limit is not None and produced >= limit:
                    break
            self.statistics.last_year = year
            year += 1

    def graph(self):
        """Materialize the generated document as a :class:`Graph`."""
        return Graph(self.triples())

    def generate_into(self, store):
        """Stream the generated document straight into a triple store.

        Feeds :meth:`triples` to the store's bulk loader, so nothing is
        materialized between the simulation and the store — the build half of
        the generate-once/snapshot-everywhere dataset pipeline.  Returns the
        number of triples added (duplicates collapse in the store).
        """
        return store.bulk_load(self.triples())

    def write(self, path):
        """Stream the generated document to an N-Triples file; returns count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for triple in self.triples():
                handle.write(serialize_triple(triple))
                handle.write("\n")
                count += 1
        return count

    # -- simulation -------------------------------------------------------------

    def _author_pool_seed_triples(self):
        """Emit the fixed Paul Erdoes person up front (stable entry point)."""
        self._emitted_persons.add(self._author_pool.erdoes.index)
        return rdfwriter.person_triples(self._author_pool.erdoes)

    def _simulate_year(self, year):
        """Yield per-document triple blocks for one simulated year."""
        counts = class_counts_for_year(year, self._rng)

        journals = [Journal(number=i + 1, year=year) for i in range(counts.get("journal", 0))]
        for journal in journals:
            self.statistics.record_journal(journal)
            yield rdfwriter.journal_triples(journal)

        documents_with_authors = self._estimate_author_documents(counts)
        self._author_pool.begin_year(year, documents_with_authors)

        erdoes_quota = self._erdoes_quota(year)

        proceedings = []
        for index in range(counts.get("proceedings", 0)):
            document = self._build_proceedings(year, index + 1, erdoes_quota)
            proceedings.append(document)
            self.statistics.record_document(document)
            yield rdfwriter.document_triples(document, self._emitted_persons)

        ordered_classes = ("article", "inproceedings", "incollection", "book",
                          "phdthesis", "mastersthesis", "www")
        for document_class in ordered_classes:
            for index in range(counts.get(document_class, 0)):
                document = self._build_publication(
                    document_class, year, index + 1, journals, proceedings, erdoes_quota
                )
                self._citations.register(document)
                self.statistics.record_document(document)
                yield rdfwriter.document_triples(document, self._emitted_persons)

    def _erdoes_quota(self, year):
        """Remaining Erdoes author/editor assignments for this year."""
        config = self.config
        if config.erdoes_first_year <= year <= config.erdoes_last_year:
            return {
                "author": config.erdoes_publications_per_year,
                "editor": config.erdoes_editor_activities_per_year,
            }
        return {"author": 0, "editor": 0}

    def _estimate_author_documents(self, counts):
        """Expected number of documents carrying at least one author attribute."""
        expected = 0.0
        for document_class, count in counts.items():
            if document_class == "journal":
                continue
            expected += count * attribute_tables.attribute_probability("author", document_class)
        return int(round(expected))

    # -- document construction -----------------------------------------------------

    def _next_key(self, document_class, year):
        self._document_serial += 1
        return f"{document_class}/{year}/{self._document_serial}"

    def _build_proceedings(self, year, index, erdoes_quota):
        document = Document(
            key=self._next_key("proceedings", year),
            document_class="proceedings",
            year=year,
            title=f"Conference {index} ({year})",
        )
        sampled = attribute_tables.sample_attributes(
            "proceedings", self._rng, excluded=_STRUCTURAL_ATTRIBUTES
        )
        self._fill_scalar_attributes(document, sampled)
        document.values["booktitle"] = document.title
        # Editors follow the Table IX probability; Paul Erdoes' fixed quota of
        # editor activities forces the attribute onto the proceedings he edits.
        include_erdoes = erdoes_quota["editor"] > 0
        editor_probability = attribute_tables.attribute_probability("editor", "proceedings")
        has_editors = include_erdoes or self._rng.random() < editor_probability
        if has_editors:
            if include_erdoes:
                erdoes_quota["editor"] -= 1
            editor_count = distributions.EDITOR_COUNT.sample_count(self._rng, minimum=1)
            document.editors = self._author_pool.select_editors(
                editor_count, include_erdoes=include_erdoes
            )
        return document

    def _build_publication(self, document_class, year, index, journals, proceedings,
                           erdoes_quota):
        document = Document(
            key=self._next_key(document_class, year),
            document_class=document_class,
            year=year,
            title=names.title(self._rng),
        )
        sampled = attribute_tables.sample_attributes(
            document_class, self._rng, excluded=_STRUCTURAL_ATTRIBUTES
        )
        self._fill_scalar_attributes(document, sampled)

        # Venue links: articles attach to a journal, inproceedings to a
        # proceedings of the same year (crossref / journal attributes).
        if document_class == "article" and journals:
            document.journal = self._rng.choice(journals)
        elif document_class == "inproceedings" and proceedings:
            document.part_of = self._rng.choice(proceedings)
            document.values["booktitle"] = document.part_of.title

        # Authors.
        author_probability = attribute_tables.attribute_probability("author", document_class)
        if self._rng.random() < author_probability:
            include_erdoes = (
                erdoes_quota["author"] > 0
                and document_class in ("article", "inproceedings")
            )
            if include_erdoes:
                erdoes_quota["author"] -= 1
            count = self._author_pool.author_count_for(year)
            document.authors = self._author_pool.select_authors(
                count, include_erdoes=include_erdoes
            )

        # Editors (books occasionally have them).
        editor_probability = attribute_tables.attribute_probability("editor", document_class)
        if editor_probability > 0 and self._rng.random() < editor_probability:
            count = distributions.EDITOR_COUNT.sample_count(self._rng, minimum=1)
            document.editors = self._author_pool.select_editors(count)

        # Outgoing citations.
        cite_probability = attribute_tables.attribute_probability("cite", document_class)
        if document_class in _CITING_CLASSES and self._rng.random() < cite_probability:
            self._citations.assign(document)

        # Abstracts: ~1% of articles and inproceedings.
        if (document_class in ("article", "inproceedings")
                and self._rng.random() < self.config.abstract_fraction):
            document.abstract = names.abstract(self._rng)
        return document

    def _fill_scalar_attributes(self, document, sampled):
        for attribute in sorted(sampled):
            if attribute in _STRUCTURAL_ATTRIBUTES:
                continue
            value = self._scalar_fillers.value_for(attribute, document)
            if value is not None:
                document.values[attribute] = value


class _ScalarAttributeFillers:
    """Produces concrete values for scalar DTD attributes."""

    def __init__(self, rng):
        self._rng = rng

    def value_for(self, attribute, document):
        handler = getattr(self, f"_{attribute}", None)
        if handler is None:
            return None
        return handler(document)

    def _address(self, _document):
        return f"{self._rng.randint(1, 400)} {names.word(self._rng).capitalize()} Street"

    def _cdrom(self, document):
        return f"cdrom/{document.year}/{self._rng.randint(1, 999)}"

    def _chapter(self, _document):
        return self._rng.randint(1, 30)

    def _ee(self, document):
        return f"http://dblp.example.org/ee/{document.key}"

    def _isbn(self, _document):
        return "-".join(str(self._rng.randint(0, 9999)).zfill(4) for _ in range(3))

    def _month(self, _document):
        return self._rng.randint(1, 12)

    def _note(self, _document):
        return names.title(self._rng, 2, 5)

    def _number(self, _document):
        return self._rng.randint(1, 60)

    def _pages(self, _document):
        start = self._rng.randint(1, 900)
        return f"{start}--{start + self._rng.randint(1, 40)}"

    def _publisher(self, _document):
        return names.publisher(self._rng)

    def _school(self, _document):
        return f"University of {names.last_name(self._rng.randint(0, 500))}"

    def _series(self, _document):
        return self._rng.randint(1, 5000)

    def _url(self, document):
        return f"http://dblp.example.org/db/{document.key}.html"

    def _volume(self, _document):
        return self._rng.randint(1, 120)


def generate_graph(triple_limit=None, end_year=None, seed=None, config=None):
    """Convenience helper: build a generator and return the generated graph."""
    if config is None:
        overrides = {}
        if triple_limit is not None:
            overrides["triple_limit"] = triple_limit
        if end_year is not None:
            overrides["end_year"] = end_year
        if seed is not None:
            overrides["seed"] = seed
        config = GeneratorConfig(**overrides)
    return DblpGenerator(config).graph()
