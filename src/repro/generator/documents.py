"""Document model and per-year document-class counts.

``Document`` instances are the intermediate representation between the
simulation (which decides what exists and how entities relate) and the RDF
writer (which turns them into triples).  ``class_counts_for_year`` evaluates
the paper's logistic growth curves (Figure 2b) to decide how many instances
of each document class a simulated year contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional as Opt

from . import distributions

#: Growth curve per deterministic document class.
_GROWTH_CURVES = {
    "article": distributions.ARTICLE_GROWTH,
    "inproceedings": distributions.INPROCEEDINGS_GROWTH,
    "proceedings": distributions.PROCEEDINGS_GROWTH,
    "incollection": distributions.INCOLLECTION_GROWTH,
    "book": distributions.BOOK_GROWTH,
}


@dataclass
class Journal:
    """A journal venue (implicit document class, Section III-B)."""

    number: int
    year: int

    @property
    def key(self):
        return f"journals/Journal{self.number}/{self.year}"

    @property
    def title(self):
        return f"Journal {self.number} ({self.year})"


@dataclass
class Document:
    """One DBLP document (publication or proceedings)."""

    key: str
    document_class: str
    year: int
    title: str
    #: Plain attribute values keyed by DTD attribute name (pages, isbn, ...).
    values: dict = field(default_factory=dict)
    #: Person objects credited as authors / editors.
    authors: list = field(default_factory=list)
    editors: list = field(default_factory=list)
    #: Outgoing citations: Document targets; None entries are untargeted
    #: citations (DBLP's empty cite tags, Section III-D).
    citations: list = field(default_factory=list)
    #: Link targets (crossref -> proceedings, journal -> Journal).
    part_of: Opt["Document"] = None
    journal: Opt[Journal] = None
    #: Large literal attached to ~1% of articles/inproceedings.
    abstract: Opt[str] = None
    #: Number of incoming citations assigned so far (power-law bookkeeping).
    incoming_citations: int = 0

    def is_publication(self):
        """Paper terminology: every document that is not a proceedings."""
        return self.document_class != "proceedings"


def class_counts_for_year(year, rng):
    """Expected number of new documents per class in ``year`` (Figure 2b).

    Deterministic classes follow their logistic curves; PhD/Master's theses
    and WWW documents are uniformly random within the paper's bounds.  DBLP
    contains no instances of several classes in the early years, which the
    curves produce naturally (values round to zero).
    """
    counts = {}
    for document_class, curve in _GROWTH_CURVES.items():
        counts[document_class] = max(int(round(curve.value(year))), 0)
    for document_class, upper in distributions.RANDOM_CLASS_LIMITS.items():
        # The random classes only appear once DBLP has picked up steam
        # (cf. Table VIII: no theses/WWW documents in small/early documents).
        if year >= 1980:
            counts[document_class] = rng.randint(0, upper)
        else:
            counts[document_class] = 0
    counts["journal"] = max(int(round(distributions.JOURNAL_GROWTH.value(year))), 0)
    # Structural guarantees relied upon by the benchmark queries: the fixed
    # entry point "Journal 1 (1940)" (Q1) exists, and years with articles
    # have at least one journal to attach them to.
    if year == 1940:
        counts["journal"] = max(counts["journal"], 1)
    if counts["article"] > 0:
        counts["journal"] = max(counts["journal"], 1)
    if counts["inproceedings"] > 0:
        counts["proceedings"] = max(counts["proceedings"], 1)
    return counts


def expected_documents(year, rng):
    """Total expected number of documents in ``year`` (f_docs)."""
    counts = class_counts_for_year(year, rng)
    return sum(count for name, count in counts.items() if name != "journal")
