"""The SP2Bench DBLP-like data generator."""

from .attributes import (
    ATTRIBUTES,
    DOCUMENT_CLASSES,
    attribute_probability,
    class_probabilities,
    probability_table,
    sample_attributes,
)
from .authors import AuthorPool, Person, ERDOES_NAME
from .citations import CitationManager
from .config import GeneratorConfig
from .documents import Document, Journal, class_counts_for_year
from .generator import DblpGenerator, GeneratorStatistics, generate_graph
from . import distributions, names, rdfwriter

__all__ = [
    "GeneratorConfig",
    "DblpGenerator",
    "GeneratorStatistics",
    "generate_graph",
    "Document",
    "Journal",
    "class_counts_for_year",
    "AuthorPool",
    "Person",
    "ERDOES_NAME",
    "CitationManager",
    "ATTRIBUTES",
    "DOCUMENT_CLASSES",
    "attribute_probability",
    "class_probabilities",
    "probability_table",
    "sample_attributes",
    "distributions",
    "names",
    "rdfwriter",
]
