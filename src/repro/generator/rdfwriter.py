"""Translation of generated entities into RDF triples (Figure 3 of the paper).

The mapping follows the paper's DBLP RDF scheme:

* document classes map to ``bench:`` classes beneath ``foaf:Document``
  (the ``rdfs:subClassOf`` schema layer is emitted once per document set,
  because Q6/Q7 navigate it),
* attributes map to the properties of Figure 3(a) with XSD-typed literals,
* persons are blank nodes ``_:Givenname_Lastname`` with ``foaf:name`` —
  except Paul Erdoes, who has a fixed URI (``person:Paul_Erdoes``),
* outgoing citations are modelled as an ``rdf:Bag`` blank node referenced
  through ``dcterms:references`` with ``rdf:_1 ... rdf:_n`` members,
* roughly 1% of articles/inproceedings carry a large ``bench:abstract``
  literal.
"""

from __future__ import annotations

from ..rdf.namespace import BENCH, DC, DCTERMS, FOAF, PERSON, RDF, RDFS, SWRC, XSD
from ..rdf.terms import BNode, Literal, URIRef
from ..rdf.triple import Triple

#: Base namespace for generated document URIs.
PUBLICATION_BASE = "http://localhost/publications/"

#: Document class name -> bench: class URI.
CLASS_URIS = {
    "article": BENCH.Article,
    "inproceedings": BENCH.Inproceedings,
    "proceedings": BENCH.Proceedings,
    "book": BENCH.Book,
    "incollection": BENCH.Incollection,
    "phdthesis": BENCH.PhDThesis,
    "mastersthesis": BENCH.MastersThesis,
    "www": BENCH.WWW,
}

#: Class URIs that also exist as schema-layer subclasses of foaf:Document.
SCHEMA_CLASSES = tuple(CLASS_URIS.values()) + (BENCH.Journal,)

_STRING = XSD.string.value
_INTEGER = XSD.integer.value


def string_literal(value):
    """An ``xsd:string``-typed literal (the form used by the published queries)."""
    return Literal(str(value), datatype=_STRING)


def integer_literal(value):
    """An ``xsd:integer``-typed literal."""
    return Literal(str(int(value)), datatype=_INTEGER)


def document_uri(document):
    """The URI minted for a generated document."""
    return URIRef(PUBLICATION_BASE + document.key)


def journal_uri(journal):
    """The URI minted for a journal venue."""
    return URIRef(PUBLICATION_BASE + journal.key)


def person_node(person):
    """The RDF node for a person: blank node, or the fixed Erdoes URI."""
    if person.is_erdoes:
        return PERSON.Paul_Erdoes
    return BNode(person.node_label)


def schema_triples():
    """The schema layer: every bench class is a subclass of foaf:Document."""
    for class_uri in SCHEMA_CLASSES:
        yield Triple(class_uri, RDFS.subClassOf, FOAF.Document)


def person_triples(person):
    """Type and name triples for a person (emitted once per person)."""
    node = person_node(person)
    yield Triple(node, RDF.type, FOAF.Person)
    yield Triple(node, FOAF.name, string_literal(person.name))


def journal_triples(journal):
    """Type, title, and year triples for a journal venue."""
    uri = journal_uri(journal)
    yield Triple(uri, RDF.type, BENCH.Journal)
    yield Triple(uri, DC.title, string_literal(journal.title))
    yield Triple(uri, DCTERMS.issued, integer_literal(journal.year))


#: Scalar attribute -> (property URI, literal factory).  Structural
#: attributes (author, editor, cite, crossref, journal) are handled
#: explicitly in :func:`document_triples`.
_SCALAR_PROPERTIES = {
    "address": (SWRC.address, string_literal),
    "booktitle": (BENCH.booktitle, string_literal),
    "cdrom": (BENCH.cdrom, string_literal),
    "chapter": (SWRC.chapter, integer_literal),
    "ee": (RDFS.seeAlso, string_literal),
    "isbn": (SWRC.isbn, string_literal),
    "month": (SWRC.month, integer_literal),
    "note": (BENCH.note, string_literal),
    "number": (SWRC.number, integer_literal),
    "pages": (SWRC.pages, string_literal),
    "publisher": (DC.publisher, string_literal),
    "school": (DC.publisher, string_literal),
    "series": (SWRC.series, integer_literal),
    "url": (FOAF.homepage, string_literal),
    "volume": (SWRC.volume, integer_literal),
}


def document_triples(document, emitted_persons=None):
    """All triples describing one document.

    ``emitted_persons`` is an optional set of person indices whose type/name
    triples were already written; persons not in the set have their triples
    emitted here and are added to it.  Passing None emits person triples
    unconditionally.
    """
    uri = document_uri(document)
    yield Triple(uri, RDF.type, CLASS_URIS[document.document_class])
    yield Triple(uri, DC.title, string_literal(document.title))
    yield Triple(uri, DCTERMS.issued, integer_literal(document.year))

    for attribute, value in sorted(document.values.items()):
        mapping = _SCALAR_PROPERTIES.get(attribute)
        if mapping is None:
            continue
        property_uri, literal_factory = mapping
        yield Triple(uri, property_uri, literal_factory(value))

    for person in document.authors:
        yield from _person_reference(person, emitted_persons)
        yield Triple(uri, DC.creator, person_node(person))
    for person in document.editors:
        yield from _person_reference(person, emitted_persons)
        yield Triple(uri, SWRC.editor, person_node(person))

    if document.journal is not None:
        yield Triple(uri, SWRC.journal, journal_uri(document.journal))
    if document.part_of is not None:
        yield Triple(uri, DCTERMS.partOf, document_uri(document.part_of))

    targeted = [target for target in document.citations if target is not None]
    if targeted:
        bag = BNode(f"references_{document.key.replace('/', '_')}")
        yield Triple(uri, DCTERMS.references, bag)
        yield Triple(bag, RDF.type, RDF.Bag)
        for position, target in enumerate(targeted, start=1):
            yield Triple(bag, RDF.term(f"_{position}"), document_uri(target))

    if document.abstract is not None:
        yield Triple(uri, BENCH.abstract, string_literal(document.abstract))


def _person_reference(person, emitted_persons):
    if emitted_persons is None:
        yield from person_triples(person)
        return
    key = person.index
    if key in emitted_persons:
        return
    emitted_persons.add(key)
    yield from person_triples(person)


def count_document_triples(document):
    """Number of triples :func:`document_triples` would emit for the document
    itself (excluding person type/name triples, which depend on emission state)."""
    return sum(1 for _ in document_triples(document, emitted_persons=set(
        person.index for person in document.authors + document.editors)))
