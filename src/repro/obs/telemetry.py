"""The server-side telemetry bundle: metric handles + loggers + policy.

One :class:`ServerTelemetry` instance is attached to a
:class:`~repro.server.http.SparqlServer` and used by every worker thread.
It owns the request-level metric families (request counter/histogram,
stage-timing histogram, queue wait, in-flight gauge, slow-query counter),
the JSON access logger, and the slow-query threshold, and turns one
finished request — its :class:`~repro.obs.tracing.QueryTrace` plus outcome
fields — into metric observations and log records in a single call.

Constructing a telemetry bundle registers its families on the registry but
records nothing while the registry is disabled, so the default server
configuration (no ``--metrics``) pays only the disabled-registry branch.
"""

from __future__ import annotations

import sys

from . import get_registry
from .logs import JsonLinesLogger, access_record, slow_query_record

__all__ = ["ServerTelemetry"]


class ServerTelemetry:
    """Metric handles and logging policy shared by all server workers."""

    def __init__(self, registry=None, access_logger=None, slow_logger=None,
                 slow_query_seconds=None, metrics_endpoint=False):
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        #: Whether the server exposes ``GET /metrics``.
        self.metrics_endpoint = metrics_endpoint
        self.access_logger = access_logger
        self.slow_query_seconds = slow_query_seconds
        if slow_logger is None and slow_query_seconds is not None:
            # Slow-query records ride the access log when one is configured,
            # else they go to stderr — a threshold silently logging nowhere
            # would be worse than noisy.
            slow_logger = access_logger or JsonLinesLogger(sys.stderr)
        self.slow_logger = slow_logger

        self.requests_total = registry.counter(
            "sp2b_http_requests_total",
            "HTTP requests served, by endpoint and response status.",
            labels=("endpoint", "status"),
        )
        self.request_seconds = registry.histogram(
            "sp2b_http_request_seconds",
            "Server-side request latency (queue wait included), by endpoint.",
            labels=("endpoint",),
        )
        self.stage_seconds = registry.histogram(
            "sp2b_query_stage_seconds",
            "Per-request stage wall time "
            "(queue/parse/plan/execute/serialize).",
            labels=("stage",),
        )
        self.queue_wait_seconds = registry.histogram(
            "sp2b_server_queue_wait_seconds",
            "Time a request waited in the worker-pool queue before a "
            "worker picked it up.",
        )
        self.inflight = registry.gauge(
            "sp2b_server_inflight_requests",
            "Requests currently being handled by worker threads.",
        )
        self.result_rows_total = registry.counter(
            "sp2b_http_result_rows_total",
            "SELECT result rows serialized into successful responses.",
        )
        self.slow_queries_total = registry.counter(
            "sp2b_slow_queries_total",
            "Queries whose total time exceeded the slow-query threshold.",
        )

    def observe_request(self, trace, *, endpoint, method, status,
                        query_text=None, format=None, form=None, rows=None,
                        budget_seconds=None, budget_consumed_seconds=None,
                        cache_hit=None, plan_renderer=None, extra=None):
        """Record one finished request: metrics + access log + slow log.

        ``plan_renderer`` is a zero-argument callable producing the rendered
        EXPLAIN text; it is only invoked when the request actually crosses
        the slow-query threshold, so the fast path never renders a plan.
        """
        total = trace.total()
        self.requests_total.labels(endpoint=endpoint,
                                   status=str(status)).inc()
        self.request_seconds.labels(endpoint=endpoint).observe(total)
        for stage, seconds in trace.stages.items():
            self.stage_seconds.labels(stage=stage).observe(seconds)
        queue_wait = trace.stages.get("queue")
        if queue_wait is not None:
            self.queue_wait_seconds.observe(queue_wait)
        if rows:
            self.result_rows_total.inc(rows)
        if self.access_logger is not None:
            self.access_logger.log(access_record(
                endpoint=endpoint, method=method, status=status, trace=trace,
                query_text=query_text, format=format, form=form, rows=rows,
                budget_seconds=budget_seconds,
                budget_consumed_seconds=budget_consumed_seconds,
                cache_hit=cache_hit, extra=extra,
            ))
        if (self.slow_query_seconds is not None
                and query_text is not None
                and total >= self.slow_query_seconds):
            self.slow_queries_total.inc()
            plan = None
            if plan_renderer is not None:
                try:
                    plan = plan_renderer()
                except Exception:  # noqa: BLE001 - diagnostics must not fail
                    plan = None
            if self.slow_logger is not None:
                self.slow_logger.log(slow_query_record(
                    threshold_seconds=self.slow_query_seconds, trace=trace,
                    query_text=query_text, plan=plan, status=status,
                    rows=rows,
                ))

    def close(self):
        """Close owned log streams (the serve CLI calls this on shutdown)."""
        if self.access_logger is not None:
            self.access_logger.close()
        if (self.slow_logger is not None
                and self.slow_logger is not self.access_logger):
            self.slow_logger.close()
