"""Structured JSON-lines logging: access records and slow-query records.

One :class:`JsonLinesLogger` writes one compact JSON object per line to any
text stream (a file opened by ``repro serve --access-log``, stderr, or a
``StringIO`` in tests), serialized under a lock so concurrent worker
threads never interleave partial lines.  Record *construction* lives here
too so the field names are defined in exactly one place — the handler and
the tests both import the builders.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
import time

__all__ = [
    "JsonLinesLogger",
    "access_record",
    "open_log_stream",
    "query_hash",
    "slow_query_record",
]


def query_hash(text):
    """A short stable identifier for a query text (sha256, 16 hex chars).

    Access logs carry the hash rather than the text: lines stay one-line
    grep-able and bounded in size; the slow-query record (rare by
    construction) carries the full text alongside the same hash so the two
    logs join on it.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class JsonLinesLogger:
    """Thread-safe one-JSON-object-per-line writer over a text stream."""

    def __init__(self, stream, close_on_exit=False):
        self._stream = stream
        self._close_on_exit = close_on_exit
        self._lock = threading.Lock()

    def log(self, record):
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self):
        if self._close_on_exit:
            with self._lock:
                self._stream.close()


def open_log_stream(path):
    """A :class:`JsonLinesLogger` for ``path`` (``-`` means stderr)."""
    if path == "-":
        return JsonLinesLogger(sys.stderr)
    return JsonLinesLogger(
        open(path, "a", encoding="utf-8"), close_on_exit=True
    )


def access_record(*, endpoint, method, status, trace, query_text=None,
                  format=None, form=None, rows=None, budget_seconds=None,
                  budget_consumed_seconds=None, cache_hit=None, extra=None):
    """One access-log line: everything needed to diagnose one request.

    Timestamps are wall-clock epoch seconds (logs are correlated across
    machines); stage timings come from the request's
    :class:`~repro.obs.tracing.QueryTrace` in milliseconds.
    """
    record = {
        "ts": round(time.time(), 3),
        "type": "access",
        "endpoint": endpoint,
        "method": method,
        "status": status,
        "total_ms": round(trace.total() * 1e3, 3),
        "stages_ms": trace.stages_ms(),
    }
    if query_text is not None:
        record["query_hash"] = query_hash(query_text)
    if form is not None:
        record["form"] = form
    if format is not None:
        record["format"] = format
    if rows is not None:
        record["rows"] = rows
    if cache_hit is not None:
        record["cache_hit"] = cache_hit
    if budget_seconds is not None:
        record["budget_s"] = budget_seconds
        if budget_consumed_seconds is not None:
            record["budget_consumed_s"] = round(budget_consumed_seconds, 4)
    if extra:
        record.update(extra)
    return record


def slow_query_record(*, threshold_seconds, trace, query_text, plan=None,
                      status=None, rows=None):
    """A slow-query line: full text + rendered plan + stage breakdown."""
    record = {
        "ts": round(time.time(), 3),
        "type": "slow_query",
        "threshold_ms": round(threshold_seconds * 1e3, 3),
        "total_ms": round(trace.total() * 1e3, 3),
        "stages_ms": trace.stages_ms(),
        "query_hash": query_hash(query_text),
        "query": query_text,
    }
    if status is not None:
        record["status"] = status
    if rows is not None:
        record["rows"] = rows
    if plan is not None:
        record["plan"] = plan
    return record
