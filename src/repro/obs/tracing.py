"""Per-query trace spans: named wall-time stages of one request.

A :class:`QueryTrace` accumulates ``stage name -> seconds`` in insertion
order via the :meth:`~QueryTrace.span` context manager (or :meth:`add` for
externally measured durations such as worker-pool queue wait).  It is the
unit that flows from the HTTP handler through
``SparqlEngine.prepare_cached`` so parse/plan time lands in the same record
as execute/serialize time; the access-log and slow-query records serialize
its stages verbatim.

:data:`NULL_TRACE` is the always-no-op instance call sites use as a default
argument — ``prepare(text, trace=NULL_TRACE)`` keeps the untraced path free
of conditionals and timer reads.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["NULL_TRACE", "QueryTrace"]


class QueryTrace:
    """Ordered named stages of one query's lifecycle, in seconds."""

    __slots__ = ("stages", "_started")

    def __init__(self, queue_wait=None):
        self.stages = {}
        if queue_wait is not None:
            self.stages["queue"] = queue_wait
        self._started = time.perf_counter()

    @contextmanager
    def span(self, name):
        """Time a ``with`` block into stage ``name`` (additive on repeats)."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - started)

    def add(self, name, seconds):
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def elapsed(self):
        """Wall seconds since this trace was created."""
        return time.perf_counter() - self._started

    def total(self):
        """Queue wait (measured before creation) plus wall time since."""
        return self.stages.get("queue", 0.0) + self.elapsed()

    def stages_ms(self):
        """``{stage: milliseconds}`` rounded for JSON log records."""
        return {
            name: round(seconds * 1e3, 3)
            for name, seconds in self.stages.items()
        }

    def __repr__(self):
        inner = " ".join(
            f"{name}={seconds * 1e3:.2f}ms"
            for name, seconds in self.stages.items()
        )
        return f"QueryTrace({inner})"


class _NullTrace(QueryTrace):
    """A trace that records nothing; safe to share across threads."""

    __slots__ = ()

    @contextmanager
    def span(self, name):
        yield self

    def add(self, name, seconds):
        pass


NULL_TRACE = _NullTrace()
