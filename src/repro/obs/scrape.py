"""Scraping and diffing a server's ``/metrics`` from the client side.

``repro loadtest --scrape-metrics`` and the CI smoke gate both need to
read the text exposition back: parse it into ``{(name, labels): value}``,
subtract a before-snapshot from an after-snapshot, and estimate latency
quantiles from scraped histogram buckets.  The parser is deliberately
minimal — it understands exactly the 0.0.4 text format the renderer in
:mod:`.exposition` emits (which is also what any Prometheus server emits
for counters/gauges/histograms).
"""

from __future__ import annotations

import urllib.request
from urllib.parse import urlsplit, urlunsplit

from .registry import estimate_quantile

__all__ = [
    "MetricsSnapshot",
    "format_server_report",
    "histogram_quantile",
    "metrics_url_for",
    "parse_exposition",
    "scrape",
]

#: Path the server exposes the registry on.
METRICS_PATH = "/metrics"


def metrics_url_for(endpoint_url):
    """Derive the ``/metrics`` URL from any URL on the same server."""
    parts = urlsplit(endpoint_url)
    return urlunsplit((parts.scheme, parts.netloc, METRICS_PATH, "", ""))


def parse_exposition(text):
    """Parse exposition text into a :class:`MetricsSnapshot`."""
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line)
        if name is not None:
            samples[(name, labels)] = value
    return MetricsSnapshot(samples)


def _parse_sample(line):
    """One sample line -> (name, sorted label tuple, float value)."""
    try:
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels = tuple(sorted(_parse_labels(label_text)))
        else:
            name, value_text = line.split(None, 1)
            labels = ()
        return name.strip(), labels, float(value_text.strip().split()[0])
    except (ValueError, IndexError):
        return None, None, None


def _parse_labels(text):
    """Label pairs from ``a="x",b="y"`` honoring escaped quotes."""
    pairs = []
    index = 0
    while index < len(text):
        equals = text.find("=", index)
        if equals < 0:
            break
        name = text[index:equals].strip().lstrip(",").strip()
        # Value is a double-quoted string with \" \\ \n escapes.
        start = text.find('"', equals)
        if start < 0:
            break
        value_chars = []
        cursor = start + 1
        while cursor < len(text):
            char = text[cursor]
            if char == "\\" and cursor + 1 < len(text):
                escaped = text[cursor + 1]
                value_chars.append(
                    {"n": "\n", '"': '"', "\\": "\\"}.get(escaped, escaped)
                )
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        pairs.append((name, "".join(value_chars)))
        index = cursor + 1
    return pairs


class MetricsSnapshot:
    """``{(metric name, sorted label items): value}`` at one scrape."""

    def __init__(self, samples):
        self.samples = samples

    def get(self, name, **labels):
        return self.samples.get((name, tuple(sorted(labels.items()))))

    def sum(self, name, **fixed):
        """Sum every series of ``name`` matching the fixed labels."""
        total = None
        fixed_items = set(fixed.items())
        for (sample_name, labels), value in self.samples.items():
            if sample_name == name and fixed_items <= set(labels):
                total = (total or 0.0) + value
        return total

    def by_label(self, name, label, **fixed):
        """``{label value: summed value}`` across series of ``name``."""
        out = {}
        fixed_items = set(fixed.items())
        for (sample_name, labels), value in self.samples.items():
            if sample_name != name or not fixed_items <= set(labels):
                continue
            for key, label_value in labels:
                if key == label:
                    out[label_value] = out.get(label_value, 0.0) + value
        return out

    def delta(self, before, name, **labels):
        """Counter-style difference vs an earlier snapshot (floored at 0)."""
        after_value = self.sum(name, **labels)
        if after_value is None:
            return None
        before_value = before.sum(name, **labels) or 0.0
        return max(after_value - before_value, 0.0)


def scrape(url, timeout=10.0):
    """GET ``url`` and parse the body as exposition text."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return parse_exposition(response.read().decode("utf-8"))


def histogram_quantile(snapshot, name, q, before=None, **fixed):
    """Estimate a quantile from scraped ``<name>_bucket`` series.

    With ``before``, estimates over the *delta* histogram (observations
    between the two scrapes).  Returns seconds, or ``None`` when the
    histogram is absent or empty.
    """
    buckets = snapshot.by_label(f"{name}_bucket", "le", **fixed)
    if not buckets:
        return None
    if before is not None:
        earlier = before.by_label(f"{name}_bucket", "le", **fixed)
        buckets = {
            le: max(value - earlier.get(le, 0.0), 0.0)
            for le, value in buckets.items()
        }
    finite = sorted(
        (float(le), value) for le, value in buckets.items() if le != "+Inf"
    )
    bounds = [le for le, _value in finite]
    cumulative = [value for _le, value in finite]
    total = buckets.get("+Inf", cumulative[-1] if cumulative else 0.0)
    # De-cumulate into per-bucket counts (+Inf overflow last).
    counts, previous = [], 0.0
    for value in cumulative:
        counts.append(max(value - previous, 0.0))
        previous = value
    counts.append(max(total - previous, 0.0))
    return estimate_quantile(bounds, counts, total, q)


def format_server_report(before, after):
    """Human-readable server-side deltas between two scrapes.

    Sections are skipped when their series are absent, so the report works
    against any subset of the instrumented codebase.
    """
    lines = ["server-side /metrics deltas:"]

    requests = after.delta(before, "sp2b_http_requests_total")
    if requests is not None:
        by_status = {}
        for status, count in after.by_label(
                "sp2b_http_requests_total", "status").items():
            earlier = before.by_label(
                "sp2b_http_requests_total", "status").get(status, 0.0)
            changed = count - earlier
            if changed > 0:
                by_status[status] = changed
        detail = ", ".join(f"{status}={int(count)}"
                           for status, count in sorted(by_status.items()))
        lines.append(f"  requests            {int(requests)}"
                     + (f"  ({detail})" if detail else ""))

    quantiles = [
        histogram_quantile(after, "sp2b_http_request_seconds", q,
                           before=before)
        for q in (0.50, 0.95, 0.99)
    ]
    if any(q is not None for q in quantiles):
        p50, p95, p99 = (
            "-" if q is None else f"{q * 1e3:.1f}" for q in quantiles
        )
        lines.append(f"  latency est (ms)    p50={p50} p95={p95} p99={p99}"
                     "  [histogram buckets]")

    stage_counts = after.by_label("sp2b_query_stage_seconds_count", "stage")
    stage_sums = after.by_label("sp2b_query_stage_seconds_sum", "stage")
    if stage_counts:
        means = []
        for stage in ("queue", "parse", "plan", "execute", "serialize"):
            count = (stage_counts.get(stage, 0.0)
                     - before.by_label("sp2b_query_stage_seconds_count",
                                       "stage").get(stage, 0.0))
            total = (stage_sums.get(stage, 0.0)
                     - before.by_label("sp2b_query_stage_seconds_sum",
                                       "stage").get(stage, 0.0))
            if count > 0:
                means.append(f"{stage}={total / count * 1e3:.2f}")
        if means:
            lines.append("  stage mean (ms)     " + " ".join(means))

    counter_rows = (
        ("prepared cache", (("hits", "sp2b_prepared_cache_hits_total"),
                            ("misses", "sp2b_prepared_cache_misses_total"),
                            ("evictions",
                             "sp2b_prepared_cache_evictions_total"))),
        ("mvcc", (("published", "sp2b_mvcc_generations_published_total"),)),
        ("dataset cache", (("hits", "sp2b_dataset_cache_hits_total"),
                           ("misses", "sp2b_dataset_cache_misses_total"))),
        ("slow queries", (("over threshold", "sp2b_slow_queries_total"),)),
    )
    for title, series in counter_rows:
        parts = []
        for label, name in series:
            value = after.delta(before, name)
            if value is not None:
                parts.append(f"{label}=+{int(value)}")
        if parts:
            lines.append(f"  {title:<18}  " + " ".join(parts))

    fallbacks = {}
    for reason, count in after.by_label(
            "sp2b_scatter_fallbacks_total", "reason").items():
        changed = count - before.by_label(
            "sp2b_scatter_fallbacks_total", "reason").get(reason, 0.0)
        if changed > 0:
            fallbacks[reason] = changed
    if fallbacks:
        detail = " ".join(f"{reason}=+{int(count)}"
                          for reason, count in sorted(fallbacks.items()))
        lines.append(f"  scatter fallbacks   {detail}")

    inflight = after.get("sp2b_server_inflight_requests")
    if inflight is not None:
        lines.append(f"  in-flight now       {int(inflight)}")

    return "\n".join(lines)
