"""A thread-safe, dependency-free metrics registry.

Three instrument kinds — monotonic counters, gauges, and fixed-bucket
histograms — organized as *families* (one metric name + HELP text + label
names) of *children* (one concrete label-value combination each).  The
shapes and naming rules follow the Prometheus data model so the registry
can be rendered straight into text exposition format (``exposition.py``)
without an adapter layer.

Design constraints, in order:

* **Correct under concurrency.**  Every child guards its state with its own
  small lock; N threads incrementing the same counter produce the exact
  total.  Family child-creation is memoized under a family lock, so two
  threads racing on the same label set get the same child object.
* **Free when disabled.**  Recording methods check the owning registry's
  ``enabled`` flag first and return immediately — instrument handles can be
  cached at object construction time (engines, servers, pools live long)
  and still respect a registry that is switched on later, e.g. by
  ``repro serve --metrics``.  A disabled registry costs one attribute load
  and one branch per call site.
* **Cheap when enabled.**  Recording is a lock acquire plus an add (and a
  bisect for histograms); there is no string formatting or allocation on
  the hot path.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]

#: Valid Prometheus metric names (exposition format 0.0.4).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Valid Prometheus label names (``__``-prefixed names are reserved).
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default buckets for request/stage latency histograms, in seconds.
#: 1ms..10s covers everything from a cache-hit ASK to a deadline-bounded
#: worst case; the log-ish spacing keeps quantile estimates useful at both
#: ends without per-metric tuning.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Invalid metric/label name, kind clash, or label mismatch."""


class _Child:
    """Shared shell: every child records through its own lock."""

    __slots__ = ("_registry", "_lock")

    def __init__(self, registry):
        self._registry = registry
        self._lock = threading.Lock()


class Counter(_Child):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, registry):
        super().__init__(registry)
        self._value = 0.0

    def inc(self, amount=1.0):
        if not self._registry.enabled:
            return
        if amount < 0:
            raise MetricError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge(_Child):
    """A value that can go up and down (pool occupancy, sizes)."""

    __slots__ = ("_value",)

    def __init__(self, registry):
        super().__init__(registry)
        self._value = 0.0

    def set(self, value):
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount=1.0):
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount=1.0):
        self.inc(-amount)

    @property
    def value(self):
        with self._lock:
            return self._value


class Histogram(_Child):
    """Observations bucketed into fixed upper bounds (plus ``+Inf``)."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, registry, bounds):
        super().__init__(registry)
        self._bounds = bounds
        # One slot per finite bound plus the implicit +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value):
        if not self._registry.enabled:
            return
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def bounds(self):
        return self._bounds

    def snapshot(self):
        """``(per-bucket counts, sum, count)`` — a consistent copy."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q):
        """Estimate the q-quantile (0..1) from the bucket counts.

        Uses the conventional Prometheus ``histogram_quantile`` linear
        interpolation inside the target bucket; observations in the +Inf
        bucket clamp to the largest finite bound.  Returns ``None`` when
        the histogram is empty.
        """
        counts, _sum, total = self.snapshot()
        return estimate_quantile(self._bounds, counts, total, q)


def estimate_quantile(bounds, counts, total, q):
    """Shared quantile estimator (also used on scraped bucket data)."""
    if total <= 0:
        return None
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            if index >= len(bounds):          # +Inf bucket: clamp
                return bounds[-1] if bounds else None
            lower = bounds[index - 1] if index else 0.0
            upper = bounds[index]
            return lower + (upper - lower) * ((rank - seen) / count)
        seen += count
    return bounds[-1] if bounds else None


class MetricFamily:
    """One metric name: HELP text, label names, and memoized children.

    A family declared with no labels acts as its own single child: the
    recording methods (``inc``/``set``/``observe``/...) delegate to the
    unlabelled child, so call sites write ``family.inc()`` directly.
    Labelled families hand out children via :meth:`labels`.
    """

    def __init__(self, registry, kind, name, help, label_names, bounds=None):
        self.registry = registry
        self.kind = kind
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.bounds = bounds
        self._children = {}
        self._lock = threading.Lock()
        if not self.label_names:
            self._children[()] = self._new_child()

    def _new_child(self):
        if self.kind == "counter":
            return Counter(self.registry)
        if self.kind == "gauge":
            return Gauge(self.registry)
        return Histogram(self.registry, self.bounds)

    def labels(self, *values, **named):
        """The child for one label-value combination (created on demand)."""
        if named:
            if values:
                raise MetricError("pass label values either positionally "
                                  "or by name, not both")
            try:
                values = tuple(str(named.pop(name))
                               for name in self.label_names)
            except KeyError as error:
                raise MetricError(
                    f"{self.name}: missing label {error.args[0]!r}"
                ) from None
            if named:
                raise MetricError(
                    f"{self.name}: unknown labels {sorted(named)}"
                )
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.label_names):
            raise MetricError(
                f"{self.name} expects labels {list(self.label_names)}, "
                f"got {len(values)} value(s)"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._children[values] = self._new_child()
        return child

    def _sole_child(self):
        if self.label_names:
            raise MetricError(
                f"{self.name} is labelled by {list(self.label_names)}; "
                "use .labels(...) to pick a child"
            )
        return self._children[()]

    # Unlabelled-family conveniences ---------------------------------------

    def inc(self, amount=1.0):
        self._sole_child().inc(amount)

    def dec(self, amount=1.0):
        self._sole_child().dec(amount)

    def set(self, value):
        self._sole_child().set(value)

    def observe(self, value):
        self._sole_child().observe(value)

    @property
    def value(self):
        return self._sole_child().value

    def quantile(self, q):
        return self._sole_child().quantile(q)

    def snapshot(self):
        return self._sole_child().snapshot()

    def children(self):
        """Snapshot of ``(label values tuple, child)`` pairs, sorted."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Registration plus the global on/off switch for all its instruments.

    ``counter``/``gauge``/``histogram`` are idempotent: re-declaring a name
    with the same kind and labels returns the existing family (so modules
    can declare their handles independently), while clashing declarations
    raise :class:`MetricError`.
    """

    def __init__(self, enabled=True):
        self._enabled = enabled
        self._families = {}
        self._lock = threading.Lock()

    # -- the switch --------------------------------------------------------

    @property
    def enabled(self):
        return self._enabled

    def enable(self):
        self._enabled = True

    def disable(self):
        self._enabled = False

    # -- registration ------------------------------------------------------

    def counter(self, name, help="", labels=()):
        return self._register("counter", name, help, labels)

    def gauge(self, name, help="", labels=()):
        return self._register("gauge", name, help, labels)

    def histogram(self, name, help="", labels=(),
                  buckets=DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        return self._register("histogram", name, help, labels, bounds=bounds)

    def _register(self, kind, name, help, labels, bounds=None):
        if not METRIC_NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not LABEL_NAME_RE.match(label) or label.startswith("__"):
                raise MetricError(f"{name}: invalid label name {label!r}")
        if kind == "histogram" and "le" in label_names:
            raise MetricError(f"{name}: label 'le' is reserved for buckets")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (family.kind != kind
                        or family.label_names != label_names
                        or (bounds is not None and family.bounds != bounds)):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels "
                        f"{list(family.label_names)}"
                    )
                return family
            family = MetricFamily(self, kind, name, help, label_names,
                                  bounds=bounds)
            self._families[name] = family
            return family

    def families(self):
        """All registered families, sorted by metric name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def expose(self):
        """Render everything in Prometheus text exposition format 0.0.4."""
        from .exposition import render
        return render(self)
