"""Prometheus text exposition format 0.0.4, rendered from the registry.

Zero dependencies: the renderer walks
:meth:`~repro.obs.registry.MetricsRegistry.families` and emits ``# HELP`` /
``# TYPE`` headers followed by one sample line per child.  Histograms
expand into the conventional cumulative ``_bucket{le=...}`` series (ending
in ``le="+Inf"``) plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

__all__ = ["CONTENT_TYPE", "render"]

#: The content type Prometheus scrapers expect for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text):
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(value):
    return (value.replace("\\", r"\\")
                 .replace('"', r"\"")
                 .replace("\n", r"\n"))


def format_value(value):
    """Integral floats as integers (counters read naturally), else repr."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def format_labels(names, values):
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def render(registry):
    """The full exposition document for ``registry`` (trailing newline)."""
    lines = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.children():
            labels = format_labels(family.label_names, label_values)
            if family.kind == "histogram":
                _render_histogram(lines, family, label_values, child)
            else:
                lines.append(
                    f"{family.name}{labels} {format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def _render_histogram(lines, family, label_values, child):
    counts, total_sum, count = child.snapshot()
    cumulative = 0
    for bound, bucket_count in zip(family.bounds, counts):
        cumulative += bucket_count
        labels = format_labels(
            family.label_names + ("le",),
            label_values + (_format_bound(bound),),
        )
        lines.append(f"{family.name}_bucket{labels} {cumulative}")
    inf_labels = format_labels(
        family.label_names + ("le",), label_values + ("+Inf",)
    )
    lines.append(f"{family.name}_bucket{inf_labels} {count}")
    plain = format_labels(family.label_names, label_values)
    lines.append(f"{family.name}_sum{plain} {format_value(total_sum)}")
    lines.append(f"{family.name}_count{plain} {count}")


def _format_bound(bound):
    return format_value(bound)
