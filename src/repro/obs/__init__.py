"""Observability: metrics registry, tracing, structured logs, exposition.

The package is self-contained (it imports nothing from the rest of
``repro``), so every layer — engine, stores, scatter pool, dataset cache,
HTTP server — can import it without cycles.  All instrumented code records
into one process-wide :class:`~repro.obs.registry.MetricsRegistry` obtained
via :func:`get_registry`.  The global registry starts **disabled**: every
``inc``/``observe``/``set`` is a no-op branch until something (normally
``repro serve --metrics``, or :func:`enable_metrics`) switches it on, so
instrumentation is cheap enough to ship on every code path.

Metric handles may be cached at construction time — enabling the registry
later activates them, because the enabled check happens at record time, not
at registration time.
"""

from __future__ import annotations

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricError",
    "MetricsRegistry",
    "NULL_TRACE",
    "QueryTrace",
    "ServerTelemetry",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
]

#: The process-wide registry every instrumented subsystem records into.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry():
    """The process-wide metrics registry (disabled until switched on)."""
    return _REGISTRY


def enable_metrics():
    """Switch the global registry on; returns it."""
    _REGISTRY.enable()
    return _REGISTRY


def disable_metrics():
    """Switch the global registry off (instrumentation becomes no-ops)."""
    _REGISTRY.disable()
    return _REGISTRY


from .tracing import NULL_TRACE, QueryTrace  # noqa: E402  (uses nothing above)
from .telemetry import ServerTelemetry  # noqa: E402  (imports get_registry)
