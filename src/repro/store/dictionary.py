"""Dictionary encoding of RDF terms to dense integer identifiers.

Native RDF stores (the paper cites Sesame's native SAIL and Virtuoso)
dictionary-encode terms so that index entries are small fixed-size integers.
:class:`TermDictionary` provides the same service for :class:`IndexedStore`,
and its ids double as the join currency of the id-space evaluator
(:mod:`repro.sparql.idspace`): the mapping is injective, so id equality is
term equality inside join loops, and ``decode`` is deferred to the result
boundary (memoized per id by each evaluation).  Ids are stable for the
lifetime of the store — removals never recycle them — which is what makes
that memoization safe.  Identifiers are assigned in first-seen order, which
keeps encoding deterministic for a deterministic input stream — a property
the round-trip and determinism tests rely on.
"""

from __future__ import annotations


class TermDictionary:
    """A bidirectional term <-> integer id mapping."""

    def __init__(self):
        self._term_to_id = {}
        self._id_to_term = []

    @classmethod
    def from_terms(cls, terms):
        """Bulk-construct a dictionary whose ids are the positions of ``terms``.

        The snapshot loader uses this to rebuild a dictionary in two C-level
        passes instead of re-encoding term by term; ``terms`` must be free of
        duplicates (it is the serialized ``_id_to_term`` list).
        """
        dictionary = cls()
        dictionary._id_to_term = list(terms)
        dictionary._term_to_id = {
            term: term_id for term_id, term in enumerate(dictionary._id_to_term)
        }
        return dictionary

    def encode(self, term):
        """Return the id for ``term``, assigning a fresh one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term):
        """Return the id for ``term`` or None if the term was never encoded."""
        return self._term_to_id.get(term)

    def decode(self, term_id):
        """Return the term for a previously assigned id."""
        return self._id_to_term[term_id]

    def __contains__(self, term):
        return term in self._term_to_id

    def __len__(self):
        return len(self._id_to_term)

    def __repr__(self):
        return f"TermDictionary(len={len(self)})"
