"""Store-level statistics used for selectivity estimation.

Section V of the paper discusses triple-pattern reordering based on
selectivity estimation (citing Stocker et al.) and notes that schema
statistics allow native engines to answer queries such as Q3c (no article has
``swrc:isbn``) or Q9 (schema extraction) in near-constant time.
:class:`StoreStatistics` collects the counts those techniques need:

* triples per predicate,
* distinct subjects/objects per predicate,
* instances per ``rdf:type`` class.
"""

from __future__ import annotations

from ..rdf.namespace import RDF

_RDF_TYPE = RDF.type


class StoreStatistics:
    """Incremental counts maintained while triples are added to a store.

    The distinct-subject/object structures are reference-counted (term ->
    occurrence count) rather than plain sets so that :meth:`forget` can
    maintain them exactly when triples are removed.
    """

    def __init__(self):
        self.triple_count = 0
        self.predicate_counts = {}
        self._predicate_subjects = {}
        self._predicate_objects = {}
        self.class_counts = {}

    def observe(self, triple):
        """Record one added triple."""
        self.triple_count += 1
        predicate = triple.predicate
        self.predicate_counts[predicate] = self.predicate_counts.get(predicate, 0) + 1
        subjects = self._predicate_subjects.setdefault(predicate, {})
        subjects[triple.subject] = subjects.get(triple.subject, 0) + 1
        objects = self._predicate_objects.setdefault(predicate, {})
        objects[triple.object] = objects.get(triple.object, 0) + 1
        if predicate == _RDF_TYPE:
            self.class_counts[triple.object] = self.class_counts.get(triple.object, 0) + 1

    def forget(self, triple):
        """Record one removed triple (exact inverse of :meth:`observe`)."""
        self.triple_count -= 1
        predicate = triple.predicate
        _decrement(self.predicate_counts, predicate)
        subjects = self._predicate_subjects.get(predicate)
        if subjects is not None:
            _decrement(subjects, triple.subject)
            if not subjects:
                del self._predicate_subjects[predicate]
        objects = self._predicate_objects.get(predicate)
        if objects is not None:
            _decrement(objects, triple.object)
            if not objects:
                del self._predicate_objects[predicate]
        if predicate == _RDF_TYPE:
            _decrement(self.class_counts, triple.object)

    def copy(self):
        """An independent deep copy (MVCC generation builds start from one).

        The copy shares no mutable structure with the original, so a writer
        can :meth:`observe`/:meth:`forget` incrementally on the next
        generation's statistics while readers keep planning against the
        published generation's counts.
        """
        clone = StoreStatistics()
        clone.triple_count = self.triple_count
        clone.predicate_counts = dict(self.predicate_counts)
        clone._predicate_subjects = {
            predicate: dict(counts)
            for predicate, counts in self._predicate_subjects.items()
        }
        clone._predicate_objects = {
            predicate: dict(counts)
            for predicate, counts in self._predicate_objects.items()
        }
        clone.class_counts = dict(self.class_counts)
        return clone

    # -- accessors ---------------------------------------------------------

    def predicate_count(self, predicate):
        """Number of triples carrying ``predicate``."""
        return self.predicate_counts.get(predicate, 0)

    def distinct_subjects(self, predicate):
        """Number of distinct subjects appearing with ``predicate``."""
        return len(self._predicate_subjects.get(predicate, ()))

    def distinct_objects(self, predicate):
        """Number of distinct objects appearing with ``predicate``."""
        return len(self._predicate_objects.get(predicate, ()))

    def class_count(self, class_uri):
        """Number of ``rdf:type`` instances of ``class_uri``."""
        return self.class_counts.get(class_uri, 0)

    def distinct_predicates(self):
        """Number of distinct predicates observed."""
        return len(self.predicate_counts)

    def distinct_subject_total(self):
        """Number of distinct subjects across all predicates.

        Linear in the number of (predicate, subject) pairs; the cost-based
        planner memoizes it per planning pass (it is only needed for
        variable-predicate patterns, Q9/Q10 style).
        """
        return len(self._all_subjects())

    def distinct_object_total(self):
        """Number of distinct objects across all predicates."""
        return len(self._all_objects())

    # -- selectivity estimation ---------------------------------------------

    def estimate(self, subject, predicate, object):
        """Estimate the number of triples matching an (s, p, o) pattern.

        ``None`` marks a wildcard position.  The estimates follow the classic
        attribute-independence model: start from the predicate count (or the
        total triple count for a variable predicate) and divide by the number
        of distinct subjects/objects for each bound subject/object.
        """
        if predicate is not None:
            base = self.predicate_count(predicate)
            if base == 0:
                return 0
            estimate = float(base)
            if subject is not None:
                estimate /= max(self.distinct_subjects(predicate), 1)
            if object is not None:
                if predicate == _RDF_TYPE and subject is None:
                    return self.class_count(object)
                estimate /= max(self.distinct_objects(predicate), 1)
            return max(estimate, 0.0)
        # Variable predicate: fall back to the total count, scaled down when
        # subject and/or object are bound.
        estimate = float(self.triple_count)
        if subject is not None:
            estimate /= max(len(self._all_subjects()), 1)
        if object is not None:
            estimate /= max(len(self._all_objects()), 1)
        return estimate

    def _all_subjects(self):
        subjects = set()
        for per_predicate in self._predicate_subjects.values():
            subjects.update(per_predicate)
        return subjects

    def _all_objects(self):
        objects = set()
        for per_predicate in self._predicate_objects.values():
            objects.update(per_predicate)
        return objects

    def __eq__(self, other):
        """Exact structural equality (snapshot round-trip tests rely on it)."""
        if not isinstance(other, StoreStatistics):
            return NotImplemented
        return (
            self.triple_count == other.triple_count
            and self.predicate_counts == other.predicate_counts
            and self._predicate_subjects == other._predicate_subjects
            and self._predicate_objects == other._predicate_objects
            and self.class_counts == other.class_counts
        )

    __hash__ = None  # mutable container; equality is structural

    def __repr__(self):
        return (
            f"StoreStatistics(triples={self.triple_count}, "
            f"predicates={len(self.predicate_counts)}, classes={len(self.class_counts)})"
        )


def merge_statistics(parts):
    """Exact statistics of the disjoint union of several stores.

    The partitioned store keeps one :class:`StoreStatistics` per segment and
    plans against their merge.  Because every triple lives in exactly one
    segment, all counters — including the reference-counted distinct
    subject/object maps — add exactly: the merge is structurally equal
    (``==``) to the statistics a single store holding all the triples would
    have computed, so planner cardinality estimates are identical under
    sharding.  (This exactness is asserted by the statistics-equivalence
    test; it would break if segments could ever share a triple.)
    """
    merged = StoreStatistics()
    for part in parts:
        merged.triple_count += part.triple_count
        for predicate, count in part.predicate_counts.items():
            merged.predicate_counts[predicate] = (
                merged.predicate_counts.get(predicate, 0) + count
            )
        for predicate, counts in part._predicate_subjects.items():
            target = merged._predicate_subjects.setdefault(predicate, {})
            for term, count in counts.items():
                target[term] = target.get(term, 0) + count
        for predicate, counts in part._predicate_objects.items():
            target = merged._predicate_objects.setdefault(predicate, {})
            for term, count in counts.items():
                target[term] = target.get(term, 0) + count
        for class_uri, count in part.class_counts.items():
            merged.class_counts[class_uri] = (
                merged.class_counts.get(class_uri, 0) + count
            )
    return merged


def _decrement(counter, key):
    """Decrease ``counter[key]`` by one, dropping the entry at zero."""
    remaining = counter.get(key, 0) - 1
    if remaining > 0:
        counter[key] = remaining
    else:
        counter.pop(key, None)
