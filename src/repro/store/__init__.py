"""Triple-storage substrate: unindexed and indexed stores plus statistics."""

from .base import TripleStore
from .dictionary import TermDictionary
from .indexed_store import IndexedStore
from .memory_store import MemoryStore
from .statistics import StoreStatistics

__all__ = [
    "TripleStore",
    "MemoryStore",
    "IndexedStore",
    "TermDictionary",
    "StoreStatistics",
]
