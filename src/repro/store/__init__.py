"""Triple-storage substrate: unindexed and indexed stores plus statistics.

Two backends model the paper's two engine families.  :class:`MemoryStore`
answers every pattern by scanning (the in-memory engine model).
:class:`IndexedStore` dictionary-encodes terms to integers and answers
patterns from six hash indexes; it additionally exposes an id-level access
interface (``encode_pattern`` / ``triples_ids`` / ``count_ids``, advertised
via ``supports_id_access``) that the id-space SPARQL evaluator joins over
without decoding — the native-engine model.  See DESIGN.md.
"""

from .base import TripleStore
from .dictionary import TermDictionary
from .indexed_store import IndexedStore
from .memory_store import MemoryStore
from .statistics import StoreStatistics

__all__ = [
    "TripleStore",
    "MemoryStore",
    "IndexedStore",
    "TermDictionary",
    "StoreStatistics",
]
