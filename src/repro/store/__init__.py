"""Triple-storage substrate: unindexed and indexed stores plus statistics.

Two backends model the paper's two engine families.  :class:`MemoryStore`
answers every pattern by scanning (the in-memory engine model).
:class:`IndexedStore` dictionary-encodes terms to integers and answers
patterns from six hash indexes; it additionally exposes an id-level access
interface (``encode_pattern`` / ``triples_ids`` / ``count_ids``, advertised
via ``supports_id_access``) that the id-space SPARQL evaluator joins over
without decoding — the native-engine model.  See DESIGN.md.
"""

from .base import TripleStore
from .dictionary import TermDictionary
from .indexed_store import IndexedStore
from .memory_store import MemoryStore
from .mvcc import MvccStore, read_snapshot
from .partitioned import PartitionedStore, is_partition_manifest, save_partitioned
from .snapshot import (
    FORMAT_VERSION as SNAPSHOT_FORMAT_VERSION,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    load_snapshot,
    read_snapshot_metadata,
    save_snapshot,
)
from .statistics import StoreStatistics, merge_statistics

__all__ = [
    "TripleStore",
    "MemoryStore",
    "IndexedStore",
    "MvccStore",
    "PartitionedStore",
    "is_partition_manifest",
    "save_partitioned",
    "read_snapshot",
    "merge_statistics",
    "TermDictionary",
    "StoreStatistics",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "SnapshotCorruptError",
    "save_snapshot",
    "load_snapshot",
    "read_snapshot_metadata",
]
