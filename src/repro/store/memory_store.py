"""Unindexed in-memory triple store (the paper's "in-memory engine" model).

Every triple-pattern lookup is a linear scan over the full document, which is
what makes the in-memory engines of the paper (ARQ, Sesame-memory) scale with
document size even for highly selective queries like Q1 or Q12c.  A small
duplicate-detection set is kept so that loading is idempotent, but no access
path other than the scan exists.
"""

from __future__ import annotations

from .base import TripleStore


class MemoryStore(TripleStore):
    """A list-backed store answering patterns by scanning."""

    name = "memory"

    def __init__(self, triples=None):
        self._triples = []
        self._seen = set()
        if triples is not None:
            self.load_graph(triples)

    def add(self, triple):
        if triple in self._seen:
            return False
        self._seen.add(triple)
        self._triples.append(triple)
        return True

    def remove(self, triple):
        """Remove a triple if present; returns True when removed."""
        if triple not in self._seen:
            return False
        self._seen.discard(triple)
        self._triples.remove(triple)
        return True

    def triples(self, subject=None, predicate=None, object=None):
        for triple in self._triples:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if object is not None and triple.object != object:
                continue
            yield triple

    def contains(self, triple):
        return triple in self._seen

    def __len__(self):
        return len(self._triples)

    def __repr__(self):
        return f"MemoryStore(len={len(self)})"
