"""Unindexed in-memory triple store (the paper's "in-memory engine" model).

Every triple-pattern lookup is a linear scan over the full document, which is
what makes the in-memory engines of the paper (ARQ, Sesame-memory) scale with
document size even for highly selective queries like Q1 or Q12c.  The triples
live in one insertion-ordered dict used simultaneously as scan sequence and
duplicate-detection set, so ``add``/``remove``/``contains`` are O(1) while the
only *pattern* access path remains the scan.  This store deliberately does not
implement the id-level access interface (``supports_id_access`` stays False):
the SPARQL evaluator keeps it on the term-level path, preserving the
in-memory-engine cost model.
"""

from __future__ import annotations

from .base import TripleStore


class MemoryStore(TripleStore):
    """A scan-based store answering patterns by iterating all triples."""

    name = "memory"

    def __init__(self, triples=None):
        # Insertion-ordered dict doubling as ordered sequence and membership set.
        self._triples = {}
        if triples is not None:
            self.load_graph(triples)

    def add(self, triple):
        if triple in self._triples:
            return False
        self._triples[triple] = None
        self.version += 1
        return True

    def save(self, path, metadata=None):
        """Write a snapshot of this store (an N-Triples-backed payload).

        The in-memory engines of the paper re-parse their document on every
        load, so the "snapshot" of a scan store is simply the serialized
        document inside the common snapshot container — symmetric API with
        :meth:`IndexedStore.save`, same cost model as the modelled engines.
        """
        from .snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path):
        """Rebuild a store from a snapshot written by :meth:`save`."""
        from .snapshot import load_snapshot

        return load_snapshot(path, expected_kind="memory")

    def remove(self, triple):
        """Remove a triple if present; returns True when removed.  O(1)."""
        if triple not in self._triples:
            return False
        del self._triples[triple]
        self.version += 1
        return True

    def begin_generation(self):
        """Start a draft of this store's next MVCC generation.

        A scan store has no sharable index structure, so the draft simply
        copies the triple dict (one C-level ``dict.copy``) — O(n) but with a
        very small constant, matching the store's own cost model.
        """
        return MemoryGenerationDraft(self)

    def triples(self, subject=None, predicate=None, object=None):
        for triple in self._triples:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if object is not None and triple.object != object:
                continue
            yield triple

    def contains(self, triple):
        return triple in self._triples

    def __len__(self):
        return len(self._triples)

    def __repr__(self):
        return f"MemoryStore(len={len(self)})"


class MemoryGenerationDraft:
    """Draft of a :class:`MemoryStore`'s next MVCC generation.

    Same driver-facing surface as ``indexed_store.GenerationDraft``:
    ``add``/``remove``/``mutated``/``inserted``/``deleted``/``finish``.
    """

    def __init__(self, base):
        store = MemoryStore()
        store._triples = base._triples.copy()
        store.version = base.version
        self.store = store
        self.inserted = 0
        self.deleted = 0

    def add(self, triple):
        """Insert one ground triple into the draft; True when it was new."""
        if triple in self.store._triples:
            return False
        self.store._triples[triple] = None
        self.inserted += 1
        return True

    def remove(self, triple):
        """Remove one ground triple from the draft; True when present."""
        if triple not in self.store._triples:
            return False
        del self.store._triples[triple]
        self.deleted += 1
        return True

    @property
    def mutated(self):
        """True when at least one triple was actually inserted or removed."""
        return bool(self.inserted or self.deleted)

    def finish(self, version):
        """Seal the draft as generation ``version`` and return its store."""
        self.store.version = version
        return self.store
