"""Dictionary-encoded, fully indexed triple store (the "native engine" model).

The paper's native engines (Sesame with the native SAIL, Virtuoso) answer
triple patterns from physical index structures and *join over dictionary ids*,
materializing RDF terms only for final results.  :class:`IndexedStore`
reproduces both halves of that design in pure Python:

* all terms are dictionary-encoded to integers (:mod:`.dictionary`),
* triples are stored once as id-triples,
* six hash indexes (S, P, O, SP, PO, SO) map bound components to the set of
  matching triple positions, so every possible binding combination of a
  triple pattern has a direct access path,
* per-predicate and per-class statistics are maintained for the optimizer.

Two access levels are exposed:

``triples()`` / ``count()``
    The term-level :class:`~repro.store.base.TripleStore` interface: patterns
    are encoded on the way in and every matching id-triple is decoded back to
    a :class:`~repro.rdf.triple.Triple` on the way out.

``encode_pattern()`` / ``triples_ids()`` / ``count_ids()``
    The id-level interface used by the id-space query evaluator
    (:mod:`repro.sparql.idspace`): the caller encodes its constants once,
    probes the indexes with raw integers, and receives raw id 3-tuples with
    **no decoding at all** — terms are only reconstructed at the result
    boundary.  ``supports_id_access`` advertises this capability so the
    evaluator can keep scan-based stores on the term-level path.
"""

from __future__ import annotations

from array import array
from itertools import islice

from ..rdf.triple import Triple
from .base import TripleStore
from .dictionary import TermDictionary
from .statistics import StoreStatistics

#: Shared empty set returned for index misses (never mutated).
_EMPTY = frozenset()

#: Sort orders a predicate run can be materialized in.
RUN_BY_SUBJECT = "s"
RUN_BY_OBJECT = "o"


class SortedRun:
    """One predicate's triples as two parallel, key-sorted ``u32`` columns.

    ``keys`` holds the sort column (subjects for order ``"s"``, objects for
    order ``"o"``) in ascending order with ties broken by ``values``, so a
    run doubles as a lexicographically sorted ``(key, value)`` pair list —
    the layout the batch kernels (:mod:`repro.sparql.kernels`) binary-search
    and merge-join over without materializing any Python tuples.

    ``cache`` is scratch space for kernel-computed views (numpy mirrors,
    composite keys); it lives and dies with the run, so store mutation
    invalidating the run also drops every derived view.
    """

    __slots__ = ("predicate", "order", "keys", "values", "cache")

    def __init__(self, predicate, order, keys, values):
        self.predicate = predicate
        self.order = order
        self.keys = keys
        self.values = values
        self.cache = {}

    def __len__(self):
        return len(self.keys)

    def __repr__(self):
        return (f"SortedRun(predicate={self.predicate}, order={self.order!r}, "
                f"len={len(self)})")


def _rebuild_index(triples, image):
    """Rebuild one hash index from a grouped snapshot image.

    ``image`` is ``(single_keys, single_members, multi_keys, multi_counts,
    multi_members)`` with members given as positions into ``triples``.  The
    multi buckets are materialized through C-level ``set``/``islice``
    construction and the (dominant) singleton buckets through a plain
    assignment loop — together roughly 3x cheaper than replaying per-triple
    ``setdefault(...).add(...)`` churn for every index entry.
    """
    single_keys, single_members, multi_keys, multi_counts, multi_members = image
    member = triples.__getitem__
    multi_iter = map(member, multi_members)
    index = {
        key: set(islice(multi_iter, count))
        for key, count in zip(multi_keys, multi_counts)
    }
    # Singleton buckets dominate (the sp/po/so keys are mostly unique); build
    # them without any per-bucket Python frame: zip() wraps each member triple
    # in a 1-tuple and map(set, ...) turns it into its singleton bucket, so
    # the whole stream runs inside the C iterator protocol.
    index.update(zip(single_keys, map(set, zip(map(member, single_members)))))
    return index


class IndexedStore(TripleStore):
    """A hash-indexed triple store with dictionary encoding."""

    name = "indexed"

    #: Id-level access (``triples_ids`` & friends) is available.
    supports_id_access = True

    #: Predicate-sorted id runs (``sorted_run``) are available.
    supports_sorted_runs = True

    def __init__(self, triples=None):
        self._dictionary = TermDictionary()
        self._spo = set()          # full triples as id 3-tuples
        self._by_s = {}
        self._by_p = {}
        self._by_o = {}
        self._by_sp = {}
        self._by_po = {}
        self._by_so = {}
        self._sorted_runs = {}     # (predicate_id, order) -> SortedRun
        self.statistics = StoreStatistics()
        if triples is not None:
            self.load_graph(triples)

    # -- bulk construction --------------------------------------------------

    @classmethod
    def from_id_triples(cls, dictionary, id_triples, statistics=None):
        """Bulk-construct a store from a dictionary and raw id 3-tuples.

        This is the snapshot/bulk-load entry point: the caller supplies an
        already-populated :class:`TermDictionary` and the id-triple set, so
        construction skips per-triple term encoding.  When ``statistics`` is
        given (e.g. deserialized from a snapshot) the per-triple statistics
        observation is skipped as well; otherwise statistics are recomputed
        in one pass over the loaded triples.
        """
        store = cls()
        store._dictionary = dictionary
        store.bulk_add_ids(id_triples)
        if statistics is None:
            statistics = store._recompute_statistics()
        store.statistics = statistics
        return store

    @classmethod
    def _from_snapshot(cls, dictionary, triples, index_images, statistics):
        """Assemble a store from deserialized snapshot sections (trusted)."""
        store = cls()
        store._dictionary = dictionary
        store._spo = set(triples)
        (store._by_s, store._by_p, store._by_o,
         store._by_sp, store._by_po, store._by_so) = (
            _rebuild_index(triples, image) for image in index_images
        )
        store.statistics = statistics
        return store

    def bulk_add_ids(self, id_triples):
        """Insert raw id 3-tuples in bulk; returns the number actually added.

        The bulk path of :meth:`from_id_triples`: indexes are maintained with
        a tightened insert loop, but **statistics are deliberately not
        updated** — callers either install deserialized statistics or call
        :meth:`_recompute_statistics` once afterwards.  All ids must already
        be valid for this store's dictionary.
        """
        spo = self._spo
        by_s, by_p, by_o = self._by_s, self._by_p, self._by_o
        by_sp, by_po, by_so = self._by_sp, self._by_po, self._by_so
        added = 0
        for ids in id_triples:
            ids = tuple(ids)
            if ids in spo:
                continue
            spo.add(ids)
            s, p, o = ids
            for index, key in (
                (by_s, s), (by_p, p), (by_o, o),
                (by_sp, (s, p)), (by_po, (p, o)), (by_so, (s, o)),
            ):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {ids}
                else:
                    bucket.add(ids)
            added += 1
        if added:
            self._sorted_runs.clear()
        return added

    def _recompute_statistics(self):
        """Rebuild :class:`StoreStatistics` from the stored id-triples."""
        statistics = StoreStatistics()
        decode = self._dictionary.decode
        for s_id, p_id, o_id in self._spo:
            statistics.observe(Triple(decode(s_id), decode(p_id), decode(o_id)))
        return statistics

    def _index_table(self):
        """The six hash indexes with their key arity, in snapshot order."""
        return (
            (1, self._by_s), (1, self._by_p), (1, self._by_o),
            (2, self._by_sp), (2, self._by_po), (2, self._by_so),
        )

    # -- snapshots -----------------------------------------------------------

    def save(self, path, metadata=None):
        """Write a binary snapshot of this store (see :mod:`.snapshot`)."""
        from .snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path):
        """Rebuild a store from a snapshot written by :meth:`save`."""
        from .snapshot import load_snapshot

        return load_snapshot(path, expected_kind="indexed")

    # -- mutation -----------------------------------------------------------

    def add(self, triple):
        ids = (
            self._dictionary.encode(triple.subject),
            self._dictionary.encode(triple.predicate),
            self._dictionary.encode(triple.object),
        )
        if ids in self._spo:
            return False
        self._spo.add(ids)
        s, p, o = ids
        self._by_s.setdefault(s, set()).add(ids)
        self._by_p.setdefault(p, set()).add(ids)
        self._by_o.setdefault(o, set()).add(ids)
        self._by_sp.setdefault((s, p), set()).add(ids)
        self._by_po.setdefault((p, o), set()).add(ids)
        self._by_so.setdefault((s, o), set()).add(ids)
        self._invalidate_sorted_runs(p)
        self.statistics.observe(triple)
        return True

    def remove(self, triple):
        """Remove a triple if present; returns True when removed.

        All six indexes and the store statistics are maintained; empty index
        buckets are dropped so lookups of fully removed keys stay O(1).
        Dictionary entries are intentionally kept — ids are stable for the
        lifetime of the store, which is what lets id-space evaluation cache
        decoded terms safely.
        """
        encoded = self.encode_pattern(triple.subject, triple.predicate, triple.object)
        if encoded is None or encoded not in self._spo:
            return False
        self._spo.discard(encoded)
        s, p, o = encoded
        for index, key in (
            (self._by_s, s),
            (self._by_p, p),
            (self._by_o, o),
            (self._by_sp, (s, p)),
            (self._by_po, (p, o)),
            (self._by_so, (s, o)),
        ):
            bucket = index[key]
            bucket.discard(encoded)
            if not bucket:
                del index[key]
        self._invalidate_sorted_runs(p)
        self.statistics.forget(triple)
        return True

    # -- id-level access ----------------------------------------------------

    def encode_pattern(self, subject, predicate, object):
        """Encode bound pattern positions; returns None if a bound term is unknown.

        ``None`` positions stay ``None`` (wildcards).  A ``None`` return means
        the pattern cannot match anything in this store — callers short-circuit
        to an empty result without touching any index.
        """
        encoded = []
        for term in (subject, predicate, object):
            if term is None:
                encoded.append(None)
                continue
            term_id = self._dictionary.lookup(term)
            if term_id is None:
                return None
            encoded.append(term_id)
        return tuple(encoded)

    def id_triples(self):
        """Iterate over every stored triple as a raw id 3-tuple (no decode).

        The bulk counterpart of :meth:`triples_ids` used by snapshot and
        copy/bulk-load paths: ``IndexedStore.from_id_triples(other.dictionary,
        other.id_triples())`` clones a store without touching terms.
        """
        return iter(self._spo)

    def triples_ids(self, subject=None, predicate=None, object=None):
        """Yield raw id 3-tuples matching an already-encoded pattern.

        Arguments are dictionary ids (or ``None`` wildcards); nothing is
        decoded.  This is the join-loop access path of the id-space evaluator.
        """
        return iter(self._candidates(subject, predicate, object))

    def count_ids(self, subject=None, predicate=None, object=None):
        """Number of triples matching an already-encoded pattern (no decode)."""
        return len(self._candidates(subject, predicate, object))

    def _candidates(self, s, p, o):
        """Return the candidate id-triple set for an encoded pattern."""
        if s is not None and p is not None and o is not None:
            return {(s, p, o)} if (s, p, o) in self._spo else _EMPTY
        if s is not None and p is not None:
            return self._by_sp.get((s, p), _EMPTY)
        if p is not None and o is not None:
            return self._by_po.get((p, o), _EMPTY)
        if s is not None and o is not None:
            return self._by_so.get((s, o), _EMPTY)
        if s is not None:
            return self._by_s.get(s, _EMPTY)
        if p is not None:
            return self._by_p.get(p, _EMPTY)
        if o is not None:
            return self._by_o.get(o, _EMPTY)
        return self._spo

    # -- sorted runs ---------------------------------------------------------

    def sorted_run(self, predicate_id, order=RUN_BY_SUBJECT):
        """The predicate's triples as a key-sorted :class:`SortedRun`.

        ``order`` selects the sort column: ``"s"`` sorts by subject (values
        are the objects), ``"o"`` sorts by object (values are the subjects).
        Runs are built lazily on first request, cached per ``(predicate,
        order)``, and invalidated by any mutation touching the predicate.
        Returns ``None`` for a predicate with no triples, so callers can
        fall back to the tuple path without special-casing empty columns.
        """
        if order not in (RUN_BY_SUBJECT, RUN_BY_OBJECT):
            raise ValueError(f"unknown run order: {order!r}")
        key = (predicate_id, order)
        run = self._sorted_runs.get(key)
        if run is not None:
            return run
        bucket = self._by_p.get(predicate_id)
        if not bucket:
            return None
        if order == RUN_BY_SUBJECT:
            pairs = sorted((s, o) for s, _p, o in bucket)
        else:
            pairs = sorted((o, s) for s, _p, o in bucket)
        keys = array("I", (pair[0] for pair in pairs))
        values = array("I", (pair[1] for pair in pairs))
        run = SortedRun(predicate_id, order, keys, values)
        self._sorted_runs[key] = run
        return run

    def _install_sorted_runs(self, runs):
        """Adopt prebuilt runs (snapshot load path, trusted input)."""
        for run in runs:
            self._sorted_runs[(run.predicate, run.order)] = run

    def _invalidate_sorted_runs(self, predicate_id):
        """Drop both cached runs of one predicate after a mutation."""
        if self._sorted_runs:
            self._sorted_runs.pop((predicate_id, RUN_BY_SUBJECT), None)
            self._sorted_runs.pop((predicate_id, RUN_BY_OBJECT), None)

    # -- term-level lookup --------------------------------------------------

    def triples(self, subject=None, predicate=None, object=None):
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return
        decode = self._dictionary.decode
        for s_id, p_id, o_id in self._candidates(*encoded):
            yield Triple(decode(s_id), decode(p_id), decode(o_id))

    def contains(self, triple):
        encoded = self.encode_pattern(triple.subject, triple.predicate, triple.object)
        if encoded is None:
            return False
        return encoded in self._spo

    def count(self, subject=None, predicate=None, object=None):
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        return len(self._candidates(*encoded))

    def estimate_count(self, subject=None, predicate=None, object=None):
        """Cheap cardinality estimate for the optimizer.

        Fully bound or singly/doubly bound patterns are answered exactly from
        the index sizes (constant time); everything else falls back to the
        statistics-based estimate.
        """
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        s, p, o = encoded
        if s is not None or o is not None or p is not None:
            return len(self._candidates(s, p, o))
        return self.statistics.triple_count

    def __len__(self):
        return len(self._spo)

    @property
    def dictionary(self):
        """The term dictionary (id-space evaluation and white-box tests)."""
        return self._dictionary

    def __repr__(self):
        return f"IndexedStore(len={len(self)}, terms={len(self._dictionary)})"
