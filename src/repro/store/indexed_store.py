"""Dictionary-encoded, fully indexed triple store (the "native engine" model).

The paper's native engines (Sesame with the native SAIL, Virtuoso) answer
triple patterns from physical index structures and *join over dictionary ids*,
materializing RDF terms only for final results.  :class:`IndexedStore`
reproduces both halves of that design in pure Python:

* all terms are dictionary-encoded to integers (:mod:`.dictionary`),
* triples are stored once as id-triples,
* six hash indexes (S, P, O, SP, PO, SO) map bound components to the set of
  matching triple positions, so every possible binding combination of a
  triple pattern has a direct access path,
* per-predicate and per-class statistics are maintained for the optimizer.

Two access levels are exposed:

``triples()`` / ``count()``
    The term-level :class:`~repro.store.base.TripleStore` interface: patterns
    are encoded on the way in and every matching id-triple is decoded back to
    a :class:`~repro.rdf.triple.Triple` on the way out.

``encode_pattern()`` / ``triples_ids()`` / ``count_ids()``
    The id-level interface used by the id-space query evaluator
    (:mod:`repro.sparql.idspace`): the caller encodes its constants once,
    probes the indexes with raw integers, and receives raw id 3-tuples with
    **no decoding at all** — terms are only reconstructed at the result
    boundary.  ``supports_id_access`` advertises this capability so the
    evaluator can keep scan-based stores on the term-level path.
"""

from __future__ import annotations

from array import array
from itertools import islice

from ..rdf.triple import Triple
from .base import TripleStore
from .dictionary import TermDictionary
from .statistics import StoreStatistics

#: Shared empty set returned for index misses (never mutated).
_EMPTY = frozenset()

#: Sort orders a predicate run can be materialized in.
RUN_BY_SUBJECT = "s"
RUN_BY_OBJECT = "o"


class SortedRun:
    """One predicate's triples as two parallel, key-sorted ``u32`` columns.

    ``keys`` holds the sort column (subjects for order ``"s"``, objects for
    order ``"o"``) in ascending order with ties broken by ``values``, so a
    run doubles as a lexicographically sorted ``(key, value)`` pair list —
    the layout the batch kernels (:mod:`repro.sparql.kernels`) binary-search
    and merge-join over without materializing any Python tuples.

    ``cache`` is scratch space for kernel-computed views (numpy mirrors,
    composite keys); it lives and dies with the run, so store mutation
    invalidating the run also drops every derived view.
    """

    __slots__ = ("predicate", "order", "keys", "values", "cache")

    def __init__(self, predicate, order, keys, values):
        self.predicate = predicate
        self.order = order
        self.keys = keys
        self.values = values
        self.cache = {}

    def __len__(self):
        return len(self.keys)

    def __repr__(self):
        return (f"SortedRun(predicate={self.predicate}, order={self.order!r}, "
                f"len={len(self)})")


def _rebuild_index(triples, image):
    """Rebuild one hash index from a grouped snapshot image.

    ``image`` is ``(single_keys, single_members, multi_keys, multi_counts,
    multi_members)`` with members given as positions into ``triples``.  The
    multi buckets are materialized through C-level ``set``/``islice``
    construction and the (dominant) singleton buckets through a plain
    assignment loop — together roughly 3x cheaper than replaying per-triple
    ``setdefault(...).add(...)`` churn for every index entry.
    """
    single_keys, single_members, multi_keys, multi_counts, multi_members = image
    member = triples.__getitem__
    multi_iter = map(member, multi_members)
    index = {
        key: set(islice(multi_iter, count))
        for key, count in zip(multi_keys, multi_counts)
    }
    # Singleton buckets dominate (the sp/po/so keys are mostly unique); build
    # them without any per-bucket Python frame: zip() wraps each member triple
    # in a 1-tuple and map(set, ...) turns it into its singleton bucket, so
    # the whole stream runs inside the C iterator protocol.
    index.update(zip(single_keys, map(set, zip(map(member, single_members)))))
    return index


class IndexedStore(TripleStore):
    """A hash-indexed triple store with dictionary encoding."""

    name = "indexed"

    #: Id-level access (``triples_ids`` & friends) is available.
    supports_id_access = True

    #: Predicate-sorted id runs (``sorted_run``) are available.
    supports_sorted_runs = True

    def __init__(self, triples=None):
        self._dictionary = TermDictionary()
        self._spo = set()          # full triples as id 3-tuples
        self._by_s = {}
        self._by_p = {}
        self._by_o = {}
        self._by_sp = {}
        self._by_po = {}
        self._by_so = {}
        self._sorted_runs = {}     # (predicate_id, order) -> SortedRun
        self.statistics = StoreStatistics()
        if triples is not None:
            self.load_graph(triples)

    # -- bulk construction --------------------------------------------------

    @classmethod
    def from_id_triples(cls, dictionary, id_triples, statistics=None):
        """Bulk-construct a store from a dictionary and raw id 3-tuples.

        This is the snapshot/bulk-load entry point: the caller supplies an
        already-populated :class:`TermDictionary` and the id-triple set, so
        construction skips per-triple term encoding.  When ``statistics`` is
        given (e.g. deserialized from a snapshot) the per-triple statistics
        observation is skipped as well; otherwise statistics are recomputed
        in one pass over the loaded triples.
        """
        store = cls()
        store._dictionary = dictionary
        store.bulk_add_ids(id_triples)
        if statistics is None:
            statistics = store._recompute_statistics()
        store.statistics = statistics
        return store

    @classmethod
    def _from_snapshot(cls, dictionary, triples, index_images, statistics):
        """Assemble a store from deserialized snapshot sections (trusted)."""
        store = cls()
        store._dictionary = dictionary
        store._spo = set(triples)
        (store._by_s, store._by_p, store._by_o,
         store._by_sp, store._by_po, store._by_so) = (
            _rebuild_index(triples, image) for image in index_images
        )
        store.statistics = statistics
        return store

    def bulk_add_ids(self, id_triples):
        """Insert raw id 3-tuples in bulk; returns the number actually added.

        The bulk path of :meth:`from_id_triples`: indexes are maintained with
        a tightened insert loop, but **statistics are deliberately not
        updated** — callers either install deserialized statistics or call
        :meth:`_recompute_statistics` once afterwards.  All ids must already
        be valid for this store's dictionary.
        """
        spo = self._spo
        by_s, by_p, by_o = self._by_s, self._by_p, self._by_o
        by_sp, by_po, by_so = self._by_sp, self._by_po, self._by_so
        added = 0
        for ids in id_triples:
            ids = tuple(ids)
            if ids in spo:
                continue
            spo.add(ids)
            s, p, o = ids
            for index, key in (
                (by_s, s), (by_p, p), (by_o, o),
                (by_sp, (s, p)), (by_po, (p, o)), (by_so, (s, o)),
            ):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {ids}
                else:
                    bucket.add(ids)
            added += 1
        if added:
            self._sorted_runs.clear()
            self.version += 1
        return added

    def _recompute_statistics(self):
        """Rebuild :class:`StoreStatistics` from the stored id-triples."""
        statistics = StoreStatistics()
        decode = self._dictionary.decode
        for s_id, p_id, o_id in self._spo:
            statistics.observe(Triple(decode(s_id), decode(p_id), decode(o_id)))
        return statistics

    def _index_table(self):
        """The six hash indexes with their key arity, in snapshot order."""
        return (
            (1, self._by_s), (1, self._by_p), (1, self._by_o),
            (2, self._by_sp), (2, self._by_po), (2, self._by_so),
        )

    # -- snapshots -----------------------------------------------------------

    def save(self, path, metadata=None):
        """Write a binary snapshot of this store (see :mod:`.snapshot`)."""
        from .snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path):
        """Rebuild a store from a snapshot written by :meth:`save`."""
        from .snapshot import load_snapshot

        return load_snapshot(path, expected_kind="indexed")

    # -- mutation -----------------------------------------------------------

    def add(self, triple):
        ids = (
            self._dictionary.encode(triple.subject),
            self._dictionary.encode(triple.predicate),
            self._dictionary.encode(triple.object),
        )
        if ids in self._spo:
            return False
        self._spo.add(ids)
        s, p, o = ids
        self._by_s.setdefault(s, set()).add(ids)
        self._by_p.setdefault(p, set()).add(ids)
        self._by_o.setdefault(o, set()).add(ids)
        self._by_sp.setdefault((s, p), set()).add(ids)
        self._by_po.setdefault((p, o), set()).add(ids)
        self._by_so.setdefault((s, o), set()).add(ids)
        self._invalidate_sorted_runs(p)
        self.statistics.observe(triple)
        self.version += 1
        return True

    def remove(self, triple):
        """Remove a triple if present; returns True when removed.

        All six indexes and the store statistics are maintained; empty index
        buckets are dropped so lookups of fully removed keys stay O(1).
        Dictionary entries are intentionally kept — ids are stable for the
        lifetime of the store, which is what lets id-space evaluation cache
        decoded terms safely.
        """
        encoded = self.encode_pattern(triple.subject, triple.predicate, triple.object)
        if encoded is None or encoded not in self._spo:
            return False
        self._spo.discard(encoded)
        s, p, o = encoded
        for index, key in (
            (self._by_s, s),
            (self._by_p, p),
            (self._by_o, o),
            (self._by_sp, (s, p)),
            (self._by_po, (p, o)),
            (self._by_so, (s, o)),
        ):
            bucket = index[key]
            bucket.discard(encoded)
            if not bucket:
                del index[key]
        self._invalidate_sorted_runs(p)
        self.statistics.forget(triple)
        self.version += 1
        return True

    def begin_generation(self):
        """Start a copy-on-write draft of this store's next MVCC generation.

        Returns a :class:`GenerationDraft` sharing this store's term
        dictionary (append-only, so ids stay valid across generations), its
        untouched index buckets, and its sorted runs; the draft copies a
        bucket only when a mutation first touches it.  This store is never
        modified through the draft — readers holding it keep an immutable
        view while the writer assembles the next generation.
        """
        return GenerationDraft(self)

    # -- id-level access ----------------------------------------------------

    def encode_pattern(self, subject, predicate, object):
        """Encode bound pattern positions; returns None if a bound term is unknown.

        ``None`` positions stay ``None`` (wildcards).  A ``None`` return means
        the pattern cannot match anything in this store — callers short-circuit
        to an empty result without touching any index.
        """
        encoded = []
        for term in (subject, predicate, object):
            if term is None:
                encoded.append(None)
                continue
            term_id = self._dictionary.lookup(term)
            if term_id is None:
                return None
            encoded.append(term_id)
        return tuple(encoded)

    def id_triples(self):
        """Iterate over every stored triple as a raw id 3-tuple (no decode).

        The bulk counterpart of :meth:`triples_ids` used by snapshot and
        copy/bulk-load paths: ``IndexedStore.from_id_triples(other.dictionary,
        other.id_triples())`` clones a store without touching terms.
        """
        return iter(self._spo)

    def triples_ids(self, subject=None, predicate=None, object=None):
        """Yield raw id 3-tuples matching an already-encoded pattern.

        Arguments are dictionary ids (or ``None`` wildcards); nothing is
        decoded.  This is the join-loop access path of the id-space evaluator.
        """
        return iter(self._candidates(subject, predicate, object))

    def count_ids(self, subject=None, predicate=None, object=None):
        """Number of triples matching an already-encoded pattern (no decode)."""
        return len(self._candidates(subject, predicate, object))

    def _candidates(self, s, p, o):
        """Return the candidate id-triple set for an encoded pattern."""
        if s is not None and p is not None and o is not None:
            return {(s, p, o)} if (s, p, o) in self._spo else _EMPTY
        if s is not None and p is not None:
            return self._by_sp.get((s, p), _EMPTY)
        if p is not None and o is not None:
            return self._by_po.get((p, o), _EMPTY)
        if s is not None and o is not None:
            return self._by_so.get((s, o), _EMPTY)
        if s is not None:
            return self._by_s.get(s, _EMPTY)
        if p is not None:
            return self._by_p.get(p, _EMPTY)
        if o is not None:
            return self._by_o.get(o, _EMPTY)
        return self._spo

    # -- sorted runs ---------------------------------------------------------

    def sorted_run(self, predicate_id, order=RUN_BY_SUBJECT):
        """The predicate's triples as a key-sorted :class:`SortedRun`.

        ``order`` selects the sort column: ``"s"`` sorts by subject (values
        are the objects), ``"o"`` sorts by object (values are the subjects).
        Runs are built lazily on first request, cached per ``(predicate,
        order)``, and invalidated by any mutation touching the predicate.
        Returns ``None`` for a predicate with no triples, so callers can
        fall back to the tuple path without special-casing empty columns.
        """
        if order not in (RUN_BY_SUBJECT, RUN_BY_OBJECT):
            raise ValueError(f"unknown run order: {order!r}")
        key = (predicate_id, order)
        run = self._sorted_runs.get(key)
        if run is not None:
            return run
        bucket = self._by_p.get(predicate_id)
        if not bucket:
            return None
        if order == RUN_BY_SUBJECT:
            pairs = sorted((s, o) for s, _p, o in bucket)
        else:
            pairs = sorted((o, s) for s, _p, o in bucket)
        keys = array("I", (pair[0] for pair in pairs))
        values = array("I", (pair[1] for pair in pairs))
        run = SortedRun(predicate_id, order, keys, values)
        self._sorted_runs[key] = run
        return run

    def _install_sorted_runs(self, runs):
        """Adopt prebuilt runs (snapshot load path, trusted input)."""
        for run in runs:
            self._sorted_runs[(run.predicate, run.order)] = run

    def _invalidate_sorted_runs(self, predicate_id):
        """Drop both cached runs of one predicate after a mutation."""
        if self._sorted_runs:
            self._sorted_runs.pop((predicate_id, RUN_BY_SUBJECT), None)
            self._sorted_runs.pop((predicate_id, RUN_BY_OBJECT), None)

    # -- term-level lookup --------------------------------------------------

    def triples(self, subject=None, predicate=None, object=None):
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return
        decode = self._dictionary.decode
        for s_id, p_id, o_id in self._candidates(*encoded):
            yield Triple(decode(s_id), decode(p_id), decode(o_id))

    def contains(self, triple):
        encoded = self.encode_pattern(triple.subject, triple.predicate, triple.object)
        if encoded is None:
            return False
        return encoded in self._spo

    def count(self, subject=None, predicate=None, object=None):
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        return len(self._candidates(*encoded))

    def estimate_count(self, subject=None, predicate=None, object=None):
        """Cheap cardinality estimate for the optimizer.

        Fully bound or singly/doubly bound patterns are answered exactly from
        the index sizes (constant time); everything else falls back to the
        statistics-based estimate.
        """
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        s, p, o = encoded
        if s is not None or o is not None or p is not None:
            return len(self._candidates(s, p, o))
        return self.statistics.triple_count

    def __len__(self):
        return len(self._spo)

    @property
    def dictionary(self):
        """The term dictionary (id-space evaluation and white-box tests)."""
        return self._dictionary

    def __repr__(self):
        return f"IndexedStore(len={len(self)}, terms={len(self._dictionary)})"


class GenerationDraft:
    """A copy-on-write draft of an :class:`IndexedStore`'s next generation.

    Built by :meth:`IndexedStore.begin_generation` and driven by the MVCC
    writer (:mod:`repro.store.mvcc`).  The draft's store starts as a
    structural-sharing copy of the base generation:

    * the term dictionary is *shared* (append-only; ids are stable forever),
    * the id-triple set is copied (O(n), the per-transaction floor),
    * the six hash indexes copy their **dict spines** but share every bucket
      set with the base; a bucket is copied exactly once, the first time a
      mutation touches it (``_owned`` tracks copied keys per index),
    * sorted runs are shared and only the runs of *touched predicates* are
      dropped at :meth:`finish` — untouched predicates keep their (immutable)
      runs across generations with zero rebuild cost,
    * statistics are deep-copied once and maintained incrementally.

    The base store is never mutated: concurrent readers pinned to it see a
    frozen, consistent state for as long as they hold the reference.
    """

    def __init__(self, base):
        store = IndexedStore()
        store._dictionary = base._dictionary
        store._spo = set(base._spo)
        store._by_s = base._by_s.copy()
        store._by_p = base._by_p.copy()
        store._by_o = base._by_o.copy()
        store._by_sp = base._by_sp.copy()
        store._by_po = base._by_po.copy()
        store._by_so = base._by_so.copy()
        # dict.copy() is a single C-level call, so it is atomic with respect
        # to readers lazily inserting sorted runs into the base generation.
        store._sorted_runs = base._sorted_runs.copy()
        store.statistics = base.statistics.copy()
        store.version = base.version
        self.store = store
        #: Keys whose bucket has been copied, aligned with _index_table order.
        self._owned = tuple(set() for _ in range(6))
        self._touched_predicates = set()
        self.inserted = 0
        self.deleted = 0

    def _index_entries(self, s, p, o):
        store = self.store
        return (
            (store._by_s, s), (store._by_p, p), (store._by_o, o),
            (store._by_sp, (s, p)), (store._by_po, (p, o)),
            (store._by_so, (s, o)),
        )

    def add(self, triple):
        """Insert one ground triple into the draft; True when it was new."""
        store = self.store
        encode = store._dictionary.encode
        ids = (encode(triple.subject), encode(triple.predicate),
               encode(triple.object))
        if ids in store._spo:
            return False
        store._spo.add(ids)
        s, p, o = ids
        for owned, (index, key) in zip(self._owned, self._index_entries(s, p, o)):
            bucket = index.get(key)
            if bucket is None:
                index[key] = {ids}
                owned.add(key)
            elif key in owned:
                bucket.add(ids)
            else:
                copied = set(bucket)
                copied.add(ids)
                index[key] = copied
                owned.add(key)
        store.statistics.observe(triple)
        self._touched_predicates.add(p)
        self.inserted += 1
        return True

    def remove(self, triple):
        """Remove one ground triple from the draft; True when it was present."""
        store = self.store
        encoded = store.encode_pattern(triple.subject, triple.predicate,
                                       triple.object)
        if encoded is None or encoded not in store._spo:
            return False
        store._spo.discard(encoded)
        s, p, o = encoded
        for owned, (index, key) in zip(self._owned, self._index_entries(s, p, o)):
            bucket = index[key]
            if key not in owned:
                bucket = set(bucket)
                index[key] = bucket
                owned.add(key)
            bucket.discard(encoded)
            if not bucket:
                del index[key]
                owned.discard(key)
        store.statistics.forget(triple)
        self._touched_predicates.add(p)
        self.deleted += 1
        return True

    @property
    def mutated(self):
        """True when at least one triple was actually inserted or removed."""
        return bool(self.inserted or self.deleted)

    def finish(self, version):
        """Seal the draft as generation ``version`` and return its store.

        Sorted runs of every touched predicate are dropped (they rebuild
        lazily on first use in the new generation); untouched predicates
        keep the shared runs of the previous generation.
        """
        store = self.store
        for predicate_id in self._touched_predicates:
            store._sorted_runs.pop((predicate_id, RUN_BY_SUBJECT), None)
            store._sorted_runs.pop((predicate_id, RUN_BY_OBJECT), None)
        store.version = version
        return store
