"""Dictionary-encoded, fully indexed triple store (the "native engine" model).

The paper's native engines (Sesame with the native SAIL, Virtuoso) answer
triple patterns from physical index structures, which is what lets them
evaluate Q1, Q3c, Q10, Q11, and Q12c in (near-)constant time regardless of
document size.  :class:`IndexedStore` reproduces that access-path profile in
pure Python:

* all terms are dictionary-encoded to integers (:mod:`.dictionary`),
* triples are stored once as id-triples,
* six hash indexes (S, P, O, SP, PO, SO) map bound components to the set of
  matching triple positions, so every possible binding combination of a
  triple pattern has a direct access path,
* per-predicate and per-class statistics are maintained for the optimizer.
"""

from __future__ import annotations

from ..rdf.triple import Triple
from .base import TripleStore
from .dictionary import TermDictionary
from .statistics import StoreStatistics


class IndexedStore(TripleStore):
    """A hash-indexed triple store with dictionary encoding."""

    name = "indexed"

    def __init__(self, triples=None):
        self._dictionary = TermDictionary()
        self._spo = set()          # full triples as id 3-tuples
        self._by_s = {}
        self._by_p = {}
        self._by_o = {}
        self._by_sp = {}
        self._by_po = {}
        self._by_so = {}
        self.statistics = StoreStatistics()
        if triples is not None:
            self.load_graph(triples)

    # -- mutation -----------------------------------------------------------

    def add(self, triple):
        ids = (
            self._dictionary.encode(triple.subject),
            self._dictionary.encode(triple.predicate),
            self._dictionary.encode(triple.object),
        )
        if ids in self._spo:
            return False
        self._spo.add(ids)
        s, p, o = ids
        self._by_s.setdefault(s, set()).add(ids)
        self._by_p.setdefault(p, set()).add(ids)
        self._by_o.setdefault(o, set()).add(ids)
        self._by_sp.setdefault((s, p), set()).add(ids)
        self._by_po.setdefault((p, o), set()).add(ids)
        self._by_so.setdefault((s, o), set()).add(ids)
        self.statistics.observe(triple)
        return True

    # -- lookup ---------------------------------------------------------------

    def _encode_pattern(self, subject, predicate, object):
        """Encode bound pattern positions; returns None if a bound term is unknown."""
        encoded = []
        for term in (subject, predicate, object):
            if term is None:
                encoded.append(None)
                continue
            term_id = self._dictionary.lookup(term)
            if term_id is None:
                return None
            encoded.append(term_id)
        return tuple(encoded)

    def _candidates(self, s, p, o):
        """Return the candidate id-triple set for an encoded pattern."""
        if s is not None and p is not None and o is not None:
            return {(s, p, o)} if (s, p, o) in self._spo else set()
        if s is not None and p is not None:
            return self._by_sp.get((s, p), set())
        if p is not None and o is not None:
            return self._by_po.get((p, o), set())
        if s is not None and o is not None:
            return self._by_so.get((s, o), set())
        if s is not None:
            return self._by_s.get(s, set())
        if p is not None:
            return self._by_p.get(p, set())
        if o is not None:
            return self._by_o.get(o, set())
        return self._spo

    def triples(self, subject=None, predicate=None, object=None):
        encoded = self._encode_pattern(subject, predicate, object)
        if encoded is None:
            return
        decode = self._dictionary.decode
        for s_id, p_id, o_id in self._candidates(*encoded):
            yield Triple(decode(s_id), decode(p_id), decode(o_id))

    def contains(self, triple):
        encoded = self._encode_pattern(triple.subject, triple.predicate, triple.object)
        if encoded is None:
            return False
        return encoded in self._spo

    def count(self, subject=None, predicate=None, object=None):
        encoded = self._encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        return len(self._candidates(*encoded))

    def estimate_count(self, subject=None, predicate=None, object=None):
        """Cheap cardinality estimate for the optimizer.

        Fully bound or singly/doubly bound patterns are answered exactly from
        the index sizes (constant time); everything else falls back to the
        statistics-based estimate.
        """
        encoded = self._encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        s, p, o = encoded
        if s is not None or o is not None or p is not None:
            return len(self._candidates(s, p, o))
        return self.statistics.triple_count

    def __len__(self):
        return len(self._spo)

    @property
    def dictionary(self):
        """The term dictionary (exposed for white-box tests)."""
        return self._dictionary

    def __repr__(self):
        return f"IndexedStore(len={len(self)}, terms={len(self._dictionary)})"
