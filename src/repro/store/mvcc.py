"""Multi-version concurrency control over the snapshot-style stores.

SPARQL Update turns the previously read-only stores into shared mutable
state.  Rather than locking readers, :class:`MvccStore` keeps every published
store *generation* immutable: readers pin the current generation with one
attribute read and keep scanning it unperturbed; a single serialized writer
builds the next generation as a copy-on-write draft (``begin_generation`` on
the underlying store) and publishes it atomically by swapping one reference.

Invariants:

* A published generation is never mutated again.  Readers holding it see a
  frozen, consistent state for as long as they keep the reference.  (The one
  deliberate exception is lazy sorted-run materialization inside
  ``IndexedStore`` — a cache fill, not a logical mutation.)
* Publishing bumps ``version`` monotonically; the engine's prepared-statement
  cache and planner statistics key off it to invalidate stale plans.
* ``write_transaction`` holds the writer lock across WHERE evaluation *and*
  application, so read-modify-write updates never lose concurrent writes.

Readers should go through :func:`read_snapshot` at operation start and use
the returned plain store for the whole operation; the helper is a no-op on
non-MVCC stores, so callers need not know which kind they were given.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

from ..obs import get_registry
from .base import TripleStore


def read_snapshot(store):
    """Pin the current generation of ``store`` for a whole read operation.

    Returns the underlying immutable generation when ``store`` is an
    :class:`MvccStore`, and ``store`` itself otherwise.  One attribute read;
    atomic with respect to concurrent publishes.
    """
    snapshot = getattr(store, "snapshot", None)
    if snapshot is not None:
        return snapshot()
    return store


class WriteTransaction:
    """Handle yielded by :meth:`MvccStore.write_transaction`.

    ``base`` is the pre-update generation (evaluate WHERE clauses against
    it); ``insert``/``remove`` mutate the copy-on-write draft.  Deletions and
    insertions may be issued in any order — the SPARQL Update executor applies
    deletes first per the spec, but the draft itself is order-agnostic.
    """

    def __init__(self, base, draft):
        self.base = base
        self._draft = draft

    def insert(self, triple):
        """Add one ground triple to the next generation; True when new."""
        return self._draft.add(triple)

    def remove(self, triple):
        """Remove one ground triple from the next generation; True if present."""
        return self._draft.remove(triple)

    @property
    def inserted(self):
        return self._draft.inserted

    @property
    def deleted(self):
        return self._draft.deleted


class MvccStore(TripleStore):
    """Snapshot-isolated facade over a :class:`~repro.store.IndexedStore` or
    :class:`~repro.store.MemoryStore`.

    Reads delegate to the current generation; point mutations (``add`` /
    ``remove``) run as single-triple transactions.  Bulk ingestion and the
    SPARQL Update executor use :meth:`write_transaction` directly so one
    update operation publishes exactly one generation.
    """

    def __init__(self, store):
        self._current = store
        self._writer_lock = threading.RLock()
        registry = get_registry()
        self._lock_wait_seconds = registry.histogram(
            "sp2b_mvcc_writer_lock_wait_seconds",
            "Time a write transaction waited to acquire the serialized "
            "writer lock.",
        )
        self._generations_published = registry.counter(
            "sp2b_mvcc_generations_published_total",
            "Store generations published by mutating write transactions.",
        )

    # -- snapshots and versioning ------------------------------------------

    def snapshot(self):
        """The current generation (an immutable plain store)."""
        return self._current

    @property
    def version(self):
        return self._current.version

    @contextmanager
    def write_transaction(self):
        """Serialize one writer; yield a :class:`WriteTransaction`.

        On normal exit, a mutated draft is sealed with ``version + 1`` and
        published atomically; an unmutated draft is discarded without a
        version bump (no-op updates must not invalidate prepared plans).  On
        exception nothing is published.
        """
        lock_requested = perf_counter()
        with self._writer_lock:
            # Reentrant acquires (nested transactions) report ~0 wait.
            self._lock_wait_seconds.observe(perf_counter() - lock_requested)
            base = self._current
            draft = base.begin_generation()
            transaction = WriteTransaction(base, draft)
            yield transaction
            if draft.mutated:
                self._current = draft.finish(base.version + 1)
                self._generations_published.inc()

    # -- TripleStore interface ---------------------------------------------

    @property
    def name(self):
        return f"mvcc({self._current.name})"

    @property
    def supports_id_access(self):
        return self._current.supports_id_access

    def add(self, triple):
        with self.write_transaction() as txn:
            return txn.insert(triple)

    def remove(self, triple):
        with self.write_transaction() as txn:
            return txn.remove(triple)

    def bulk_load(self, triples):
        with self.write_transaction() as txn:
            added = 0
            for triple in triples:
                if txn.insert(triple):
                    added += 1
            return added

    load_graph = bulk_load

    def triples(self, subject=None, predicate=None, object=None):
        return self._current.triples(subject, predicate, object)

    def contains(self, triple):
        return self._current.contains(triple)

    def count(self, subject=None, predicate=None, object=None):
        return self._current.count(subject, predicate, object)

    def estimate_count(self, subject=None, predicate=None, object=None):
        return self._current.estimate_count(subject, predicate, object)

    def __len__(self):
        return len(self._current)

    def save(self, path, metadata=None):
        return self._current.save(path, metadata=metadata)

    def __getattr__(self, attribute):
        # Anything else (statistics, dictionary, id-space access, sorted
        # runs) resolves against the current generation.  Readers that need
        # a *consistent* view across several calls must pin a snapshot first.
        return getattr(self._current, attribute)

    def __repr__(self):
        return f"MvccStore(version={self.version}, current={self._current!r})"
