"""Abstract triple-store interface shared by all storage backends.

The paper distinguishes *in-memory engines* (ARQ, Sesame-memory), which scan
the loaded document, from *native engines* (Sesame-native, Virtuoso), which
answer triple patterns from physical indexes.  Both families are modelled as
implementations of :class:`TripleStore`; the SPARQL evaluator is written
against this interface only, so engine behaviour differences come purely from
the storage/access-path characteristics — exactly the axis SP2Bench probes.
"""

from __future__ import annotations

import abc


class TripleStore(abc.ABC):
    """Interface every storage backend implements."""

    #: Human-readable backend name used in benchmark reports.
    name = "abstract"

    #: True when the backend additionally offers the id-level access interface
    #: (``encode_pattern`` / ``triples_ids`` / ``count_ids`` plus a
    #: ``dictionary`` property).  The SPARQL evaluator checks this capability
    #: to decide between id-space and term-space query execution.
    supports_id_access = False

    #: Monotonic mutation counter.  Every successful ``add``/``remove`` (and
    #: every published MVCC generation) bumps it; the engine's prepared-
    #: statement cache compares it to detect stale plans and stale planner
    #: statistics.  Class attribute 0 until the first mutation, so unchanged
    #: stores pay nothing.
    version = 0

    @abc.abstractmethod
    def add(self, triple):
        """Add one ground triple.  Returns True if it was new."""

    def remove(self, triple):
        """Remove one ground triple.  Returns True if it was present."""
        raise NotImplementedError(f"{type(self).__name__} does not support removal")

    @abc.abstractmethod
    def triples(self, subject=None, predicate=None, object=None):
        """Yield stored triples matching the wildcard pattern."""

    @abc.abstractmethod
    def __len__(self):
        """Total number of stored triples."""

    # -- generic conveniences built on the abstract core -------------------

    def load_graph(self, graph):
        """Bulk-load every triple of an iterable/Graph.  Returns count added."""
        added = 0
        for triple in graph:
            if self.add(triple):
                added += 1
        return added

    def bulk_load(self, triples):
        """Stream an iterable of triples into the store.  Returns count added.

        The sink end of the streaming pipelines (``ntriples.load_into``,
        ``DblpGenerator.generate_into``): the iterable is consumed lazily, so
        no intermediate list or Graph is ever materialized.  The default
        delegates to :meth:`load_graph`; backends with cheaper bulk insert
        paths may override.
        """
        return self.load_graph(triples)

    def contains(self, triple):
        """True if the exact ground triple is stored."""
        for _match in self.triples(triple.subject, triple.predicate, triple.object):
            return True
        return False

    def count(self, subject=None, predicate=None, object=None):
        """Number of triples matching the pattern.

        Backends with indexes override this with a cheaper implementation;
        the default counts by iteration.
        """
        return sum(1 for _t in self.triples(subject, predicate, object))

    def estimate_count(self, subject=None, predicate=None, object=None):
        """Estimated number of matches, used by the query optimizer.

        The default estimate is exact (it counts); index-backed stores return
        cheap estimates from their statistics instead.
        """
        return self.count(subject, predicate, object)

    def __iter__(self):
        return self.triples()

    def __contains__(self, triple):
        return self.contains(triple)
