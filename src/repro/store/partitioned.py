"""Hash-partitioned store: K indexed segments sharing one term dictionary.

The scale-out substrate (ROADMAP item 2).  :class:`PartitionedStore` splits
the flat u32 id-triple set — the exact form ``.sp2b`` snapshots store — into
``K`` :class:`~repro.store.IndexedStore` segments by **subject id**
(``subject_id % K``), all sharing **one** :class:`TermDictionary`:

* every triple lives in exactly one segment, so per-segment
  :class:`StoreStatistics` merge exactly (see
  :func:`~repro.store.statistics.merge_statistics`) and planner estimates
  are identical to the unpartitioned store's;
* because the dictionary is shared, ids are globally comparable — rows
  produced by different segments join and union without any re-mapping;
* the store itself remains a complete :class:`TripleStore`: pattern access
  routes to the owning segment when the subject id is bound and chains over
  all segments otherwise, so every existing evaluation path stays correct
  with a :class:`PartitionedStore` in place of a single store.  ``K == 1``
  is the degenerate case and behaves like a plain indexed store.

The parallel scatter-gather execution layer over the segments lives in
:mod:`repro.sparql.scatter`; this module is pure storage and knows nothing
about processes.  Persistence writes one standalone ``.sp2b`` snapshot per
segment plus a small JSON manifest (see ``docs/snapshot-format.md``).
"""

from __future__ import annotations

import json
import os
from array import array

from ..obs import get_registry
from ..rdf.triple import Triple
from .base import TripleStore
from .indexed_store import RUN_BY_OBJECT, RUN_BY_SUBJECT, IndexedStore, SortedRun
from .snapshot import SnapshotFormatError, load_snapshot
from .statistics import merge_statistics

#: Manifest marker so a stray JSON file is not mistaken for a partition set.
MANIFEST_FORMAT = "sp2b-partition-manifest"
MANIFEST_VERSION = 1


def partition_of(subject_id, shards):
    """The segment owning a subject id (the partitioning key)."""
    return subject_id % shards


class PartitionedStore(TripleStore):
    """K :class:`IndexedStore` segments partitioned by subject id."""

    name = "partitioned"
    supports_id_access = True
    supports_sorted_runs = True

    def __init__(self, segments, parallel=None):
        segments = tuple(segments)
        if not segments:
            raise ValueError("PartitionedStore needs at least one segment")
        dictionary = segments[0].dictionary
        for segment in segments[1:]:
            if segment.dictionary is not dictionary:
                raise ValueError("segments must share one term dictionary")
        self._segments = segments
        self._dictionary = dictionary
        self._statistics = None
        self._merged_runs = {}
        self.version = 0
        # Shape telemetry: gauges describing the partitioning the process
        # is currently serving (last-constructed store wins).
        registry = get_registry()
        registry.gauge(
            "sp2b_partition_segments",
            "Segment count of the most recently built partitioned store.",
        ).set(len(segments))
        triples_gauge = registry.gauge(
            "sp2b_partition_segment_triples",
            "Triples per segment of the most recently built partitioned "
            "store.",
            labels=("segment",),
        )
        for index, segment in enumerate(segments):
            triples_gauge.labels(segment=str(index)).set(len(segment))
        #: Scatter-gather parallelism policy read by repro.sparql.scatter:
        #: None = auto (process pool when fork is available), False = always
        #: evaluate segments sequentially in-process, True = require a pool.
        self.parallel = parallel

    # -- construction --------------------------------------------------------

    @classmethod
    def from_id_triples(cls, dictionary, id_triples, shards, parallel=None):
        """Partition raw id 3-tuples into ``shards`` segments by subject id."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        buckets = [[] for _ in range(shards)]
        for ids in id_triples:
            ids = tuple(ids)
            buckets[partition_of(ids[0], shards)].append(ids)
        segments = [
            IndexedStore.from_id_triples(dictionary, bucket)
            for bucket in buckets
        ]
        return cls(segments, parallel=parallel)

    @classmethod
    def from_store(cls, store, shards, parallel=None):
        """Partition an existing store (converting to id form if needed)."""
        if not getattr(store, "supports_id_access", False):
            indexed = IndexedStore()
            indexed.bulk_load(store.triples())
            store = indexed
        return cls.from_id_triples(
            store.dictionary, store.id_triples(), shards, parallel=parallel
        )

    # -- segment-set interface ----------------------------------------------

    @property
    def segments(self):
        """The segment stores, in partition order (the scatter targets)."""
        return self._segments

    @property
    def shard_count(self):
        return len(self._segments)

    def segment_of(self, subject_id):
        """The segment store owning a subject id."""
        return self._segments[partition_of(subject_id, len(self._segments))]

    @property
    def dictionary(self):
        return self._dictionary

    @property
    def statistics(self):
        """Merged statistics over all segments (computed lazily, cached).

        Structurally equal to the statistics of an unpartitioned store over
        the same triples — the invariant planner estimates depend on.
        """
        if self._statistics is None:
            self._statistics = merge_statistics(
                segment.statistics for segment in self._segments
            )
        return self._statistics

    # -- id-level access -----------------------------------------------------

    def encode_pattern(self, subject, predicate, object):
        """Encode bound positions; None when a bound term is unknown."""
        encoded = []
        for term in (subject, predicate, object):
            if term is None:
                encoded.append(None)
                continue
            term_id = self._dictionary.lookup(term)
            if term_id is None:
                return None
            encoded.append(term_id)
        return tuple(encoded)

    def triples_ids(self, subject=None, predicate=None, object=None):
        """Id-triple access: routed when the subject is bound, else chained."""
        if subject is not None:
            return self.segment_of(subject).triples_ids(
                subject, predicate, object
            )

        def generate():
            for segment in self._segments:
                yield from segment.triples_ids(subject, predicate, object)

        return generate()

    def count_ids(self, subject=None, predicate=None, object=None):
        if subject is not None:
            return self.segment_of(subject).count_ids(
                subject, predicate, object
            )
        return sum(
            segment.count_ids(subject, predicate, object)
            for segment in self._segments
        )

    def id_triples(self):
        for segment in self._segments:
            yield from segment.id_triples()

    def sorted_run(self, predicate_id, order=RUN_BY_SUBJECT):
        """A predicate run merged across segments (cached per predicate).

        Segments hold disjoint triples, so concatenating their runs and
        re-sorting yields exactly the whole-store run.  Built lazily for the
        evaluation paths that run against the global view (cross-segment
        "broadcast" BGPs); segment-local evaluation uses each segment's own
        runs and never triggers a merge.
        """
        if order not in (RUN_BY_SUBJECT, RUN_BY_OBJECT):
            raise ValueError(f"unknown run order: {order!r}")
        key = (predicate_id, order)
        run = self._merged_runs.get(key)
        if run is not None:
            return run
        parts = [
            segment.sorted_run(predicate_id, order)
            for segment in self._segments
        ]
        parts = [part for part in parts if part is not None]
        if not parts:
            return None
        if len(parts) == 1:
            run = parts[0]
        else:
            pairs = sorted(
                pair
                for part in parts
                for pair in zip(part.keys, part.values)
            )
            keys = array("I", (pair[0] for pair in pairs))
            values = array("I", (pair[1] for pair in pairs))
            run = SortedRun(predicate_id, order, keys, values)
        self._merged_runs[key] = run
        return run

    # -- term-level access ---------------------------------------------------

    def triples(self, subject=None, predicate=None, object=None):
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return
        decode = self._dictionary.decode
        for s_id, p_id, o_id in self.triples_ids(*encoded):
            yield Triple(decode(s_id), decode(p_id), decode(o_id))

    def contains(self, triple):
        encoded = self.encode_pattern(
            triple.subject, triple.predicate, triple.object
        )
        if encoded is None:
            return False
        return self.count_ids(*encoded) > 0

    def count(self, subject=None, predicate=None, object=None):
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        return self.count_ids(*encoded)

    def estimate_count(self, subject=None, predicate=None, object=None):
        encoded = self.encode_pattern(subject, predicate, object)
        if encoded is None:
            return 0
        s, p, o = encoded
        if s is not None or p is not None or o is not None:
            return self.count_ids(s, p, o)
        return self.statistics.triple_count

    def __len__(self):
        return sum(len(segment) for segment in self._segments)

    # -- mutation ------------------------------------------------------------

    def add(self, triple):
        """Route one triple to its owning segment (by subject id)."""
        subject_id = self._dictionary.encode(triple.subject)
        added = self.segment_of(subject_id).add(triple)
        if added:
            self._mutated()
        return added

    def remove(self, triple):
        subject_id = self._dictionary.lookup(triple.subject)
        if subject_id is None:
            return False
        removed = self.segment_of(subject_id).remove(triple)
        if removed:
            self._mutated()
        return removed

    def _mutated(self):
        """Invalidate merged caches; bumping ``version`` also retires any
        scatter pool forked from the previous state of the segments."""
        self._statistics = None
        self._merged_runs.clear()
        self.version += 1

    # -- persistence ---------------------------------------------------------

    def save(self, path, metadata=None):
        """Write one ``.sp2b`` snapshot per segment plus a JSON manifest.

        ``path`` names the manifest; segment snapshots land next to it as
        ``<path>.seg0``, ``<path>.seg1``, ...  Each segment file is a
        standalone, individually loadable snapshot (it embeds the shared
        dictionary in full); :meth:`load` re-shares one dictionary across
        the loaded segments.  The manifest is written last, atomically, so
        a crash mid-save never leaves a manifest pointing at missing
        segment files.
        """
        path = os.fspath(path)
        segment_names = []
        for index, segment in enumerate(self._segments):
            segment_name = f"{os.path.basename(path)}.seg{index}"
            segment.save(
                os.path.join(os.path.dirname(path) or ".", segment_name),
                metadata={"segment": index, "shards": self.shard_count},
            )
            segment_names.append(segment_name)
        manifest = {
            "format": MANIFEST_FORMAT,
            "manifest_version": MANIFEST_VERSION,
            "shards": self.shard_count,
            "segments": segment_names,
            "triples": len(self),
            "terms": len(self._dictionary),
            "metadata": dict(metadata) if metadata else {},
        }
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        return manifest

    @classmethod
    def load(cls, path, parallel=None):
        """Rebuild a partitioned store from a manifest written by save()."""
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise SnapshotFormatError(
                f"{path}: not a partition manifest ({error})"
            ) from error
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != MANIFEST_FORMAT
        ):
            raise SnapshotFormatError(f"{path}: not a partition manifest")
        if manifest.get("manifest_version") != MANIFEST_VERSION:
            raise SnapshotFormatError(
                f"{path}: unsupported manifest version "
                f"{manifest.get('manifest_version')!r}"
            )
        directory = os.path.dirname(path) or "."
        segments = [
            load_snapshot(os.path.join(directory, name), expected_kind="indexed")
            for name in manifest["segments"]
        ]
        if len(segments) != manifest.get("shards"):
            raise SnapshotFormatError(
                f"{path}: manifest lists {manifest.get('shards')} shards "
                f"but {len(segments)} segment files"
            )
        # Every segment file embeds an identical copy of the dictionary the
        # segments shared at save time (same object, hence byte-identical
        # sections, hence identical id -> term mappings).  Re-point all
        # segments at the first copy so the loaded store shares one
        # dictionary again instead of keeping K redundant copies.
        shared = segments[0].dictionary
        for segment in segments[1:]:
            if len(segment.dictionary) != len(shared):
                raise SnapshotFormatError(
                    f"{path}: segment dictionaries diverge "
                    f"({len(segment.dictionary)} != {len(shared)} terms)"
                )
            segment._dictionary = shared
        return cls(segments, parallel=parallel)

    def __repr__(self):
        return (
            f"PartitionedStore(shards={self.shard_count}, len={len(self)}, "
            f"terms={len(self._dictionary)})"
        )


def is_partition_manifest(path):
    """Cheap check whether ``path`` holds a partition manifest."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(512)
    except OSError:
        return False
    return MANIFEST_FORMAT.encode("ascii") in head


def save_partitioned(store, path, shards, metadata=None, parallel=None):
    """Partition ``store`` into ``shards`` segments and save the set."""
    partitioned = PartitionedStore.from_store(store, shards, parallel=parallel)
    partitioned.save(path, metadata=metadata)
    return partitioned
