"""Versioned binary snapshots of triple stores (the persistent-store model).

SP2Bench separates document generation and loading from query time, and the
paper reports loading times per engine precisely because native engines
(Sesame-native, Virtuoso) amortize the expensive physical build into a
reusable on-disk database (Section V).  This module is that on-disk database
for the reproduction: a fully built :class:`~.indexed_store.IndexedStore` is
serialized once — term dictionary, id-triple set, grouped images of the six
hash indexes, and the :class:`~.statistics.StoreStatistics` — and every later
run rebuilds the store from the snapshot through bulk constructors that skip
the per-triple dictionary encoding, statistics observation, and index churn
of the incremental ``add()`` path.  :class:`~.memory_store.MemoryStore`
snapshots keep the two engine families symmetric with a trivial
N-Triples-backed payload (the in-memory engines of the paper re-parse their
document; only the parse is amortized, matching their cost model).

File layout (all integers little-endian)::

    magic    8s   b"SP2BSNAP"
    version  u16  FORMAT_VERSION
    kind     u8   1 = indexed, 2 = memory
    flags    u8   reserved (0)
    meta_len u32  length of the metadata JSON that follows the header
    data_len u64  length of the payload that follows the metadata
    crc32    u32  CRC-32 of metadata + payload
    metadata      JSON object (generator config, statistics, free-form)
    payload       kind-specific sections (see _pack_indexed / _pack_memory)

The version is bumped whenever the payload layout changes; readers reject
other versions (callers such as the dataset cache then rebuild).  The CRC
guards against truncated or bit-rotted cache entries.
"""

from __future__ import annotations

import gc
import json
import logging
import os
import struct
import sys
import zlib
from array import array

from ..rdf import ntriples
from ..rdf.terms import BNode, Literal, URIRef
from .dictionary import TermDictionary
from .statistics import StoreStatistics

MAGIC = b"SP2BSNAP"

#: Bump on any payload layout change.  Version 2 appended the sorted-run
#: section to the indexed payload; version-1 files are still readable (the
#: runs section is simply absent and runs are rebuilt lazily on demand).
FORMAT_VERSION = 2

#: Versions this build can read.  Anything else is rejected and callers such
#: as the dataset cache rebuild from source.
READ_VERSIONS = (1, 2)

KIND_INDEXED = 1
KIND_MEMORY = 2

_HEADER = struct.Struct("<8sHBBIQI")
_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Term kind tags in the dictionary section.
_TERM_URI = 0
_TERM_BNODE = 1
_TERM_LITERAL = 2

_LOG = logging.getLogger(__name__)

#: Set after the first legacy-version load so the lazy-rebuild notice is
#: logged once per process, not once per cached snapshot.
_warned_legacy_runs = False


class SnapshotError(Exception):
    """Base class for snapshot read/write failures."""


class SnapshotFormatError(SnapshotError):
    """The file is not an SP2Bench snapshot (or its structure is malformed)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an incompatible format version."""


class SnapshotCorruptError(SnapshotError):
    """The snapshot is truncated or fails its integrity check."""


# -- public API --------------------------------------------------------------


def save_snapshot(store, path, metadata=None):
    """Serialize ``store`` to a snapshot file at ``path`` (atomically).

    ``metadata`` is an optional JSON-serializable dict stored alongside the
    payload; :func:`read_snapshot_metadata` retrieves it without loading the
    store.  Returns ``path``.
    """
    # Imported here: the store modules import this module from save()/load().
    from .indexed_store import IndexedStore
    from .memory_store import MemoryStore

    if isinstance(store, IndexedStore):
        kind, payload = KIND_INDEXED, _pack_indexed(store)
    elif isinstance(store, MemoryStore):
        kind, payload = KIND_MEMORY, _pack_memory(store)
    else:
        raise SnapshotFormatError(
            f"no snapshot serialization for {type(store).__name__}"
        )
    meta = dict(metadata or {})
    meta.setdefault("store", store.name)
    meta.setdefault("triples", len(store))
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    crc = zlib.crc32(payload, zlib.crc32(meta_bytes))
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, kind, 0, len(meta_bytes), len(payload), crc
    )
    # Write-then-rename keeps concurrent readers (and interrupted writers)
    # from ever observing a half-written snapshot; a failed write must not
    # leak its temp file into the cache directory.
    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(header)
            handle.write(meta_bytes)
            handle.write(payload)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def load_snapshot(path, expected_kind=None):
    """Load a snapshot file and return the rebuilt store.

    ``expected_kind`` (``"indexed"`` / ``"memory"``) rejects snapshots of the
    other store family up front.  Raises :class:`SnapshotFormatError` /
    :class:`SnapshotVersionError` / :class:`SnapshotCorruptError` on invalid
    input — callers holding a cache treat any :class:`SnapshotError` as a
    miss and rebuild.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    version, kind, meta_bytes, payload = _split(path, data, verify=True)
    kind_name = "indexed" if kind == KIND_INDEXED else "memory"
    if expected_kind is not None and expected_kind != kind_name:
        raise SnapshotFormatError(
            f"{path}: snapshot holds a {kind_name} store, expected {expected_kind}"
        )
    del meta_bytes
    # Rebuilding a store allocates hundreds of thousands of tracked
    # containers at once; pausing the generational collector for the burst
    # shaves ~30% off load time (nothing allocated here can be cyclic
    # garbage — every object ends up reachable from the returned store).
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        if kind == KIND_INDEXED:
            return _unpack_indexed(path, payload, version)
        return _unpack_memory(payload)
    finally:
        if was_enabled:
            gc.enable()


def read_snapshot_metadata(path):
    """Return the metadata dict of a snapshot without loading its payload."""
    with open(path, "rb") as handle:
        head = handle.read(_HEADER.size)
        _check_header(path, head)
        _magic, _version, kind, _flags, meta_len, data_len, _crc = _HEADER.unpack(head)
        meta_bytes = handle.read(meta_len)
    if len(meta_bytes) != meta_len:
        raise SnapshotCorruptError(f"{path}: truncated snapshot metadata")
    try:
        metadata = json.loads(meta_bytes.decode("utf-8"))
    except ValueError as error:
        raise SnapshotCorruptError(f"{path}: unreadable snapshot metadata") from error
    metadata.setdefault("store", "indexed" if kind == KIND_INDEXED else "memory")
    return metadata


# -- container framing -------------------------------------------------------


def _check_header(path, head):
    if len(head) < _HEADER.size or head[:8] != MAGIC:
        raise SnapshotFormatError(f"{path}: not an SP2Bench snapshot")
    version = _HEADER.unpack(head[: _HEADER.size])[1]
    if version not in READ_VERSIONS:
        raise SnapshotVersionError(
            f"{path}: snapshot format version {version}, this build reads "
            f"versions {', '.join(map(str, READ_VERSIONS))}"
        )


def _split(path, data, verify):
    _check_header(path, data[: _HEADER.size])
    _magic, version, kind, _flags, meta_len, data_len, crc = _HEADER.unpack(
        data[: _HEADER.size]
    )
    if kind not in (KIND_INDEXED, KIND_MEMORY):
        raise SnapshotFormatError(f"{path}: unknown store kind {kind}")
    meta_start = _HEADER.size
    data_start = meta_start + meta_len
    if len(data) != data_start + data_len:
        raise SnapshotCorruptError(f"{path}: truncated snapshot")
    meta_bytes = data[meta_start:data_start]
    payload = data[data_start:]
    if verify and zlib.crc32(payload, zlib.crc32(meta_bytes)) != crc:
        raise SnapshotCorruptError(f"{path}: snapshot integrity check failed")
    return version, kind, meta_bytes, payload


# -- low-level helpers -------------------------------------------------------


def _u32_array(values):
    """Pack an iterable of ints as a little-endian u32 array."""
    packed = array("I", values)
    if packed.itemsize != 4:
        # Exotic platform where C unsigned int is not 32-bit: repack exactly.
        return struct.pack(f"<{len(packed)}I", *packed)
    if sys.byteorder == "big":
        packed.byteswap()
    return packed.tobytes()


class _Reader:
    """Sequential reader over a payload bytes object."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data):
        self._data = data
        self._pos = 0

    def _unpack(self, fmt):
        try:
            value = fmt.unpack_from(self._data, self._pos)[0]
        except struct.error as error:
            raise SnapshotCorruptError("snapshot payload ends prematurely") from error
        self._pos += fmt.size
        return value

    def u8(self):
        return self._unpack(_U8)

    def u32(self):
        return self._unpack(_U32)

    def u64(self):
        return self._unpack(_U64)

    def raw(self, length):
        end = self._pos + length
        if end > len(self._data):
            raise SnapshotCorruptError("snapshot payload ends prematurely")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def u32_array(self, count):
        chunk = self.raw(4 * count)
        values = array("I")
        if values.itemsize != 4:
            return array("Q", struct.unpack(f"<{count}I", chunk))
        values.frombytes(chunk)
        if sys.byteorder == "big":
            values.byteswap()
        return values

    def string(self):
        return self.raw(self.u32()).decode("utf-8")


def _append_string(out, text):
    encoded = text.encode("utf-8")
    out.append(_U32.pack(len(encoded)))
    out.append(encoded)


# -- indexed-store payload ---------------------------------------------------
#
# Sections, in order:
#   dictionary   term kinds + datatype/language tables + one shared text blob
#   triples      the id-triple set as a flat u32 array
#   indexes      six grouped index images (singleton and multi buckets split,
#                members as positions into the triples section) — the bulk
#                rebuild data that lets load skip per-triple index churn
#   statistics   StoreStatistics in id space (decoded through the dictionary
#                on load instead of being re-observed per triple)
#   runs         (version >= 2) predicate-sorted id runs for the batch
#                kernels: run count, then per run the predicate id, the sort
#                order tag (0 = by subject, 1 = by object), the length, and
#                the two u32 columns — absent in version-1 files, in which
#                case runs are rebuilt lazily on first use


def _pack_indexed(store):
    out = []
    _pack_dictionary(out, store.dictionary)
    triples = list(store._spo)
    out.append(_U32.pack(len(triples)))
    out.append(_u32_array(component for triple in triples for component in triple))
    positions = {triple: index for index, triple in enumerate(triples)}
    for arity, index in store._index_table():
        _pack_index_image(out, arity, index, positions)
    _pack_statistics(out, store.statistics, store.dictionary)
    _pack_sorted_runs(out, store)
    return b"".join(out)


def _unpack_indexed(path, payload, version=FORMAT_VERSION):
    from .indexed_store import IndexedStore

    reader = _Reader(payload)
    try:
        terms = _unpack_dictionary(reader)
        count = reader.u32()
        flat = iter(reader.u32_array(3 * count))
        triples = list(zip(flat, flat, flat))
        images = [_unpack_index_image(reader) for _ in range(6)]
        statistics = _unpack_statistics(reader, terms)
        runs = _unpack_sorted_runs(reader) if version >= 2 else None
    except SnapshotError as error:
        raise type(error)(f"{path}: {error}") from None
    dictionary = TermDictionary.from_terms(terms)
    store = IndexedStore._from_snapshot(dictionary, triples, images, statistics)
    if runs is not None:
        store._install_sorted_runs(runs)
    else:
        global _warned_legacy_runs
        if not _warned_legacy_runs:
            _warned_legacy_runs = True
            _LOG.warning(
                "%s: version-%d snapshot has no sorted-run section; "
                "predicate runs will be rebuilt lazily (save a new snapshot "
                "to persist them)", path, version,
            )
    return store


def _pack_sorted_runs(out, store):
    """Serialize eagerly built sorted runs for every predicate, both orders.

    Snapshots are the amortized-build artifact of the native engine model, so
    the runs are materialized here even when the live store never needed
    them: paying the sort once at save time is what lets every later load
    start with merge-joinable columns for free.
    """
    from .indexed_store import RUN_BY_OBJECT, RUN_BY_SUBJECT

    runs = [
        run
        for predicate_id in sorted(store._by_p)
        for order in (RUN_BY_SUBJECT, RUN_BY_OBJECT)
        for run in (store.sorted_run(predicate_id, order),)
        if run is not None
    ]
    out.append(_U32.pack(len(runs)))
    for run in runs:
        out.append(_U32.pack(run.predicate))
        out.append(_U8.pack(0 if run.order == RUN_BY_SUBJECT else 1))
        out.append(_U32.pack(len(run)))
        out.append(_u32_array(run.keys))
        out.append(_u32_array(run.values))


def _unpack_sorted_runs(reader):
    from .indexed_store import RUN_BY_OBJECT, RUN_BY_SUBJECT, SortedRun

    runs = []
    for _ in range(reader.u32()):
        predicate = reader.u32()
        order_tag = reader.u8()
        if order_tag not in (0, 1):
            raise SnapshotFormatError(f"unknown sorted-run order tag {order_tag}")
        length = reader.u32()
        keys = reader.u32_array(length)
        values = reader.u32_array(length)
        order = RUN_BY_SUBJECT if order_tag == 0 else RUN_BY_OBJECT
        runs.append(SortedRun(predicate, order, keys, values))
    return runs


def _pack_dictionary(out, dictionary):
    terms = dictionary._id_to_term
    kinds = bytearray()
    datatype_table = {}
    language_table = {}
    datatype_refs = []
    language_refs = []
    parts = []
    offsets = [0]
    total_chars = 0
    for term in terms:
        if isinstance(term, URIRef):
            kinds.append(_TERM_URI)
            text = term.value
            datatype_refs.append(0)
            language_refs.append(0)
        elif isinstance(term, BNode):
            kinds.append(_TERM_BNODE)
            text = term.label
            datatype_refs.append(0)
            language_refs.append(0)
        elif isinstance(term, Literal):
            kinds.append(_TERM_LITERAL)
            text = term.lexical
            datatype_refs.append(
                0 if term.datatype is None
                else datatype_table.setdefault(term.datatype, len(datatype_table)) + 1
            )
            language_refs.append(
                0 if term.language is None
                else language_table.setdefault(term.language, len(language_table)) + 1
            )
        else:
            raise SnapshotFormatError(f"cannot serialize term {term!r}")
        parts.append(text)
        total_chars += len(text)
        offsets.append(total_chars)
    out.append(_U32.pack(len(terms)))
    out.append(bytes(kinds))
    for table in (datatype_table, language_table):
        out.append(_U32.pack(len(table)))
        for value in table:  # insertion order == index order
            _append_string(out, value)
    out.append(_u32_array(datatype_refs))
    out.append(_u32_array(language_refs))
    out.append(_u32_array(offsets))
    blob = "".join(parts).encode("utf-8")
    out.append(_U64.pack(len(blob)))
    out.append(blob)


def _unpack_dictionary(reader):
    count = reader.u32()
    kinds = reader.raw(count)
    datatype_table = [reader.string() for _ in range(reader.u32())]
    language_table = [reader.string() for _ in range(reader.u32())]
    datatype_refs = reader.u32_array(count)
    language_refs = reader.u32_array(count)
    offsets = reader.u32_array(count + 1)  # writer always emits count+1
    blob = reader.raw(reader.u64()).decode("utf-8")
    # Rebuilding ~10k+ term objects is on the load hot path; construct them
    # directly (the CRC already vouches for the payload, and the format only
    # ever stores terms that passed validation when first created).
    terms = []
    append = terms.append
    new = object.__new__
    set_field = object.__setattr__
    for index in range(count):
        text = blob[offsets[index]:offsets[index + 1]]
        kind = kinds[index]
        if kind == _TERM_URI:
            term = new(URIRef)
            set_field(term, "value", text)
        elif kind == _TERM_BNODE:
            term = new(BNode)
            set_field(term, "label", text)
        elif kind == _TERM_LITERAL:
            term = new(Literal)
            set_field(term, "lexical", text)
            datatype_ref = datatype_refs[index]
            language_ref = language_refs[index]
            set_field(
                term, "datatype",
                datatype_table[datatype_ref - 1] if datatype_ref else None,
            )
            set_field(
                term, "language",
                language_table[language_ref - 1] if language_ref else None,
            )
        else:
            raise SnapshotFormatError(f"unknown term kind tag {kind}")
        append(term)
    return terms


def _pack_index_image(out, arity, index, positions):
    """Serialize one hash index as grouped singleton/multi bucket images."""
    single_keys = []
    single_members = []
    multi_keys = []
    multi_counts = []
    multi_members = []
    for key, bucket in index.items():
        if len(bucket) == 1:
            single_keys.append(key)
            single_members.append(positions[next(iter(bucket))])
        else:
            multi_keys.append(key)
            multi_counts.append(len(bucket))
            multi_members.extend(positions[triple] for triple in bucket)
    out.append(_U8.pack(arity))
    out.append(_U32.pack(len(single_keys)))
    if arity == 1:
        out.append(_u32_array(single_keys))
    else:
        out.append(_u32_array(key[0] for key in single_keys))
        out.append(_u32_array(key[1] for key in single_keys))
    out.append(_u32_array(single_members))
    out.append(_U32.pack(len(multi_keys)))
    if arity == 1:
        out.append(_u32_array(multi_keys))
    else:
        out.append(_u32_array(key[0] for key in multi_keys))
        out.append(_u32_array(key[1] for key in multi_keys))
    out.append(_u32_array(multi_counts))
    out.append(_U32.pack(len(multi_members)))
    out.append(_u32_array(multi_members))


def _unpack_index_image(reader):
    """Read one index image; key iterables stay lazy for the bulk rebuild."""
    arity = reader.u8()
    if arity not in (1, 2):
        raise SnapshotFormatError(f"index image with key arity {arity}")
    n_single = reader.u32()
    if arity == 1:
        single_keys = reader.u32_array(n_single)
    else:
        first = reader.u32_array(n_single)
        second = reader.u32_array(n_single)
        single_keys = zip(first, second)
    single_members = reader.u32_array(n_single)
    n_multi = reader.u32()
    if arity == 1:
        multi_keys = reader.u32_array(n_multi)
    else:
        first = reader.u32_array(n_multi)
        second = reader.u32_array(n_multi)
        multi_keys = zip(first, second)
    multi_counts = reader.u32_array(n_multi)
    multi_members = reader.u32_array(reader.u32())
    return single_keys, single_members, multi_keys, multi_counts, multi_members


def _pack_statistics(out, statistics, dictionary):
    lookup = dictionary.lookup

    def pack_counter(counter):
        out.append(_U32.pack(len(counter)))
        out.append(_u32_array(lookup(term) for term in counter))
        out.append(_u32_array(counter.values()))

    out.append(_U64.pack(statistics.triple_count))
    out.append(_U32.pack(len(statistics.predicate_counts)))
    for predicate, count in statistics.predicate_counts.items():
        out.append(_U32.pack(lookup(predicate)))
        out.append(_U32.pack(count))
        pack_counter(statistics._predicate_subjects.get(predicate, {}))
        pack_counter(statistics._predicate_objects.get(predicate, {}))
    pack_counter(statistics.class_counts)


def _unpack_statistics(reader, terms):
    decode = terms.__getitem__

    def unpack_counter():
        count = reader.u32()
        ids = reader.u32_array(count)
        values = reader.u32_array(count)
        return dict(zip(map(decode, ids), values))

    statistics = StoreStatistics()
    statistics.triple_count = reader.u64()
    for _ in range(reader.u32()):
        predicate = decode(reader.u32())
        statistics.predicate_counts[predicate] = reader.u32()
        subjects = unpack_counter()
        objects = unpack_counter()
        if subjects:
            statistics._predicate_subjects[predicate] = subjects
        if objects:
            statistics._predicate_objects[predicate] = objects
    statistics.class_counts = unpack_counter()
    return statistics


# -- memory-store payload ----------------------------------------------------


def _pack_memory(store):
    """The in-memory engine snapshot: the document itself, as N-Triples."""
    return ntriples.serialize(store.triples()).encode("utf-8")


def _unpack_memory(payload):
    from .memory_store import MemoryStore

    try:
        text = payload.decode("utf-8")
        store = MemoryStore()
        store.bulk_load(ntriples.parse(text))
    except (UnicodeDecodeError, ntriples.ParseError) as error:
        raise SnapshotCorruptError(f"unreadable memory-store payload: {error}") from None
    return store
