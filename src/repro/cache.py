"""Content-addressed dataset cache: generate once, snapshot, reuse everywhere.

SP2Bench's methodology separates document generation and loading from query
time (Section V reports loading times per engine exactly because native
engines amortize the physical build into a reusable database).  The cache is
that amortization for the whole reproduction: a dataset is identified by a
key derived from the complete :class:`~repro.generator.config.GeneratorConfig`
plus the snapshot format version, and its fully built store snapshot lives
under ``~/.cache/sp2bench`` (override with ``$SP2B_CACHE_DIR`` or an explicit
cache directory).  :meth:`DatasetCache.resolve` either loads the snapshot
(cache hit — the fast path CI restores via ``actions/cache``) or generates
the document straight into a store, saves the snapshot, and returns it
(cache miss — paid at most once per machine and configuration).

Because the key covers every generator parameter, the snapshot format
version, *and* a digest of the generator source code, entries are
immutable: a config change, a format bump, or any edit to the generator
modules produces a new key, and stale files are simply never looked up
again (``repro cache clear`` removes them).  Generation is deterministic —
the output is a pure function of the configuration and the generator code —
so a cache entry built anywhere is valid everywhere the same code runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .generator.config import GeneratorConfig
from .generator.generator import DblpGenerator
from .obs import get_registry
from .store import IndexedStore, MemoryStore
from .store.snapshot import (
    FORMAT_VERSION,
    SnapshotError,
    load_snapshot,
    read_snapshot_metadata,
    save_snapshot,
)

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "SP2B_CACHE_DIR"

_STORE_TYPES = {"indexed": IndexedStore, "memory": MemoryStore}

# Dataset-cache telemetry (no-ops until the global registry is enabled).
_CACHE_HITS = get_registry().counter(
    "sp2b_dataset_cache_hits_total",
    "Dataset resolutions served from an existing snapshot.",
)
_CACHE_MISSES = get_registry().counter(
    "sp2b_dataset_cache_misses_total",
    "Dataset resolutions that generated (and snapshotted) the document.",
)


def default_cache_dir():
    """The dataset cache directory honouring ``$SP2B_CACHE_DIR`` / XDG."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "sp2bench"


_generator_digest_cache = None


def _generator_code_digest():
    """A digest over the source files that determine generated datasets.

    Folding this into every dataset key makes the cache sensitive to
    *behaviour* changes, not just configuration changes: editing any
    generator module — or the RDF data-model layer it emits through (term
    normalization, vocabulary URIs, N-Triples rules) — produces new keys,
    so CI's restored cache and local ``~/.cache/sp2bench`` entries can
    never hand back a dataset built by older code.  Conservative by design:
    a comment-only edit also invalidates, which merely costs one rebuild.
    """
    global _generator_digest_cache
    if _generator_digest_cache is None:
        from . import generator as generator_package
        from . import rdf as rdf_package

        digest = hashlib.sha256()
        for package in (generator_package, rdf_package):
            package_dir = Path(package.__file__).parent
            for source in sorted(package_dir.glob("*.py")):
                digest.update(package_dir.name.encode("utf-8"))
                digest.update(source.name.encode("utf-8"))
                digest.update(source.read_bytes())
        _generator_digest_cache = digest.hexdigest()[:16]
    return _generator_digest_cache


def dataset_key(config, store_type="indexed"):
    """The content address of one dataset: config + store + format + code.

    The digest covers *every* field of the generator configuration (seed,
    limits, Erdoes parameters, ...), the store family, the snapshot format
    version, and a digest of the generator sources — any change that could
    alter the bytes on disk changes the key.  The human-readable prefix
    makes ``repro cache list`` and the CI cache key legible.
    """
    if store_type not in _STORE_TYPES:
        raise ValueError(f"unknown store type {store_type!r}")
    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "store": store_type,
            "generator": asdict(config),
            "generator_code": _generator_code_digest(),
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    if config.triple_limit is not None:
        label = f"{config.triple_limit}t"
    elif config.end_year is not None:
        label = f"y{config.end_year}"
    else:
        label = f"{config.default_triple_limit}t"
    return f"{store_type}-{label}-{digest}"


def combined_cache_key(configs, store_type="indexed"):
    """One key covering a set of dataset configurations (for CI caching).

    ``repro cache key`` prints this so the CI workflow can key its
    ``actions/cache`` step on exactly the datasets the bench job will
    resolve; the ``v<format>`` prefix doubles as a coarse restore-keys
    fallback boundary.
    """
    keys = [dataset_key(config, store_type) for config in configs]
    digest = hashlib.sha256("\n".join(sorted(keys)).encode("utf-8")).hexdigest()[:16]
    return f"v{FORMAT_VERSION}-{digest}"


@dataclass
class ResolvedDataset:
    """The outcome of one :meth:`DatasetCache.resolve` call."""

    store: object
    path: Path
    key: str
    hit: bool
    elapsed: float
    #: The generator's ``statistics.as_dict()`` summary (from the snapshot
    #: metadata on a hit, from the fresh generator run on a miss).
    statistics: dict = field(default_factory=dict)
    #: Seconds the document's *generation* took — measured on a miss,
    #: recalled from the snapshot metadata on a hit, so reports of the
    #: paper's generation-time table stay truthful on warm caches.
    generation_time: float = 0.0


@dataclass
class CacheEntry:
    """One snapshot file in the cache, as listed by ``repro cache list``."""

    key: str
    path: Path
    size_bytes: int
    metadata: dict


class DatasetCache:
    """A directory of content-addressed dataset snapshots."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key):
        return self.root / f"{key}.sp2b"

    def resolve(self, config, store_type="indexed"):
        """Return the built store for ``config``, loading or building it.

        On a hit the snapshot is loaded (orders of magnitude cheaper than
        regenerating); a corrupt or version-mismatched file is discarded and
        rebuilt.  On a miss the document is generated straight into a fresh
        store, snapshotted atomically, and returned.
        """
        started = time.perf_counter()
        key = dataset_key(config, store_type)
        path = self.path_for(key)
        if path.exists():
            try:
                store = load_snapshot(path, expected_kind=store_type)
                metadata = read_snapshot_metadata(path)
                elapsed = time.perf_counter() - started
                _CACHE_HITS.inc()
                return ResolvedDataset(
                    store=store,
                    path=path,
                    key=key,
                    hit=True,
                    elapsed=elapsed,
                    statistics=metadata.get("statistics", {}),
                    generation_time=metadata.get("generation_seconds", elapsed),
                )
            except SnapshotError:
                path.unlink(missing_ok=True)
        _CACHE_MISSES.inc()
        generator = DblpGenerator(config)
        store = _STORE_TYPES[store_type]()
        # Time generation alone: key digests and any failed load of a
        # corrupt entry above are resolve overhead, not generation, and
        # this figure is persisted as the snapshot's generation_seconds.
        generation_started = time.perf_counter()
        generator.generate_into(store)
        generation_time = time.perf_counter() - generation_started
        statistics = generator.statistics.as_dict()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            save_snapshot(
                store,
                path,
                metadata={
                    "key": key,
                    "generator": asdict(config),
                    "statistics": statistics,
                    "generation_seconds": generation_time,
                },
            )
        except OSError:
            # Best-effort cache: an unwritable cache directory (read-only
            # HOME, full disk) must not fail the caller — the freshly built
            # store is in hand and the next run simply rebuilds.
            pass
        return ResolvedDataset(
            store=store,
            path=path,
            key=key,
            hit=False,
            elapsed=time.perf_counter() - started,
            statistics=statistics,
            generation_time=generation_time,
        )

    def remove(self, config, store_type="indexed"):
        """Drop the entry for one configuration.  Returns True if it existed."""
        path = self.path_for(dataset_key(config, store_type))
        if path.exists():
            path.unlink()
            return True
        return False

    def entries(self):
        """All snapshot files currently in the cache, sorted by key."""
        if not self.root.is_dir():
            return []
        entries = []
        for path in sorted(self.root.glob("*.sp2b")):
            try:
                metadata = read_snapshot_metadata(path)
            except (SnapshotError, OSError):
                metadata = {}
            entries.append(CacheEntry(
                key=path.stem,
                path=path,
                size_bytes=path.stat().st_size,
                metadata=metadata,
            ))
        return entries

    def prune(self, keep_keys):
        """Delete every snapshot whose key is not in ``keep_keys``.

        Bounds cache growth in CI: the ``restore-keys`` fallback restores
        snapshots built under older code or configurations, and without
        pruning the post-job cache save would re-upload that ever-growing
        union under each new key.  Returns the number removed (orphaned
        ``*.sp2b.tmp.*`` writer leftovers are swept too).
        """
        keep = set(keep_keys)
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.sp2b"):
                if path.stem not in keep:
                    path.unlink(missing_ok=True)
                    removed += 1
            for path in self.root.glob("*.sp2b.tmp.*"):
                path.unlink(missing_ok=True)
        return removed

    def clear(self):
        """Delete every cached snapshot.  Returns the number removed.

        Also sweeps ``*.sp2b.tmp.*`` leftovers from writers that died before
        their atomic rename (they are invisible to :meth:`entries`).
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.sp2b"):
                path.unlink()
                removed += 1
            for path in self.root.glob("*.sp2b.tmp.*"):
                path.unlink(missing_ok=True)
        return removed

    def __repr__(self):
        return f"DatasetCache(root={str(self.root)!r})"


def resolve_dataset(config=None, store_type="indexed", cache_dir=None, **overrides):
    """One-call convenience: resolve a dataset through a cache directory.

    ``config`` defaults to ``GeneratorConfig(**overrides)``; ``cache_dir``
    defaults to :func:`default_cache_dir`.
    """
    if config is None:
        config = GeneratorConfig(**overrides)
    return DatasetCache(cache_dir).resolve(config, store_type)
