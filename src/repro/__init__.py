"""SP2Bench reproduction: a SPARQL performance benchmark in pure Python.

The package reproduces the complete SP2Bench system (Schmidt, Hornung,
Lausen, Pinkel — ICDE 2009): the DBLP-like data generator, the 17 benchmark
queries, the evaluation methodology, and — because the engines the paper
measures are external systems — a full RDF + SPARQL substrate with several
engine configurations spanning the same design space (in-memory scan
evaluation versus index-backed evaluation, with and without optimization).

Typical usage::

    from repro import generate_graph, SparqlEngine, get_query

    graph = generate_graph(triple_limit=10_000)
    engine = SparqlEngine.from_graph(graph)
    result = engine.query(get_query("Q1").text)      # eager shorthand

    prepared = engine.prepare(get_query("Q2").text)  # parse+plan once
    for binding in prepared.run(limit=10):           # lazy cursor, many runs
        ...
"""

from .analysis import DocumentSetStatistics, analyze
from .bench import (
    BenchmarkHarness,
    ExperimentConfig,
    QueryRunner,
    WorkloadMix,
    WorkloadReport,
    run_engine_workload,
    run_experiment,
    run_http_workload,
)
from .generator import DblpGenerator, GeneratorConfig, generate_graph
from .queries import ALL_QUERIES, BenchmarkQuery, get_query
from .rdf import BNode, Graph, Literal, Namespace, Triple, URIRef, Variable
from .sparql import (
    ENGINE_PRESETS,
    IN_MEMORY_BASELINE,
    IN_MEMORY_OPTIMIZED,
    NATIVE_BASELINE,
    NATIVE_OPTIMIZED,
    AskCursor,
    Deadline,
    EngineConfig,
    PreparedQuery,
    QueryTimeout,
    SelectCursor,
    SparqlEngine,
    UpdateResult,
    parse_query,
    parse_update,
)
from .server import SparqlServer
from .store import MvccStore, read_snapshot

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # RDF substrate
    "URIRef",
    "BNode",
    "Literal",
    "Variable",
    "Triple",
    "Graph",
    "Namespace",
    # generator
    "GeneratorConfig",
    "DblpGenerator",
    "generate_graph",
    # queries
    "ALL_QUERIES",
    "BenchmarkQuery",
    "get_query",
    # SPARQL engine
    "SparqlEngine",
    "EngineConfig",
    "PreparedQuery",
    "SelectCursor",
    "AskCursor",
    "Deadline",
    "QueryTimeout",
    "parse_query",
    "parse_update",
    "UpdateResult",
    "MvccStore",
    "read_snapshot",
    "ENGINE_PRESETS",
    "IN_MEMORY_BASELINE",
    "IN_MEMORY_OPTIMIZED",
    "NATIVE_BASELINE",
    "NATIVE_OPTIMIZED",
    # serving
    "SparqlServer",
    # benchmark methodology
    "BenchmarkHarness",
    "ExperimentConfig",
    "QueryRunner",
    "run_experiment",
    "WorkloadMix",
    "WorkloadReport",
    "run_engine_workload",
    "run_http_workload",
    # analysis
    "DocumentSetStatistics",
    "analyze",
]
