"""Aggregate query extension (Section VII of the paper).

The paper's conclusion points out that SPARQL aggregation support was under
discussion at the time and that "the detailed knowledge of the document class
counts and distributions facilitates the design of challenging aggregate
queries with fixed characteristics".  This module provides that extension:
four aggregate queries whose expected behaviour follows directly from the
Section III distributions, evaluated through the engine's GROUP BY / COUNT /
AVG support.
"""

from __future__ import annotations

from .catalog import BenchmarkQuery

A1 = BenchmarkQuery(
    identifier="A1",
    description=(
        "Number of publications per year — follows the logistic growth curves "
        "of Figure 2(b), so the counts increase monotonically over the early years."
    ),
    operators=("AND",),
    modifiers=("ORDER BY", "GROUP BY"),
    data_access=("URIs", "literals"),
    text="""
SELECT ?yr (COUNT(?doc) AS ?publications)
WHERE {
  ?class rdfs:subClassOf foaf:Document .
  ?doc rdf:type ?class .
  ?doc dcterms:issued ?yr
}
GROUP BY ?yr
ORDER BY ?yr
""",
)

A2 = BenchmarkQuery(
    identifier="A2",
    description=(
        "Average number of authors per article and per inproceedings — tracks "
        "the d_auth Gaussian, whose mean increases over the years (Section III-A)."
    ),
    operators=("AND",),
    modifiers=("GROUP BY",),
    data_access=("URIs", "blank nodes"),
    text="""
SELECT ?class (COUNT(?author) AS ?authors) (COUNT(DISTINCT ?doc) AS ?documents)
WHERE {
  ?doc rdf:type ?class .
  ?doc dc:creator ?author
}
GROUP BY ?class
""",
)

A3 = BenchmarkQuery(
    identifier="A3",
    description=(
        "Distinct authors per document class — the distinct/total author "
        "relation of Section III-C at class granularity."
    ),
    operators=("AND",),
    modifiers=("GROUP BY",),
    data_access=("URIs", "blank nodes"),
    text="""
SELECT ?class (COUNT(DISTINCT ?author) AS ?distinctAuthors)
WHERE {
  ?doc rdf:type ?class .
  ?doc dc:creator ?author
}
GROUP BY ?class
""",
)

A4 = BenchmarkQuery(
    identifier="A4",
    description=(
        "Reference-list sizes: number of targeted citations per citing "
        "document, ordered by size — the d_cite Gaussian of Figure 2(a)."
    ),
    operators=("AND",),
    modifiers=("GROUP BY", "ORDER BY", "LIMIT"),
    data_access=("URIs", "containers"),
    text="""
SELECT ?doc (COUNT(?cited) AS ?citations)
WHERE {
  ?doc dcterms:references ?bag .
  ?bag ?member ?cited .
  ?cited rdf:type ?class
}
GROUP BY ?doc
ORDER BY DESC(?citations)
LIMIT 20
""",
)

#: The aggregate extension queries, in report order.
AGGREGATE_QUERIES = (A1, A2, A3, A4)

#: Lookup by identifier.
AGGREGATE_INDEX = {query.identifier.lower(): query for query in AGGREGATE_QUERIES}


def get_aggregate_query(identifier):
    """Return the aggregate extension query with the given identifier."""
    try:
        return AGGREGATE_INDEX[identifier.lower()]
    except KeyError:
        known = ", ".join(q.identifier for q in AGGREGATE_QUERIES)
        raise KeyError(f"unknown aggregate query {identifier!r}; known: {known}") from None
