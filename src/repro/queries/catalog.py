"""The 17 SP2Bench benchmark queries (Appendix of the paper).

Each query is shipped as a :class:`BenchmarkQuery` with its SPARQL text
(identical to the published text up to the common PREFIX prologue, which our
parser supplies by default) and the metadata of Table II: the operators,
solution modifiers, data-access characteristics, and whether the two
optimization techniques the paper highlights (filter pushing and graph
pattern reuse) apply.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query plus its Table II characteristics."""

    identifier: str
    description: str
    text: str
    form: str = "SELECT"
    operators: tuple = ()            # subset of {"AND", "FILTER", "UNION", "OPTIONAL"}
    modifiers: tuple = ()            # subset of {"DISTINCT", "LIMIT", "OFFSET", "ORDER BY"}
    filter_pushing: bool = False     # Table II row 4
    pattern_reuse: bool = False      # Table II row 5
    data_access: tuple = ()          # subset of {"blank nodes", "literals", "URIs",
                                     #            "large literals", "containers"}

    def __str__(self):
        return self.identifier


Q1 = BenchmarkQuery(
    identifier="Q1",
    description='Return the year of publication of "Journal 1 (1940)".',
    operators=("AND",),
    data_access=("literals", "URIs"),
    text="""
SELECT ?yr
WHERE {
  ?journal rdf:type bench:Journal .
  ?journal dc:title "Journal 1 (1940)"^^xsd:string .
  ?journal dcterms:issued ?yr
}
""",
)

Q2 = BenchmarkQuery(
    identifier="Q2",
    description=(
        "Extract all inproceedings with their standard properties and, "
        "optionally, their abstract, ordered by year."
    ),
    operators=("AND", "OPTIONAL"),
    modifiers=("ORDER BY",),
    data_access=("literals", "URIs", "large literals"),
    text="""
SELECT ?inproc ?author ?booktitle ?title ?proc ?ee ?page ?url ?yr ?abstract
WHERE {
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?author .
  ?inproc bench:booktitle ?booktitle .
  ?inproc dc:title ?title .
  ?inproc dcterms:partOf ?proc .
  ?inproc rdfs:seeAlso ?ee .
  ?inproc swrc:pages ?page .
  ?inproc foaf:homepage ?url .
  ?inproc dcterms:issued ?yr
  OPTIONAL { ?inproc bench:abstract ?abstract }
}
ORDER BY ?yr
""",
)

_Q3_TEMPLATE = """
SELECT ?article
WHERE {{
  ?article rdf:type bench:Article .
  ?article ?property ?value
  FILTER (?property = {property})
}}
"""

Q3A = BenchmarkQuery(
    identifier="Q3a",
    description="Select all articles with property swrc:pages (low selectivity FILTER).",
    operators=("AND", "FILTER"),
    filter_pushing=True,
    data_access=("literals", "URIs"),
    text=_Q3_TEMPLATE.format(property="swrc:pages"),
)

Q3B = BenchmarkQuery(
    identifier="Q3b",
    description="Select all articles with property swrc:month (selective FILTER).",
    operators=("AND", "FILTER"),
    filter_pushing=True,
    data_access=("literals", "URIs"),
    text=_Q3_TEMPLATE.format(property="swrc:month"),
)

Q3C = BenchmarkQuery(
    identifier="Q3c",
    description="Select all articles with property swrc:isbn (never satisfied).",
    operators=("AND", "FILTER"),
    filter_pushing=True,
    data_access=("literals", "URIs"),
    text=_Q3_TEMPLATE.format(property="swrc:isbn"),
)

Q4 = BenchmarkQuery(
    identifier="Q4",
    description=(
        "Select all distinct pairs of article author names for authors that "
        "have published in the same journal (long chain, quadratic result)."
    ),
    operators=("AND", "FILTER"),
    modifiers=("DISTINCT",),
    pattern_reuse=True,
    data_access=("blank nodes", "literals", "URIs"),
    text="""
SELECT DISTINCT ?name1 ?name2
WHERE {
  ?article1 rdf:type bench:Article .
  ?article2 rdf:type bench:Article .
  ?article1 dc:creator ?author1 .
  ?author1 foaf:name ?name1 .
  ?article2 dc:creator ?author2 .
  ?author2 foaf:name ?name2 .
  ?article1 swrc:journal ?journal .
  ?article2 swrc:journal ?journal
  FILTER (?name1 < ?name2)
}
""",
)

Q5A = BenchmarkQuery(
    identifier="Q5a",
    description=(
        "Names of persons that are author of at least one inproceeding and "
        "one article (implicit join through a FILTER on names)."
    ),
    operators=("AND", "FILTER"),
    modifiers=("DISTINCT",),
    filter_pushing=True,
    data_access=("blank nodes", "literals", "URIs"),
    text="""
SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person2 .
  ?person foaf:name ?name .
  ?person2 foaf:name ?name2
  FILTER (?name = ?name2)
}
""",
)

Q5B = BenchmarkQuery(
    identifier="Q5b",
    description=(
        "Names of persons that are author of at least one inproceeding and "
        "one article (explicit join on the person variable)."
    ),
    operators=("AND",),
    modifiers=("DISTINCT",),
    data_access=("blank nodes", "literals", "URIs"),
    text="""
SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person .
  ?person foaf:name ?name
}
""",
)

Q6 = BenchmarkQuery(
    identifier="Q6",
    description=(
        "For each year, the publications authored by persons that have not "
        "published in earlier years (closed world negation)."
    ),
    operators=("AND", "FILTER", "OPTIONAL"),
    filter_pushing=True,
    pattern_reuse=True,
    data_access=("blank nodes", "literals", "URIs"),
    text="""
SELECT ?yr ?name ?doc
WHERE {
  ?class rdfs:subClassOf foaf:Document .
  ?doc rdf:type ?class .
  ?doc dcterms:issued ?yr .
  ?doc dc:creator ?author .
  ?author foaf:name ?name
  OPTIONAL {
    ?class2 rdfs:subClassOf foaf:Document .
    ?doc2 rdf:type ?class2 .
    ?doc2 dcterms:issued ?yr2 .
    ?doc2 dc:creator ?author2
    FILTER (?author = ?author2 && ?yr2 < ?yr)
  }
  FILTER (!bound(?author2))
}
""",
)

Q7 = BenchmarkQuery(
    identifier="Q7",
    description=(
        "Titles of papers cited at least once, but not by any paper that has "
        "not been cited itself (double negation over the citation system)."
    ),
    operators=("AND", "FILTER", "OPTIONAL"),
    modifiers=("DISTINCT",),
    filter_pushing=True,
    pattern_reuse=True,
    data_access=("literals", "URIs", "containers"),
    text="""
SELECT DISTINCT ?title
WHERE {
  ?class rdfs:subClassOf foaf:Document .
  ?doc rdf:type ?class .
  ?doc dc:title ?title .
  ?bag2 ?member2 ?doc .
  ?doc2 dcterms:references ?bag2
  OPTIONAL {
    ?class3 rdfs:subClassOf foaf:Document .
    ?doc3 rdf:type ?class3 .
    ?doc3 dcterms:references ?bag3 .
    ?bag3 ?member3 ?doc
    OPTIONAL {
      ?class4 rdfs:subClassOf foaf:Document .
      ?doc4 rdf:type ?class4 .
      ?doc4 dcterms:references ?bag4 .
      ?bag4 ?member4 ?doc3
    }
    FILTER (!bound(?doc4))
  }
  FILTER (!bound(?doc3))
}
""",
)

Q8 = BenchmarkQuery(
    identifier="Q8",
    description=(
        "Authors that have published with Paul Erdoes, or with an author that "
        "has published with Paul Erdoes (Erdoes number 1 or 2)."
    ),
    operators=("AND", "FILTER", "UNION"),
    modifiers=("DISTINCT",),
    filter_pushing=True,
    pattern_reuse=True,
    data_access=("blank nodes", "literals", "URIs"),
    text="""
SELECT DISTINCT ?name
WHERE {
  ?erdoes rdf:type foaf:Person .
  ?erdoes foaf:name "Paul Erdoes"^^xsd:string .
  {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?doc2 dc:creator ?author .
    ?doc2 dc:creator ?author2 .
    ?author2 foaf:name ?name
    FILTER (?author != ?erdoes &&
            ?doc2 != ?doc &&
            ?author2 != ?erdoes &&
            ?author2 != ?author)
  } UNION {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?author foaf:name ?name
    FILTER (?author != ?erdoes)
  }
}
""",
)

Q9 = BenchmarkQuery(
    identifier="Q9",
    description="Incoming and outgoing properties of persons (schema extraction).",
    operators=("AND", "UNION"),
    modifiers=("DISTINCT",),
    data_access=("blank nodes", "literals", "URIs"),
    text="""
SELECT DISTINCT ?predicate
WHERE {
  { ?person rdf:type foaf:Person .
    ?subject ?predicate ?person }
  UNION
  { ?person rdf:type foaf:Person .
    ?person ?predicate ?object }
}
""",
)

Q10 = BenchmarkQuery(
    identifier="Q10",
    description='All subjects standing in any relation to person "Paul Erdoes".',
    operators=(),
    data_access=("URIs",),
    text="""
SELECT ?subj ?pred
WHERE {
  ?subj ?pred person:Paul_Erdoes
}
""",
)

Q11 = BenchmarkQuery(
    identifier="Q11",
    description=(
        "Up to 10 electronic edition URLs starting from the 51st, in "
        "lexicographical order (ORDER BY / LIMIT / OFFSET interplay)."
    ),
    operators=(),
    modifiers=("ORDER BY", "LIMIT", "OFFSET"),
    data_access=("literals", "URIs"),
    text="""
SELECT ?ee
WHERE {
  ?publication rdfs:seeAlso ?ee
}
ORDER BY ?ee
LIMIT 10
OFFSET 50
""",
)

Q12A = BenchmarkQuery(
    identifier="Q12a",
    description="ASK variant of Q5a.",
    form="ASK",
    operators=("AND", "FILTER"),
    filter_pushing=True,
    data_access=("blank nodes", "literals", "URIs"),
    text="""
ASK {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person2 .
  ?person foaf:name ?name .
  ?person2 foaf:name ?name2
  FILTER (?name = ?name2)
}
""",
)

Q12B = BenchmarkQuery(
    identifier="Q12b",
    description="ASK variant of Q8.",
    form="ASK",
    operators=("AND", "FILTER", "UNION"),
    filter_pushing=True,
    pattern_reuse=True,
    data_access=("blank nodes", "literals", "URIs"),
    text="""
ASK {
  ?erdoes rdf:type foaf:Person .
  ?erdoes foaf:name "Paul Erdoes"^^xsd:string .
  {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?doc2 dc:creator ?author .
    ?doc2 dc:creator ?author2 .
    ?author2 foaf:name ?name
    FILTER (?author != ?erdoes &&
            ?doc2 != ?doc &&
            ?author2 != ?erdoes &&
            ?author2 != ?author)
  } UNION {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?author foaf:name ?name
    FILTER (?author != ?erdoes)
  }
}
""",
)

Q12C = BenchmarkQuery(
    identifier="Q12c",
    description='ASK whether person "John Q. Public" is present (always no).',
    form="ASK",
    operators=(),
    data_access=("URIs",),
    text="""
ASK { person:John_Q_Public rdf:type foaf:Person }
""",
)

#: All queries in report order (the order of Tables IV and V).
ALL_QUERIES = (
    Q1, Q2, Q3A, Q3B, Q3C, Q4, Q5A, Q5B, Q6, Q7, Q8, Q9, Q10, Q11,
    Q12A, Q12B, Q12C,
)

#: Lookup by identifier ("Q3a", "Q12c", ...), case-insensitive.
QUERY_INDEX = {query.identifier.lower(): query for query in ALL_QUERIES}


def get_query(identifier):
    """Return the BenchmarkQuery with the given identifier (e.g. ``"Q3a"``)."""
    try:
        return QUERY_INDEX[identifier.lower()]
    except KeyError:
        known = ", ".join(sorted(q.identifier for q in ALL_QUERIES))
        raise KeyError(f"unknown query {identifier!r}; known queries: {known}") from None


def select_queries():
    """The 14 SELECT-form queries."""
    return tuple(q for q in ALL_QUERIES if q.form == "SELECT")


def ask_queries():
    """The 3 ASK-form queries."""
    return tuple(q for q in ALL_QUERIES if q.form == "ASK")
