"""The SP2Bench benchmark query suite (plus the aggregate extension)."""

from .aggregates import AGGREGATE_QUERIES, get_aggregate_query
from .catalog import (
    ALL_QUERIES,
    QUERY_INDEX,
    BenchmarkQuery,
    ask_queries,
    get_query,
    select_queries,
)

__all__ = [
    "BenchmarkQuery",
    "ALL_QUERIES",
    "QUERY_INDEX",
    "get_query",
    "select_queries",
    "ask_queries",
    "AGGREGATE_QUERIES",
    "get_aggregate_query",
]
