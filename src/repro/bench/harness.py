"""The full SP2Bench experiment harness (Section VI of the paper).

Orchestrates the complete methodology:

1. generate documents of the configured sizes with the data generator,
2. load each document into every engine configuration (recording loading
   times — the LOADING TIME metric),
3. run every benchmark query against every engine and document size under a
   timeout (PER-QUERY PERFORMANCE and SUCCESS RATE metrics) — one
   :class:`~repro.bench.runner.QueryRunner` serves the whole experiment, so
   each query text is prepared once per engine and repeated runs execute the
   prepared plan through streaming cursors under true mid-stream deadlines,
4. aggregate global means per engine and size (GLOBAL PERFORMANCE and
   MEMORY CONSUMPTION metrics).

Document sizes default to a laptop-scale sweep; the paper's original sizes
(10k ... 25M triples) can be requested explicitly by callers with more time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..generator.config import GeneratorConfig
from ..generator.generator import DblpGenerator
from ..queries.catalog import ALL_QUERIES
from ..sparql.engine import ENGINE_PRESETS
from .metrics import global_performance, success_matrix, success_rate
from .runner import QueryRunner, time_loading

#: Default document sizes (in triples) for laptop-scale runs.  The paper uses
#: 10k/50k/250k/1M/5M/25M; see DESIGN.md for the scale-down rationale.
DEFAULT_DOCUMENT_SIZES = (1_000, 5_000, 25_000)


@dataclass
class ExperimentConfig:
    """Configuration of a full benchmark experiment."""

    document_sizes: tuple = DEFAULT_DOCUMENT_SIZES
    engines: tuple = ENGINE_PRESETS
    queries: tuple = ALL_QUERIES
    runs: int = 1
    timeout: float = 30.0
    #: Overall wall-clock budget (seconds) for all query executions of the
    #: experiment; once spent, remaining queries are classified as timeouts
    #: without being issued.  ``None`` disables the bound.
    overall_budget: float = None
    generator_seed: int = 823645187
    trace_memory: bool = True
    #: Directory of the dataset cache.  When set, documents resolve through
    #: :class:`~repro.cache.DatasetCache` — built at most once per machine
    #: and configuration, loaded from a store snapshot afterwards.  ``None``
    #: keeps the original generate-every-run behaviour.
    cache_dir: str = None


@dataclass
class ExperimentReport:
    """Everything measured during one experiment."""

    config: ExperimentConfig
    generation_times: dict = field(default_factory=dict)     # size -> seconds
    document_stats: dict = field(default_factory=dict)       # size -> generator stats dict
    loading_times: dict = field(default_factory=dict)        # (engine, size) -> seconds
    measurements: list = field(default_factory=list)         # QueryMeasurement list

    # -- derived views ----------------------------------------------------------

    def measurements_for(self, engine=None, size=None, query_id=None):
        """Filter measurements by engine name, document size, and/or query."""
        selected = self.measurements
        if engine is not None:
            selected = [m for m in selected if m.engine == engine]
        if size is not None:
            selected = [m for m in selected if m.document_size == size]
        if query_id is not None:
            selected = [m for m in selected if m.query_id == query_id]
        return selected

    def engine_names(self):
        return sorted({m.engine for m in self.measurements})

    def success_matrix(self, engine):
        """Table IV for one engine: size -> query -> status shortcut."""
        return success_matrix(self.measurements_for(engine=engine))

    def success_rate(self, engine, size=None):
        return success_rate(self.measurements_for(engine=engine, size=size))

    def global_performance(self, engine, size, penalty=None):
        """Tables VI/VII row: means over all queries for one engine and size."""
        selected = self.measurements_for(engine=engine, size=size)
        if penalty is None:
            penalty = self.config.timeout
        return global_performance(selected, penalty=penalty)

    def result_sizes(self, size):
        """Table V row: query id -> result size on the given document size."""
        sizes = {}
        for measurement in self.measurements_for(size=size):
            if measurement.result_size is None:
                continue
            existing = sizes.get(measurement.query_id)
            if existing is None:
                sizes[measurement.query_id] = measurement.result_size
        return sizes

    def per_query_series(self, engine, query_id):
        """Figures 5-8 data: list of (document size, elapsed or None) points."""
        series = []
        for size in sorted({m.document_size for m in self.measurements}):
            matching = self.measurements_for(engine=engine, size=size, query_id=query_id)
            if not matching:
                continue
            measurement = matching[0]
            series.append((size, measurement.elapsed if measurement.succeeded else None))
        return series


class BenchmarkHarness:
    """Runs the full SP2Bench methodology and produces an ExperimentReport."""

    def __init__(self, config=None):
        self.config = config or ExperimentConfig()

    def generate_documents(self):
        """Produce one document per configured size.

        Returns ``{size: (document, setup_seconds, stats_dict)}`` where the
        document is an iterable of triples: a :class:`~repro.rdf.graph.Graph`
        when generating directly, or the snapshot-backed store when
        ``config.cache_dir`` routes resolution through the dataset cache (a
        cached size costs a snapshot load instead of a full generation, so a
        sweep builds each size at most once per machine).
        """
        cache = None
        if self.config.cache_dir is not None:
            from ..cache import DatasetCache

            cache = DatasetCache(self.config.cache_dir)
        documents = {}
        for size in self.config.document_sizes:
            generator_config = GeneratorConfig(
                triple_limit=size, seed=self.config.generator_seed
            )
            if cache is not None:
                resolved = cache.resolve(generator_config)
                # Table III must report *generation* time even on a warm
                # cache, where the actual setup cost was a snapshot load —
                # the cache recalls the build-time measurement for that.
                documents[size] = (
                    resolved.store, resolved.generation_time, resolved.statistics
                )
                continue
            generator = DblpGenerator(generator_config)
            start = time.perf_counter()
            graph = generator.graph()
            elapsed = time.perf_counter() - start
            documents[size] = (graph, elapsed, generator.statistics.as_dict())
        return documents

    def run(self, documents=None):
        """Execute the full experiment; returns an :class:`ExperimentReport`."""
        report = ExperimentReport(config=self.config)
        if documents is None:
            documents = self.generate_documents()
        runner = QueryRunner(
            timeout=self.config.timeout, trace_memory=self.config.trace_memory
        )
        # The budget covers query executions only: generation and loading
        # time never count against it, so only the measured elapsed times
        # are accumulated (pre-classified queries contribute 0).
        query_time_spent = 0.0

        for size, (graph, generation_time, stats) in documents.items():
            report.generation_times[size] = generation_time
            report.document_stats[size] = stats
            for engine_config in self.config.engines:
                engine, loading_time = time_loading(engine_config, graph)
                report.loading_times[(engine_config.name, size)] = loading_time
                for _run in range(self.config.runs):
                    remaining = (
                        None if self.config.overall_budget is None
                        else self.config.overall_budget - query_time_spent
                    )
                    measurements = runner.run_many(
                        engine,
                        self.config.queries,
                        document_size=size,
                        engine_name=engine_config.name,
                        overall_budget=remaining,
                    )
                    query_time_spent += sum(m.elapsed for m in measurements)
                    report.measurements.extend(measurements)
        return report


def run_experiment(document_sizes=DEFAULT_DOCUMENT_SIZES, engines=ENGINE_PRESETS,
                   queries=ALL_QUERIES, timeout=30.0, runs=1):
    """One-call convenience wrapper around :class:`BenchmarkHarness`."""
    config = ExperimentConfig(
        document_sizes=tuple(document_sizes),
        engines=tuple(engines),
        queries=tuple(queries),
        timeout=timeout,
        runs=runs,
    )
    return BenchmarkHarness(config).run()
