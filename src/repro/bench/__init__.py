"""Benchmark methodology: metrics, query runner, harness, and reporting."""

from .harness import (
    DEFAULT_DOCUMENT_SIZES,
    BenchmarkHarness,
    ExperimentConfig,
    ExperimentReport,
    run_experiment,
)
from .metrics import (
    ERROR,
    MEMORY,
    PAPER_PENALTY_SECONDS,
    SUCCESS,
    TIMEOUT,
    QueryMeasurement,
    arithmetic_mean,
    geometric_mean,
    global_performance,
    success_matrix,
    success_rate,
)
from .runner import QueryRunner, time_loading
from . import reporting

__all__ = [
    "BenchmarkHarness",
    "ExperimentConfig",
    "ExperimentReport",
    "run_experiment",
    "DEFAULT_DOCUMENT_SIZES",
    "QueryRunner",
    "time_loading",
    "QueryMeasurement",
    "SUCCESS",
    "TIMEOUT",
    "MEMORY",
    "ERROR",
    "PAPER_PENALTY_SECONDS",
    "arithmetic_mean",
    "geometric_mean",
    "global_performance",
    "success_rate",
    "success_matrix",
    "reporting",
]
