"""Benchmark methodology: metrics, runner, harness, workload, reporting."""

from .harness import (
    DEFAULT_DOCUMENT_SIZES,
    BenchmarkHarness,
    ExperimentConfig,
    ExperimentReport,
    run_experiment,
)
from .metrics import (
    ERROR,
    MEMORY,
    PAPER_PENALTY_SECONDS,
    SUCCESS,
    TIMEOUT,
    QueryMeasurement,
    arithmetic_mean,
    geometric_mean,
    global_performance,
    percentile,
    success_matrix,
    success_rate,
)
from .runner import QueryRunner, time_loading
from .workload import (
    DEFAULT_MIX_WEIGHTS,
    EngineWorkloadClient,
    HttpWorkloadClient,
    WorkloadMix,
    WorkloadReport,
    process_mode_available,
    run_engine_workload,
    run_http_workload,
    run_workload,
)
from . import reporting

__all__ = [
    "BenchmarkHarness",
    "ExperimentConfig",
    "ExperimentReport",
    "run_experiment",
    "DEFAULT_DOCUMENT_SIZES",
    "QueryRunner",
    "time_loading",
    "QueryMeasurement",
    "SUCCESS",
    "TIMEOUT",
    "MEMORY",
    "ERROR",
    "PAPER_PENALTY_SECONDS",
    "arithmetic_mean",
    "geometric_mean",
    "global_performance",
    "percentile",
    "success_rate",
    "success_matrix",
    "WorkloadMix",
    "WorkloadReport",
    "EngineWorkloadClient",
    "HttpWorkloadClient",
    "run_workload",
    "run_engine_workload",
    "run_http_workload",
    "process_mode_available",
    "DEFAULT_MIX_WEIGHTS",
    "reporting",
]
