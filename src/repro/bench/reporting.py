"""Plain-text rendering of the paper's result tables.

Reproduces the layout of the evaluation tables so that a harness run prints
rows directly comparable to the published ones:

* Table III  — document generation times,
* Table IV   — success-rate matrix per engine,
* Table V    — query result sizes per document size,
* Tables VI/VII — arithmetic/geometric mean execution times and memory,
* Table VIII — characteristics of generated documents,
* Figures 5-8 — per-query time series (as aligned text columns).
"""

from __future__ import annotations

from ..queries.catalog import ALL_QUERIES


def _format_table(headers, rows):
    """Render rows of stringifiable cells as an aligned text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    def line(values):
        return "  ".join(value.ljust(widths[index]) for index, value in enumerate(values))
    output = [line(headers), line(["-" * width for width in widths])]
    output.extend(line(row) for row in cells)
    return "\n".join(output)


def generation_times_table(report):
    """Table III: elapsed generation time per document size."""
    rows = [
        (size, f"{seconds:.3f}")
        for size, seconds in sorted(report.generation_times.items())
    ]
    return _format_table(["#triples", "elapsed time [s]"], rows)


def document_characteristics_table(report):
    """Table VIII: characteristics of the generated documents."""
    class_order = ("journal", "article", "proceedings", "inproceedings",
                   "incollection", "book", "phdthesis", "mastersthesis", "www")
    headers = ["#triples", "data up to"] + [f"#{name}" for name in class_order]
    rows = []
    for size, stats in sorted(report.document_stats.items()):
        totals = stats.get("class_totals", {})
        rows.append(
            [size, stats.get("data_up_to_year", "-")]
            + [totals.get(name, 0) for name in class_order]
        )
    return _format_table(headers, rows)


def result_sizes_table(report):
    """Table V: number of query results per document size."""
    query_ids = [q.identifier for q in ALL_QUERIES if q.form == "SELECT"]
    headers = ["Query"] + [str(size) for size in sorted(report.document_stats)]
    rows = []
    for query_id in query_ids:
        row = [query_id]
        for size in sorted(report.document_stats):
            sizes = report.result_sizes(size)
            row.append(sizes.get(query_id, "-"))
        rows.append(row)
    return _format_table(headers, rows)


def success_rate_table(report, engine):
    """Table IV (one engine): status shortcut per query and document size."""
    query_ids = [q.identifier for q in ALL_QUERIES]
    matrix = report.success_matrix(engine)
    headers = ["#triples"] + query_ids
    rows = []
    for size in sorted(matrix):
        rows.append([size] + [matrix[size].get(query_id, " ") for query_id in query_ids])
    return _format_table(headers, rows)


def global_performance_table(report):
    """Tables VI/VII: means of execution time and memory per engine and size."""
    headers = ["engine", "#triples", "Ta [s]", "Tg [s]", "Ma [MB]"]
    rows = []
    for engine in report.engine_names():
        for size in sorted(report.document_stats):
            stats = report.global_performance(engine, size)
            rows.append([
                engine,
                size,
                f"{stats['arithmetic_mean_time']:.3f}",
                f"{stats['geometric_mean_time']:.3f}",
                f"{stats['mean_peak_memory'] / (1024 * 1024):.2f}",
            ])
    return _format_table(headers, rows)


def loading_times_table(report):
    """Loading-time metric: seconds to load each document into each engine."""
    headers = ["engine", "#triples", "loading [s]"]
    rows = [
        (engine, size, f"{seconds:.3f}")
        for (engine, size), seconds in sorted(report.loading_times.items())
    ]
    return _format_table(headers, rows)


def per_query_table(report, query_id):
    """Figures 5-8 (one query): elapsed time per engine across sizes."""
    sizes = sorted(report.document_stats)
    headers = ["engine"] + [str(size) for size in sizes]
    rows = []
    for engine in report.engine_names():
        row = [engine]
        series = dict(report.per_query_series(engine, query_id))
        for size in sizes:
            value = series.get(size)
            row.append("failure" if value is None else f"{value:.3f}")
        rows.append(row)
    return _format_table(headers, rows)


def workload_table(report):
    """Per-query (plus overall) table of a multi-client workload run.

    Columns: request counts by outcome, sustained QpS, and p50/p95/p99
    latency in milliseconds — the serving-side metrics the single-query
    tables cannot show.
    """
    headers = ["query", "count", "ok", "timeout", "error", "QpS",
               "p50 [ms]", "p95 [ms]", "p99 [ms]"]
    # Mixed read/write runs carry extra outcome classes; the columns appear
    # only when such records exist, so read-only tables keep their shape.
    extra = [status for status in ("rejected", "torn", "overload")
             if report.count(status)]
    headers[5:5] = extra

    def row(label, query_id):
        tails = report.percentiles(query_id=query_id)
        cells = [
            label,
            report.count(query_id=query_id),
            report.count("success", query_id=query_id),
            report.count("timeout", query_id=query_id),
            report.count("error", query_id=query_id),
        ]
        cells.extend(report.count(status, query_id=query_id)
                     for status in extra)
        cells.extend([
            f"{report.qps(query_id=query_id):.1f}",
            f"{tails['p50'] * 1e3:.2f}",
            f"{tails['p95'] * 1e3:.2f}",
            f"{tails['p99'] * 1e3:.2f}",
        ])
        return cells

    rows = [row(query_id, query_id) for query_id in report.query_ids()]
    rows.append(row("overall", None))
    return _format_table(headers, rows)


def workload_summary(report):
    """One-line outcome of a workload run (the loadtest header line).

    Mixed read/write runs additionally report the rejected/torn counts and
    the reader/writer QpS split.
    """
    line = (
        f"{report.clients} client(s), {report.mode} mode, "
        f"{report.elapsed:.1f}s window: {report.total} requests, "
        f"{report.successes} ok / {report.timeouts} timeout / "
        f"{report.errors} error"
    )
    if report.rejected:
        line += f" / {report.rejected} rejected"
    if report.torn:
        line += f" / {report.torn} TORN"
    line += f", {report.qps():.1f} QpS sustained"
    if report.write_count():
        line += (f" ({report.read_qps():.1f} read / "
                 f"{report.write_qps():.1f} write)")
    return line


def full_report(report):
    """All tables concatenated into one printable report."""
    sections = [
        ("Table III — document generation times", generation_times_table(report)),
        ("Table VIII — characteristics of generated documents",
         document_characteristics_table(report)),
        ("Table V — query result sizes", result_sizes_table(report)),
        ("Loading times", loading_times_table(report)),
        ("Tables VI/VII — global performance", global_performance_table(report)),
    ]
    for engine in report.engine_names():
        sections.append(
            (f"Table IV — success rates ({engine})", success_rate_table(report, engine))
        )
    parts = []
    for title, body in sections:
        parts.append(title)
        parts.append("=" * len(title))
        parts.append(body)
        parts.append("")
    return "\n".join(parts)
