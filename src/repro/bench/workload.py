"""Closed-loop multi-client workload generation: sustained QpS + tail latency.

SP2Bench measures single-query latency; this module measures *serving*
behaviour: N concurrent clients replay a weighted mix of catalog queries in
a closed loop (each client issues its next query as soon as the previous
one answers — no think time), and the report gives sustained
queries-per-second plus p50/p95/p99 latency, per query class and overall.
The default mix follows the shape real SPARQL query logs show (Bonifati et
al., "An Analytical Study of Large SPARQL Query Logs"): dominated by cheap
point lookups and small selections, with a thin tail of heavy analytic
queries.

Two execution targets share the client loop:

* :class:`EngineWorkloadClient` — in-process against a shared
  :class:`~repro.sparql.engine.SparqlEngine` (through its thread-safe
  prepared-statement cache), and
* :class:`HttpWorkloadClient` — over HTTP against a running SPARQL
  Protocol endpoint (one persistent connection per client).

Two concurrency modes, because CPython's GIL makes them measure different
things: ``thread`` mode runs clients as threads — right for HTTP targets
(the client side is I/O-bound) and for exercising thread-safety — while
``process`` mode forks clients as processes, which is the only way a
pure-Python *in-process* workload scales with cores.  The parent builds the
engine once (e.g. from a ``.sp2b`` snapshot) before forking, so every
client inherits the same read-only store via copy-on-write — the store is
loaded exactly once, as a shared-memory server would.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from http.client import HTTPConnection
from queue import Empty
from random import Random
from urllib.parse import urlsplit

from ..queries.catalog import get_query
from ..sparql.cursor import Deadline
from ..sparql.errors import QueryTimeout, SparqlError
from .metrics import (
    ERROR,
    REJECTED,
    SUCCESS,
    TIMEOUT,
    TORN,
    classify_http_status,
    percentile,
)

#: Default query mix (weights, not probabilities): mostly cheap lookups and
#: selections, some mid-weight joins and windows, a thin heavy tail — the
#: log-study shape scaled onto the SP2Bench catalog.  Q12c keeps the ASK
#: form in the mix.
DEFAULT_MIX_WEIGHTS = {
    "Q1": 30,    # point lookup by title
    "Q10": 20,   # subject-of lookup (Paul Erdoes as object)
    "Q3a": 15,   # single-property selection with FILTER
    "Q11": 10,   # ORDER BY / LIMIT / OFFSET window
    "Q5b": 10,   # small equi-join
    "Q2": 5,     # wide star join with OPTIONAL and ORDER BY
    "Q9": 5,     # UNION + DISTINCT over all persons
    "Q12c": 5,   # ASK on a fixed triple
}

#: Tail-latency fractions every report includes.
REPORT_PERCENTILES = (0.50, 0.95, 0.99)

#: Record-id prefix marking write operations in mixed read/write runs.
WRITE_ID_PREFIX = "U:"

#: Record ids used by the mixed workload's update operations and probe.
INSERT_ID = "U:insert"
DELETE_ID = "U:delete"
CANARY_PROBE_ID = "Q:canary"

#: The canary vocabulary: every insert writes an atomic *pair* of triples
#: (same subject, same value under both predicates), so any reader snapshot
#: must see either both halves or neither.  Dedicated URIs, disjoint from
#: the benchmark vocabulary, keep the canary churn out of the catalog
#: queries' statistics.
CANARY_NS = "http://localhost/canary/"
CANARY_LEFT = "http://localhost/vocabulary/canary#left"
CANARY_RIGHT = "http://localhost/vocabulary/canary#right"

#: Deletes every *complete* canary pair (a torn remnant would not match and
#: stays behind for the probe to catch).  Bounds canary growth.
CANARY_DELETE_TEXT = (
    f"DELETE WHERE {{ ?s <{CANARY_LEFT}> ?l . ?s <{CANARY_RIGHT}> ?r . }}"
)

#: Sees every canary half, paired with its sibling when present: a result
#: row with an unbound ?l or ?r is a torn write.
CANARY_PROBE_TEXT = f"""
SELECT ?s ?l ?r WHERE {{
  {{ ?s <{CANARY_LEFT}> ?l . OPTIONAL {{ ?s <{CANARY_RIGHT}> ?r }} }}
  UNION
  {{ ?s <{CANARY_RIGHT}> ?r . OPTIONAL {{ ?s <{CANARY_LEFT}> ?l }} }}
}}
"""


def canary_insert_text(token):
    """The INSERT DATA operation writing one atomic canary pair."""
    subject = f"<{CANARY_NS}c{token:012x}>"
    value = f'"{token}"'
    return (
        f"INSERT DATA {{ {subject} <{CANARY_LEFT}> {value} . "
        f"{subject} <{CANARY_RIGHT}> {value} . }}"
    )


class WorkloadMix:
    """A weighted mix of (query id, query text) templates."""

    def __init__(self, entries):
        entries = tuple(
            (str(identifier), text, float(weight))
            for identifier, text, weight in entries
        )
        if not entries:
            raise ValueError("a workload mix needs at least one query")
        if any(weight <= 0 for _i, _t, weight in entries):
            raise ValueError("mix weights must be positive")
        self.entries = entries
        self._cumulative = []
        total = 0.0
        for _identifier, _text, weight in entries:
            total += weight
            self._cumulative.append(total)
        self.total_weight = total

    @classmethod
    def from_catalog(cls, weights=None):
        """Build a mix of catalog queries from ``{query id: weight}``."""
        weights = dict(weights or DEFAULT_MIX_WEIGHTS)
        return cls(
            (identifier, get_query(identifier).text, weight)
            for identifier, weight in weights.items()
        )

    @classmethod
    def uniform(cls, query_ids):
        """An equal-weight mix over the given catalog query ids."""
        return cls.from_catalog({identifier: 1 for identifier in query_ids})

    def query_ids(self):
        return [identifier for identifier, _text, _weight in self.entries]

    def choose(self, rng):
        """Pick one ``(query id, text)`` with probability ∝ weight."""
        point = rng.random() * self.total_weight
        index = min(bisect_right(self._cumulative, point), len(self.entries) - 1)
        identifier, text, _weight = self.entries[index]
        return identifier, text

    def __repr__(self):
        parts = ", ".join(
            f"{identifier}:{weight:g}"
            for identifier, _text, weight in self.entries
        )
        return f"WorkloadMix({parts})"


class MixedWorkloadMix:
    """A read mix with an interleaved stream of update operations.

    ``update_fraction`` of the chosen operations are writes (split evenly
    between canary-pair inserts and pair deletes); ``canary_fraction`` are
    canary probe reads that verify snapshot isolation (a probe observing a
    half-written pair is recorded as :data:`~repro.bench.metrics.TORN`);
    everything else comes from the wrapped read mix.  Insert texts embed a
    token drawn from the caller's random stream, so each insert writes a
    distinct pair and runs stay seed-reproducible.
    """

    def __init__(self, read_mix=None, update_fraction=0.1,
                 canary_fraction=0.15):
        if not 0.0 <= update_fraction < 1.0:
            raise ValueError("update_fraction must be in [0, 1)")
        if canary_fraction < 0 or update_fraction + canary_fraction >= 1.0:
            raise ValueError("update_fraction + canary_fraction must be < 1")
        self.read_mix = read_mix or WorkloadMix.from_catalog()
        self.update_fraction = update_fraction
        self.canary_fraction = canary_fraction

    def query_ids(self):
        return self.read_mix.query_ids() + [CANARY_PROBE_ID, INSERT_ID,
                                            DELETE_ID]

    def choose(self, rng):
        """Pick one ``(operation id, text)``."""
        roll = rng.random()
        if roll < self.update_fraction:
            if rng.random() < 0.5:
                return INSERT_ID, canary_insert_text(rng.getrandbits(48))
            return DELETE_ID, CANARY_DELETE_TEXT
        if roll < self.update_fraction + self.canary_fraction:
            return CANARY_PROBE_ID, CANARY_PROBE_TEXT
        return self.read_mix.choose(rng)

    def __repr__(self):
        return (f"MixedWorkloadMix(updates={self.update_fraction:g}, "
                f"canary={self.canary_fraction:g}, reads={self.read_mix!r})")


# -- execution targets --------------------------------------------------------


class EngineWorkloadClient:
    """Executes mix queries in-process against a shared engine.

    Goes through ``prepare_cached`` — the same statement cache a server
    worker uses — so each template is parsed and planned once per engine,
    not once per client.
    """

    def __init__(self, engine, timeout=None):
        self.engine = engine
        self.timeout = timeout

    def execute(self, query_id, text):
        """Run one query; returns ``(query_id, status, seconds)``."""
        start = time.perf_counter()
        try:
            prepared = self.engine.prepare_cached(text)
            deadline = None if self.timeout is None else Deadline(self.timeout)
            with prepared.run(deadline=deadline) as cursor:
                if cursor.form != "ASK":
                    for _binding in cursor:
                        pass
            status = SUCCESS
        except QueryTimeout:
            status = TIMEOUT
        except SparqlError:
            status = ERROR
        except Exception:  # noqa: BLE001 - the load loop must survive anything
            status = ERROR
        return query_id, status, time.perf_counter() - start

    def close(self):
        pass


class HttpWorkloadClient:
    """Executes mix queries over HTTP against a SPARQL Protocol endpoint.

    Holds one persistent connection (re-established after network errors),
    POSTs the query as ``application/sparql-query``, and classifies the
    response via :func:`~repro.bench.metrics.classify_http_status`: 2xx is
    a success, a 503 carrying the structured ``timeout`` error code is a
    timeout, a plain 503/429 is overload, 403/405 is a policy rejection,
    anything else — including transport failures — is an error.
    """

    def __init__(self, url, timeout=None, format="json"):
        parts = urlsplit(url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported URL scheme in {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.path = parts.path or "/sparql"
        if timeout is not None:
            self.path += f"?timeout={timeout:g}"
        self.timeout = timeout
        self.accept = {
            "json": "application/sparql-results+json",
            "xml": "application/sparql-results+xml",
            "csv": "text/csv",
            "tsv": "text/tab-separated-values",
        }[format]
        # Socket budget: the per-query budget plus slack for queueing at the
        # server's worker pool; never below a floor that survives load.
        self.socket_timeout = max(30.0 if timeout is None else timeout * 4, 10.0)
        self._connection = None

    def _connect(self):
        if self._connection is None:
            self._connection = HTTPConnection(
                self.host, self.port, timeout=self.socket_timeout
            )
        return self._connection

    def execute(self, query_id, text):
        """Run one query; returns ``(query_id, status, seconds)``."""
        start = time.perf_counter()
        try:
            connection = self._connect()
            connection.request(
                "POST", self.path, body=text.encode("utf-8"),
                headers={
                    "Content-Type": "application/sparql-query",
                    "Accept": self.accept,
                },
            )
            response = connection.getresponse()
            body = response.read()
            status = classify_http_status(response.status, body)
        except Exception:  # noqa: BLE001 - transport failure = error record
            status = ERROR
            self.close()
        return query_id, status, time.perf_counter() - start

    def close(self):
        if self._connection is not None:
            self._connection.close()
            self._connection = None


# -- mixed read/write targets -------------------------------------------------


def _canary_rows_torn(rows):
    """Whether any probe row misses one half of its canary pair.

    ``rows`` yields ``(left, right)`` value pairs with ``None`` for an
    unbound half.  Under snapshot isolation both halves of a pair are
    published atomically, so a half-bound row is a torn write.
    """
    return any(left is None or right is None for left, right in rows)


class MixedEngineWorkloadClient(EngineWorkloadClient):
    """Engine client that additionally executes updates and canary probes.

    Updates go through ``engine.update`` (one MVCC transaction each); the
    canary probe inspects its own result rows and classifies a half-visible
    pair as :data:`~repro.bench.metrics.TORN`.
    """

    def execute(self, query_id, text):
        if not query_id.startswith(WRITE_ID_PREFIX) and \
                query_id != CANARY_PROBE_ID:
            return super().execute(query_id, text)
        start = time.perf_counter()
        try:
            if query_id.startswith(WRITE_ID_PREFIX):
                self.engine.update(text)
                status = SUCCESS
            else:
                prepared = self.engine.prepare_cached(text)
                deadline = (None if self.timeout is None
                            else Deadline(self.timeout))
                with prepared.run(deadline=deadline) as cursor:
                    rows = ((binding.get("l"), binding.get("r"))
                            for binding in cursor)
                    status = TORN if _canary_rows_torn(rows) else SUCCESS
        except QueryTimeout:
            status = TIMEOUT
        except Exception:  # noqa: BLE001 - the load loop must survive anything
            status = ERROR
        return query_id, status, time.perf_counter() - start


class MixedHttpWorkloadClient(HttpWorkloadClient):
    """HTTP client that additionally POSTs updates and runs canary probes.

    Updates POST to the server's ``/update`` endpoint as
    ``application/sparql-update``; a 403 from a read-only deployment is a
    :data:`~repro.bench.metrics.REJECTED` record, not an error.  The canary
    probe requests JSON results and inspects the bindings for half-visible
    pairs.
    """

    def __init__(self, url, timeout=None, format="json"):
        super().__init__(url, timeout=timeout, format=format)
        from ..server.protocol import UPDATE_PATH

        self.update_path = UPDATE_PATH

    def execute(self, query_id, text):
        if query_id.startswith(WRITE_ID_PREFIX):
            return self._execute_update(query_id, text)
        if query_id == CANARY_PROBE_ID:
            return self._execute_probe(query_id, text)
        return super().execute(query_id, text)

    def _execute_update(self, query_id, text):
        start = time.perf_counter()
        try:
            connection = self._connect()
            connection.request(
                "POST", self.update_path, body=text.encode("utf-8"),
                headers={"Content-Type": "application/sparql-update"},
            )
            response = connection.getresponse()
            body = response.read()
            status = classify_http_status(response.status, body)
        except Exception:  # noqa: BLE001 - transport failure = error record
            status = ERROR
            self.close()
        return query_id, status, time.perf_counter() - start

    def _execute_probe(self, query_id, text):
        start = time.perf_counter()
        try:
            connection = self._connect()
            connection.request(
                "POST", self.path, body=text.encode("utf-8"),
                headers={
                    "Content-Type": "application/sparql-query",
                    "Accept": "application/sparql-results+json",
                },
            )
            response = connection.getresponse()
            body = response.read()
            status = classify_http_status(response.status, body)
            if status == SUCCESS:
                bindings = json.loads(body)["results"]["bindings"]
                rows = ((entry.get("l"), entry.get("r"))
                        for entry in bindings)
                if _canary_rows_torn(rows):
                    status = TORN
        except Exception:  # noqa: BLE001 - transport failure = error record
            status = ERROR
            self.close()
        return query_id, status, time.perf_counter() - start


# -- the closed loop ----------------------------------------------------------


def _client_loop(client, mix, duration, rng):
    """One closed-loop client: issue-wait-repeat until the duration is up.

    Returns ``(start, end, records)`` — the client's own wall-clock span
    plus one ``(query_id, status, seconds)`` record per request.  The loop
    never issues a request after its span ends, but always finishes the one
    in flight (its latency still counts — closed-loop semantics).
    """
    records = []
    start = time.perf_counter()
    end = start + duration
    while time.perf_counter() < end:
        query_id, text = mix.choose(rng)
        records.append(client.execute(query_id, text))
    client.close()
    return start, time.perf_counter(), records


@dataclass
class WorkloadReport:
    """Everything measured by one multi-client workload run."""

    clients: int
    duration: float
    mode: str
    mix_ids: list = field(default_factory=list)
    #: Flat ``(query_id, status, seconds)`` records across all clients.
    records: list = field(default_factory=list)
    #: Per-client ``(start, end)`` spans on each client's own clock.
    spans: list = field(default_factory=list)

    # -- derived views -----------------------------------------------------

    @property
    def total(self):
        return len(self.records)

    def count(self, status=None, query_id=None):
        return sum(
            1 for record_id, record_status, _seconds in self.records
            if (status is None or record_status == status)
            and (query_id is None or record_id == query_id)
        )

    @property
    def successes(self):
        return self.count(SUCCESS)

    @property
    def timeouts(self):
        return self.count(TIMEOUT)

    @property
    def errors(self):
        return self.count(ERROR)

    @property
    def rejected(self):
        return self.count(REJECTED)

    @property
    def torn(self):
        """Snapshot-isolation violations observed by the canary probe."""
        return self.count(TORN)

    def write_count(self, status=None):
        """Records of update operations (ids prefixed ``U:``)."""
        return sum(
            1 for record_id, record_status, _seconds in self.records
            if record_id.startswith(WRITE_ID_PREFIX)
            and (status is None or record_status == status)
        )

    def read_count(self, status=None):
        """Records of read operations (everything that is not an update)."""
        return sum(
            1 for record_id, record_status, _seconds in self.records
            if not record_id.startswith(WRITE_ID_PREFIX)
            and (status is None or record_status == status)
        )

    @property
    def elapsed(self):
        """The measurement window: first client start to last client end."""
        if not self.spans:
            return self.duration
        return max(end for _start, end in self.spans) - min(
            start for start, _end in self.spans
        )

    def qps(self, query_id=None):
        """Sustained successful queries per second over the window."""
        window = self.elapsed
        if window <= 0:
            return 0.0
        return self.count(SUCCESS, query_id=query_id) / window

    def read_qps(self):
        """Sustained successful read operations per second."""
        window = self.elapsed
        return self.read_count(SUCCESS) / window if window > 0 else 0.0

    def write_qps(self):
        """Sustained successful (committed) update operations per second."""
        window = self.elapsed
        return self.write_count(SUCCESS) / window if window > 0 else 0.0

    def latencies(self, query_id=None, status=SUCCESS):
        return [
            seconds for record_id, record_status, seconds in self.records
            if record_status == status
            and (query_id is None or record_id == query_id)
        ]

    def percentiles(self, query_id=None):
        """``{"p50": ..., "p95": ..., "p99": ...}`` latencies in seconds."""
        values = self.latencies(query_id=query_id)
        return {
            f"p{int(fraction * 100)}": percentile(values, fraction)
            for fraction in REPORT_PERCENTILES
        }

    def query_ids(self):
        """Query ids observed in the records, catalog order first."""
        seen = {record_id for record_id, _status, _seconds in self.records}
        ordered = [identifier for identifier in self.mix_ids if identifier in seen]
        ordered.extend(sorted(seen.difference(ordered)))
        return ordered

    def as_dict(self):
        """A JSON-ready summary (the ``repro loadtest --json`` output)."""
        per_query = {}
        for identifier in self.query_ids():
            per_query[identifier] = {
                "count": self.count(query_id=identifier),
                "success": self.count(SUCCESS, query_id=identifier),
                "timeout": self.count(TIMEOUT, query_id=identifier),
                "error": self.count(ERROR, query_id=identifier),
                "rejected": self.count(REJECTED, query_id=identifier),
                "torn": self.count(TORN, query_id=identifier),
                "qps": self.qps(query_id=identifier),
                **self.percentiles(query_id=identifier),
            }
        return {
            "clients": self.clients,
            "duration": self.duration,
            "elapsed": self.elapsed,
            "mode": self.mode,
            "total": self.total,
            "success": self.successes,
            "timeout": self.timeouts,
            "error": self.errors,
            "rejected": self.rejected,
            "torn": self.torn,
            "qps": self.qps(),
            "reads": self.read_count(),
            "writes": self.write_count(),
            "read_qps": self.read_qps(),
            "write_qps": self.write_qps(),
            **self.percentiles(),
            "per_query": per_query,
        }


def process_mode_available():
    """Whether ``mode="process"`` can run here (needs the fork method)."""
    return "fork" in multiprocessing.get_all_start_methods()


def run_workload(client_factory, mix, clients=4, duration=5.0, mode="thread",
                 seed=97):
    """Run a closed-loop workload; returns a :class:`WorkloadReport`.

    ``client_factory`` builds one client per worker (called inside the
    worker, so process-mode clients own their sockets).  ``mode`` is
    ``"thread"`` or ``"process"``; process mode requires the ``fork`` start
    method (the engine/store built before the call is inherited
    copy-on-write, i.e. loaded exactly once).  Each client's random stream
    is seeded from ``seed`` + client index, so a run is reproducible up to
    scheduling.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if mode == "thread":
        outcomes = _run_threads(client_factory, mix, clients, duration, seed)
    elif mode == "process":
        outcomes = _run_processes(client_factory, mix, clients, duration, seed)
    else:
        raise ValueError(f"unknown workload mode {mode!r}")
    report = WorkloadReport(
        clients=clients, duration=duration, mode=mode, mix_ids=mix.query_ids()
    )
    for start, end, records in outcomes:
        report.spans.append((start, end))
        report.records.extend(records)
    return report


def _run_threads(client_factory, mix, clients, duration, seed):
    barrier = threading.Barrier(clients)
    outcomes = [None] * clients
    errors = []

    def work(index):
        try:
            client = client_factory()
            rng = Random(seed + index)
            barrier.wait()
            outcomes[index] = _client_loop(client, mix, duration, rng)
        except Exception as error:  # noqa: BLE001 - surfaced to the caller
            barrier.abort()
            errors.append(error)

    threads = [
        threading.Thread(target=work, args=(index,), name=f"workload-{index}")
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [outcome for outcome in outcomes if outcome is not None]


def _run_processes(client_factory, mix, clients, duration, seed):
    if not process_mode_available():
        raise RuntimeError(
            "workload process mode requires the fork start method "
            "(unavailable on this platform); use mode='thread'"
        )
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    barrier = context.Barrier(clients)

    def work(index):
        # Every exit path enqueues a message: the parent never has to
        # block on a child that died before reporting.  A failing child
        # breaks the barrier so its siblings fail fast instead of waiting
        # forever for a start that cannot happen.
        try:
            client = client_factory()
            rng = Random(seed + index)
            barrier.wait()
            queue.put((index, _client_loop(client, mix, duration, rng), None))
        except Exception as error:  # noqa: BLE001 - relayed to the parent
            try:
                barrier.abort()
            except Exception:  # noqa: BLE001 - barrier may be gone already
                pass
            queue.put((index, None, f"{type(error).__name__}: {error}"))

    processes = [
        context.Process(target=work, args=(index,), name=f"workload-{index}")
        for index in range(clients)
    ]
    for process in processes:
        process.start()
    outcomes = []
    failures = []
    try:
        # Collect one message per child, polling so a child killed before
        # it could report (OOM, signal) cannot hang the run.
        give_up_at = time.monotonic() + duration + 60.0
        pending = clients
        while pending:
            try:
                _index, outcome, failure = queue.get(timeout=0.5)
            except Empty:
                # Both child exit paths enqueue first and exit 0, so a
                # non-zero exit (OOM kill, signal) means a lost report.
                dead = sum(
                    1 for process in processes
                    if not process.is_alive()
                    and process.exitcode not in (0, None)
                )
                if dead:
                    raise RuntimeError(
                        f"{dead} workload client process(es) died without "
                        "reporting a result"
                    ) from None
                if time.monotonic() > give_up_at:
                    raise RuntimeError(
                        "workload client processes did not finish within "
                        f"{duration + 60.0:.0f}s"
                    ) from None
                continue
            pending -= 1
            if failure is not None:
                failures.append(failure)
            else:
                outcomes.append(outcome)
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
    if failures:
        raise RuntimeError(f"workload client failed: {failures[0]}")
    return outcomes


def run_engine_workload(engine, mix=None, clients=4, duration=5.0,
                        mode="thread", timeout=None, seed=97):
    """Closed-loop workload directly against an engine (no HTTP).

    ``mode="process"`` is how an in-process workload scales past the GIL:
    the engine (and its store) must be fully built before the call, so the
    forked clients share it copy-on-write.
    """
    mix = mix or WorkloadMix.from_catalog()
    return run_workload(
        lambda: EngineWorkloadClient(engine, timeout=timeout),
        mix, clients=clients, duration=duration, mode=mode, seed=seed,
    )


def run_http_workload(url, mix=None, clients=4, duration=5.0, mode="thread",
                      timeout=None, seed=97):
    """Closed-loop workload against a running SPARQL Protocol endpoint."""
    mix = mix or WorkloadMix.from_catalog()
    return run_workload(
        lambda: HttpWorkloadClient(url, timeout=timeout),
        mix, clients=clients, duration=duration, mode=mode, seed=seed,
    )


def run_mixed_engine_workload(engine, mix=None, update_fraction=0.1,
                              clients=4, duration=5.0, timeout=None, seed=97):
    """Closed-loop mixed read/write workload directly against an engine.

    The engine's store is wrapped in an :class:`~repro.store.MvccStore`
    when it is not one already — concurrent clients then commit updates
    through the serialized writer while readers stay on pinned snapshots.
    Thread mode only: forked processes would each write a private
    copy-on-write store, so updates would never be visible across clients.
    """
    from ..store.mvcc import MvccStore

    if not hasattr(engine.store, "write_transaction"):
        engine.store = MvccStore(engine.store)
    mix = _as_mixed(mix, update_fraction)
    return run_workload(
        lambda: MixedEngineWorkloadClient(engine, timeout=timeout),
        mix, clients=clients, duration=duration, mode="thread", seed=seed,
    )


def run_mixed_http_workload(url, mix=None, update_fraction=0.1, clients=4,
                            duration=5.0, mode="thread", timeout=None,
                            seed=97):
    """Closed-loop mixed read/write workload against a running endpoint."""
    mix = _as_mixed(mix, update_fraction)
    return run_workload(
        lambda: MixedHttpWorkloadClient(url, timeout=timeout),
        mix, clients=clients, duration=duration, mode=mode, seed=seed,
    )


def _as_mixed(mix, update_fraction):
    if isinstance(mix, MixedWorkloadMix):
        return mix
    return MixedWorkloadMix(mix, update_fraction=update_fraction)
