"""Benchmark metrics (Section VI-B of the paper).

The paper proposes five metrics; this module implements the computational
ones:

* **Success rate** — per query and document size, one of Success, Timeout,
  Memory exhaustion, or Error (Table IV).
* **Global performance** — arithmetic and geometric mean of per-query
  execution times, with failed queries penalised by the timeout value
  (Tables VI and VII).
* **Memory consumption** — mean of the per-query memory high watermarks.

Loading time and per-query performance are raw measurements collected by the
runner/harness and reported directly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Optional as Opt

#: Success-rate outcome codes, matching the paper's shortcuts.
SUCCESS = "success"
TIMEOUT = "timeout"
MEMORY = "memory"
ERROR = "error"

#: Workload-only outcome codes (mixed read/write serving runs).
#: ``rejected``: the server refused the operation by policy (403 read-only
#: mode, 405 wrong method) — a distinct outcome, not a client/server fault.
#: ``overload``: the server shed load (429, or a 503 that does not carry the
#: structured ``timeout`` error code).
#: ``torn``: a reader observed a half-applied write — the snapshot-isolation
#: violation the mixed workload's canary probe exists to detect.
REJECTED = "rejected"
OVERLOAD = "overload"
TORN = "torn"

_SHORTCUTS = {SUCCESS: "+", TIMEOUT: "T", MEMORY: "M", ERROR: "E"}

#: Penalty (seconds) the paper assigns to failed queries when computing the
#: global means: the timeout value, 3600s in the original setup.
PAPER_PENALTY_SECONDS = 3600.0


@dataclass
class QueryMeasurement:
    """Outcome of one query execution on one engine and document."""

    query_id: str
    engine: str
    document_size: int
    status: str = SUCCESS
    elapsed: float = 0.0
    cpu_time: float = 0.0
    peak_memory: int = 0
    result_size: Opt[int] = None
    error: Opt[str] = None

    @property
    def succeeded(self):
        return self.status == SUCCESS

    def status_shortcut(self):
        """One-character outcome code as used in Table IV."""
        return _SHORTCUTS.get(self.status, "?")


def arithmetic_mean(values):
    """Plain average; returns 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values):
    """The n-th root of the product of n values (all must be positive)."""
    values = list(values)
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        # Clamp to a small epsilon: a 0-second measurement would zero the
        # whole product, which the paper's metric does not intend.
        values = [max(value, 1e-9) for value in values]
    log_sum = sum(math.log(value) for value in values)
    return math.exp(log_sum / len(values))


def percentile(values, fraction):
    """The ``fraction``-quantile of ``values`` (linear interpolation).

    ``fraction`` is in [0, 1] (0.95 for p95).  Returns 0.0 for an empty
    sequence — workload reports use this for query classes that never ran.
    """
    values = sorted(values)
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    position = fraction * (len(values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(values) - 1)
    weight = position - lower
    return values[lower] * (1.0 - weight) + values[upper] * weight


def classify_http_status(status, body=None):
    """Map one HTTP response onto a workload outcome code.

    ``body`` (bytes or str, optional) disambiguates 503: the SPARQL
    Protocol server returns 503 both for an expired per-query deadline
    (structured payload with error code ``timeout``) and — like any proxy
    or gateway in front of it — for plain overload.  Only the former is a
    :data:`TIMEOUT`; a 503 without the timeout code is :data:`OVERLOAD`.
    Policy refusals (403 read-only mode, 405 method not allowed) are
    :data:`REJECTED`, 429 is :data:`OVERLOAD`, anything else non-2xx is an
    :data:`ERROR`.
    """
    if 200 <= status < 300:
        return SUCCESS
    if status in (403, 405):
        return REJECTED
    if status == 429:
        return OVERLOAD
    if status == 503:
        if body is not None:
            if isinstance(body, bytes):
                body = body.decode("utf-8", errors="replace")
            try:
                code = json.loads(body).get("error", {}).get("code")
            except (ValueError, AttributeError):
                code = None
            return TIMEOUT if code == TIMEOUT else OVERLOAD
        return TIMEOUT
    return ERROR


def penalized_times(measurements, penalty=PAPER_PENALTY_SECONDS):
    """Execution times with failures replaced by the penalty value."""
    return [
        measurement.elapsed if measurement.succeeded else penalty
        for measurement in measurements
    ]


def global_performance(measurements, penalty=PAPER_PENALTY_SECONDS):
    """Arithmetic/geometric mean execution time and mean memory (Tables VI/VII)."""
    times = penalized_times(measurements, penalty)
    memories = [m.peak_memory for m in measurements if m.succeeded]
    return {
        "arithmetic_mean_time": arithmetic_mean(times),
        "geometric_mean_time": geometric_mean(times),
        "mean_peak_memory": arithmetic_mean(memories),
        "queries": len(list(measurements)),
    }


def success_rate(measurements):
    """Counts of each outcome status plus the success ratio."""
    counts = {SUCCESS: 0, TIMEOUT: 0, MEMORY: 0, ERROR: 0}
    total = 0
    for measurement in measurements:
        counts[measurement.status] = counts.get(measurement.status, 0) + 1
        total += 1
    ratio = counts[SUCCESS] / total if total else 0.0
    return {"counts": counts, "total": total, "success_ratio": ratio}


def success_matrix(measurements):
    """Nested mapping document size -> query id -> status shortcut (Table IV)."""
    matrix = {}
    for measurement in measurements:
        row = matrix.setdefault(measurement.document_size, {})
        row[measurement.query_id] = measurement.status_shortcut()
    return matrix
