"""Timed, limited execution of benchmark queries.

The paper's methodology runs every query with a per-query timeout (30 minutes
on the original testbed) and an overall memory limit, classifying each
execution as success / timeout / memory exhaustion / error.  The runner
enforces the timeout as a true *mid-stream* deadline: each query is prepared
once per engine (parse+plan amortized across the harness's repeated runs, as
in the paper's repeated-execution methodology) and consumed through a
streaming cursor whose :class:`~repro.sparql.cursor.Deadline` is checked
inside the evaluation loops — an over-budget query raises
:class:`~repro.sparql.errors.QueryTimeout` while it is still evaluating,
instead of being classified only after running to completion.  A cooperative
post-hoc check remains as a backstop for code paths between deadline checks.
Memory high watermarks come from :mod:`tracemalloc`.
"""

from __future__ import annotations

import time
import tracemalloc

from ..sparql.cursor import Deadline
from ..sparql.errors import QueryTimeout
from .metrics import ERROR, MEMORY, SUCCESS, TIMEOUT, QueryMeasurement


class QueryRunner:
    """Runs single queries against an engine under time/memory budgets."""

    def __init__(self, timeout=30.0, memory_limit_bytes=None, trace_memory=True):
        self.timeout = timeout
        self.memory_limit_bytes = memory_limit_bytes
        self.trace_memory = trace_memory

    def _effective_timeout(self, budget):
        """Per-query time limit given the remaining overall budget."""
        if budget is None:
            return self.timeout
        if self.timeout is None:
            return budget
        return min(self.timeout, budget)

    def run(self, engine, query, document_size=0, engine_name=None, budget=None):
        """Execute one :class:`BenchmarkQuery` and return a QueryMeasurement.

        ``budget`` is the remaining overall harness budget in seconds; when
        given, the effective deadline is the tighter of the per-query timeout
        and that remaining budget, so a suite whose budget is nearly spent
        interrupts slow stragglers mid-evaluation.
        """
        engine_name = engine_name or engine.config.name
        measurement = QueryMeasurement(
            query_id=query.identifier,
            engine=engine_name,
            document_size=document_size,
        )
        tracing_started_here = False
        if self.trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            tracing_started_here = True
        if self.trace_memory:
            tracemalloc.reset_peak()

        effective_timeout = self._effective_timeout(budget)
        start_cpu = time.process_time()
        start_wall = time.perf_counter()
        try:
            # The engine-owned statement cache: parse+plan runs once per
            # (engine, query text), repeated runs execute the prepared plan.
            prepared = engine.prepare_cached(query.text)
            deadline = (
                None if effective_timeout is None else Deadline(effective_timeout)
            )
            cursor = prepared.run(deadline=deadline)
            if cursor.form == "ASK":
                measurement.result_size = 1
            else:
                size = 0
                for _binding in cursor:
                    size += 1
                measurement.result_size = size
        except QueryTimeout as error:
            measurement.status = TIMEOUT
            measurement.error = str(error)
        except MemoryError as error:
            measurement.status = MEMORY
            measurement.error = str(error) or "memory exhausted"
        except Exception as error:  # noqa: BLE001 - the paper's Error bucket
            measurement.status = ERROR
            measurement.error = f"{type(error).__name__}: {error}"
        measurement.elapsed = time.perf_counter() - start_wall
        measurement.cpu_time = time.process_time() - start_cpu

        if self.trace_memory:
            _current, peak = tracemalloc.get_traced_memory()
            measurement.peak_memory = peak
            if tracing_started_here:
                tracemalloc.stop()

        if measurement.status == SUCCESS:
            # Backstop for evaluations that finished between deadline checks.
            if effective_timeout is not None and measurement.elapsed > effective_timeout:
                measurement.status = TIMEOUT
            elif (self.memory_limit_bytes is not None
                  and measurement.peak_memory > self.memory_limit_bytes):
                measurement.status = MEMORY
        return measurement

    def run_many(self, engine, queries, document_size=0, engine_name=None,
                 overall_budget=None):
        """Run a sequence of benchmark queries; returns the measurement list.

        ``overall_budget`` (seconds) bounds the whole sequence: the remaining
        budget is passed down to every execution, and once it is exhausted no
        further query is *issued* — the rest of the sequence is classified as
        timeouts up front (``elapsed`` 0, error noting the exhausted budget),
        matching the paper's penalty treatment of runs that never finish.
        """
        engine_name = engine_name or engine.config.name
        deadline = (
            None if overall_budget is None
            else time.perf_counter() + max(overall_budget, 0.0)
        )
        measurements = []
        for query in queries:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    measurements.append(QueryMeasurement(
                        query_id=query.identifier,
                        engine=engine_name,
                        document_size=document_size,
                        status=TIMEOUT,
                        error="harness budget exhausted before execution",
                    ))
                    continue
            measurements.append(self.run(
                engine, query, document_size=document_size,
                engine_name=engine_name, budget=remaining,
            ))
        return measurements


def time_loading(engine_config, graph):
    """Measure document loading time for an engine configuration.

    Returns ``(engine, elapsed_seconds)`` with the engine ready for queries.
    This is the paper's LOADING TIME metric, which applies to engines with a
    physical backend (for in-memory engines loading is part of evaluation).
    """
    from ..sparql.engine import SparqlEngine

    engine = SparqlEngine(engine_config)
    start = time.perf_counter()
    engine.load(graph)
    elapsed = time.perf_counter() - start
    return engine, elapsed
