"""Timed, limited execution of benchmark queries.

The paper's methodology runs every query with a per-query timeout (30 minutes
on the original testbed) and an overall memory limit, classifying each
execution as success / timeout / memory exhaustion / error.  Pure-Python
engines cannot be preempted mid-evaluation portably, so the runner enforces
the timeout *cooperatively*: elapsed time is checked after execution, and
runs exceeding the budget are classified as timeouts (their measured time is
still recorded).  Memory high watermarks come from :mod:`tracemalloc`.
"""

from __future__ import annotations

import time
import tracemalloc

from ..sparql.results import SelectResult
from .metrics import ERROR, MEMORY, SUCCESS, TIMEOUT, QueryMeasurement


class QueryRunner:
    """Runs single queries against an engine under time/memory budgets."""

    def __init__(self, timeout=30.0, memory_limit_bytes=None, trace_memory=True):
        self.timeout = timeout
        self.memory_limit_bytes = memory_limit_bytes
        self.trace_memory = trace_memory

    def _effective_timeout(self, budget):
        """Per-query time limit given the remaining overall budget."""
        if budget is None:
            return self.timeout
        if self.timeout is None:
            return budget
        return min(self.timeout, budget)

    def run(self, engine, query, document_size=0, engine_name=None, budget=None):
        """Execute one :class:`BenchmarkQuery` and return a QueryMeasurement.

        ``budget`` is the remaining overall harness budget in seconds; when
        given, the cooperative timeout classification uses the tighter of
        the per-query timeout and that remaining budget, so a suite whose
        budget is nearly spent classifies slow stragglers as timeouts.
        """
        engine_name = engine_name or engine.config.name
        measurement = QueryMeasurement(
            query_id=query.identifier,
            engine=engine_name,
            document_size=document_size,
        )
        tracing_started_here = False
        if self.trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            tracing_started_here = True
        if self.trace_memory:
            tracemalloc.reset_peak()

        start_cpu = time.process_time()
        start_wall = time.perf_counter()
        try:
            result = engine.query(query.text)
            if isinstance(result, SelectResult):
                measurement.result_size = len(result)
            else:
                measurement.result_size = 1
        except MemoryError as error:
            measurement.status = MEMORY
            measurement.error = str(error) or "memory exhausted"
        except Exception as error:  # noqa: BLE001 - the paper's Error bucket
            measurement.status = ERROR
            measurement.error = f"{type(error).__name__}: {error}"
        measurement.elapsed = time.perf_counter() - start_wall
        measurement.cpu_time = time.process_time() - start_cpu

        if self.trace_memory:
            _current, peak = tracemalloc.get_traced_memory()
            measurement.peak_memory = peak
            if tracing_started_here:
                tracemalloc.stop()

        effective_timeout = self._effective_timeout(budget)
        if measurement.status == SUCCESS:
            if effective_timeout is not None and measurement.elapsed > effective_timeout:
                measurement.status = TIMEOUT
            elif (self.memory_limit_bytes is not None
                  and measurement.peak_memory > self.memory_limit_bytes):
                measurement.status = MEMORY
        return measurement

    def run_many(self, engine, queries, document_size=0, engine_name=None,
                 overall_budget=None):
        """Run a sequence of benchmark queries; returns the measurement list.

        ``overall_budget`` (seconds) bounds the whole sequence: the remaining
        budget is passed down to every execution, and once it is exhausted no
        further query is *issued* — the rest of the sequence is classified as
        timeouts up front (``elapsed`` 0, error noting the exhausted budget),
        matching the paper's penalty treatment of runs that never finish.
        """
        engine_name = engine_name or engine.config.name
        deadline = (
            None if overall_budget is None
            else time.perf_counter() + max(overall_budget, 0.0)
        )
        measurements = []
        for query in queries:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    measurements.append(QueryMeasurement(
                        query_id=query.identifier,
                        engine=engine_name,
                        document_size=document_size,
                        status=TIMEOUT,
                        error="harness budget exhausted before execution",
                    ))
                    continue
            measurements.append(self.run(
                engine, query, document_size=document_size,
                engine_name=engine_name, budget=remaining,
            ))
        return measurements


def time_loading(engine_config, graph):
    """Measure document loading time for an engine configuration.

    Returns ``(engine, elapsed_seconds)`` with the engine ready for queries.
    This is the paper's LOADING TIME metric, which applies to engines with a
    physical backend (for in-memory engines loading is part of evaluation).
    """
    from ..sparql.engine import SparqlEngine

    engine = SparqlEngine(engine_config)
    start = time.perf_counter()
    engine.load(graph)
    elapsed = time.perf_counter() - start
    return engine, elapsed
