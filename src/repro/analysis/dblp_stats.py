"""Measurement of generated documents against the paper's DBLP analysis.

Section III of the paper derives the distributions that the generator must
mirror; this module measures those same quantities back from a generated
:class:`~repro.rdf.Graph` so that tests and benches can verify the
reproduction quantitatively:

* document-class instance counts, overall and per year (Figure 2b,
  Table VIII),
* attribute probabilities per class (Tables I and IX),
* authors: total author attributes, distinct persons, publication-count
  histogram (Figure 2c),
* citations: outgoing-citation histogram (Figure 2a) and incoming-citation
  histogram (the Section III-D power law).
"""

from __future__ import annotations

from collections import Counter

from ..rdf.namespace import BENCH, DC, DCTERMS, FOAF, RDF, SWRC
from ..rdf.terms import BNode, URIRef

#: bench: class URI -> document class name (inverse of the writer mapping).
_CLASS_NAMES = {
    BENCH.Article: "article",
    BENCH.Inproceedings: "inproceedings",
    BENCH.Proceedings: "proceedings",
    BENCH.Book: "book",
    BENCH.Incollection: "incollection",
    BENCH.PhDThesis: "phdthesis",
    BENCH.MastersThesis: "mastersthesis",
    BENCH.WWW: "www",
    BENCH.Journal: "journal",
}

#: RDF property -> DTD attribute name, for re-measuring Table IX.
_PROPERTY_ATTRIBUTES = {
    SWRC.address: "address",
    DC.creator: "author",
    BENCH.booktitle: "booktitle",
    BENCH.cdrom: "cdrom",
    SWRC.chapter: "chapter",
    DCTERMS.references: "cite",
    DCTERMS.partOf: "crossref",
    SWRC.editor: "editor",
    SWRC.isbn: "isbn",
    SWRC.journal: "journal",
    SWRC.month: "month",
    BENCH.note: "note",
    SWRC.number: "number",
    SWRC.pages: "pages",
    DC.publisher: "publisher",
    SWRC.series: "series",
    DC.title: "title",
    FOAF.homepage: "url",
    SWRC.volume: "volume",
    DCTERMS.issued: "year",
}


class DocumentSetStatistics:
    """All Section III measurements over one generated graph."""

    def __init__(self, graph):
        self.graph = graph
        self._types = {}           # subject -> class name
        self._years = {}           # subject -> int year
        self._subject_attributes = {}   # subject -> Counter(attribute -> occurrences)
        self._scan()

    def _scan(self):
        rdf_type = RDF.type
        issued = DCTERMS.issued
        for triple in self.graph:
            subject, predicate, obj = triple
            if predicate == rdf_type and obj in _CLASS_NAMES:
                self._types[subject] = _CLASS_NAMES[obj]
            if predicate == issued:
                try:
                    self._years[subject] = int(str(obj))
                except ValueError:
                    pass
            attribute = _PROPERTY_ATTRIBUTES.get(predicate)
            if attribute is not None:
                counter = self._subject_attributes.setdefault(subject, Counter())
                counter[attribute] += 1

    # -- document classes -----------------------------------------------------

    def class_counts(self):
        """Total instances per document class (Table VIII columns)."""
        counts = Counter(self._types.values())
        return dict(counts)

    def class_counts_by_year(self):
        """Mapping year -> class name -> count (Figure 2b)."""
        by_year = {}
        for subject, class_name in self._types.items():
            year = self._years.get(subject)
            if year is None:
                continue
            per_year = by_year.setdefault(year, Counter())
            per_year[class_name] += 1
        return {year: dict(counts) for year, counts in by_year.items()}

    def last_year(self):
        """Latest dcterms:issued year present in the data."""
        return max(self._years.values()) if self._years else None

    # -- attribute probabilities (Tables I / IX) ---------------------------------

    def attribute_probability(self, attribute, document_class):
        """Measured probability that class instances carry the attribute."""
        instances = [s for s, name in self._types.items() if name == document_class]
        if not instances:
            return 0.0
        carrying = sum(
            1 for subject in instances
            if self._subject_attributes.get(subject, {}).get(attribute, 0) > 0
        )
        return carrying / len(instances)

    def attribute_probability_table(self, attributes, classes):
        """Measured sub-matrix of Table IX."""
        return {
            attribute: {
                document_class: self.attribute_probability(attribute, document_class)
                for document_class in classes
            }
            for attribute in attributes
        }

    # -- authors -----------------------------------------------------------------

    def total_authors(self):
        """Total number of author attributes (dc:creator triples)."""
        return sum(1 for _ in self.graph.triples(None, DC.creator, None))

    def distinct_authors(self):
        """Number of distinct persons appearing as authors."""
        return len({t.object for t in self.graph.triples(None, DC.creator, None)})

    def authors_per_paper_histogram(self):
        """Mapping author count per document -> number of documents."""
        histogram = Counter()
        for subject, counter in self._subject_attributes.items():
            count = counter.get("author", 0)
            if count > 0 and subject in self._types:
                histogram[count] += 1
        return dict(histogram)

    def publication_count_histogram(self):
        """Mapping publications per author -> number of authors (Figure 2c)."""
        per_person = Counter()
        for triple in self.graph.triples(None, DC.creator, None):
            per_person[triple.object] += 1
        histogram = Counter(per_person.values())
        return dict(histogram)

    # -- persons and citations ---------------------------------------------------

    def person_count(self):
        """Number of foaf:Person instances."""
        return sum(1 for _ in self.graph.triples(None, RDF.type, FOAF.Person))

    def blank_node_person_count(self):
        """Persons modelled as blank nodes (everyone but Paul Erdoes)."""
        return sum(
            1 for t in self.graph.triples(None, RDF.type, FOAF.Person)
            if isinstance(t.subject, BNode)
        )

    def outgoing_citation_histogram(self):
        """Mapping outgoing citations per citing document -> documents (Fig. 2a)."""
        histogram = Counter()
        for triple in self.graph.triples(None, DCTERMS.references, None):
            bag = triple.object
            members = sum(
                1 for member in self.graph.triples(bag, None, None)
                if member.predicate != RDF.type
            )
            if members > 0:
                histogram[members] += 1
        return dict(histogram)

    def incoming_citation_histogram(self):
        """Mapping incoming citations per document -> documents (Section III-D)."""
        incoming = Counter()
        bag_membership = {}
        membership_prefix = RDF.base + "_"
        for triple in self.graph:
            if triple.predicate == RDF.type:
                continue
            if str(triple.predicate).startswith(membership_prefix):
                bag_membership.setdefault(triple.subject, []).append(triple.object)
        for members in bag_membership.values():
            for target in members:
                if isinstance(target, URIRef):
                    incoming[target] += 1
        histogram = Counter(incoming.values())
        return dict(histogram)

    # -- summary --------------------------------------------------------------------

    def summary(self):
        """Table VIII style summary for one generated document."""
        counts = self.class_counts()
        return {
            "triples": len(self.graph),
            "data_up_to_year": self.last_year(),
            "total_authors": self.total_authors(),
            "distinct_authors": self.distinct_authors(),
            "class_counts": counts,
        }


def analyze(graph):
    """Convenience wrapper returning :class:`DocumentSetStatistics` for a graph."""
    return DocumentSetStatistics(graph)
