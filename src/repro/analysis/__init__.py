"""Analysis of generated documents against the paper's DBLP study (Section III)."""

from .dblp_stats import DocumentSetStatistics, analyze
from .figures import (
    citation_distribution_series,
    document_class_series,
    incoming_citation_series,
    publication_count_series,
)

__all__ = [
    "DocumentSetStatistics",
    "analyze",
    "citation_distribution_series",
    "document_class_series",
    "publication_count_series",
    "incoming_citation_series",
]
