"""Data series for the figures of the paper's DBLP analysis (Figure 2).

Each function returns both the *model* series (the fitted function from
Section III, evaluated directly) and, when a generated graph is supplied, the
*measured* series extracted from that graph — so benches can print the two
side by side and tests can assert that they agree in shape.
"""

from __future__ import annotations

from ..generator import distributions
from .dblp_stats import DocumentSetStatistics


def citation_distribution_series(graph=None, max_citations=60):
    """Figure 2(a): probability of exactly x outgoing citations.

    Returns ``{"model": [(x, p)], "measured": [(x, p)] or None}``.
    """
    model = [
        (x, distributions.CITATION_COUNT.probability(x))
        for x in range(1, max_citations + 1)
    ]
    measured = None
    if graph is not None:
        stats = _statistics(graph)
        histogram = stats.outgoing_citation_histogram()
        total = sum(histogram.values())
        if total:
            measured = [
                (x, histogram.get(x, 0) / total) for x in range(1, max_citations + 1)
            ]
    return {"model": model, "measured": measured}


def document_class_series(graph=None, years=None):
    """Figure 2(b): number of class instances per year.

    The model series evaluates the logistic growth curves; the measured
    series counts instances in the generated graph.
    """
    if years is None:
        years = tuple(range(1960, 2006))
    curves = {
        "journal": distributions.JOURNAL_GROWTH,
        "article": distributions.ARTICLE_GROWTH,
        "proceedings": distributions.PROCEEDINGS_GROWTH,
        "inproceedings": distributions.INPROCEEDINGS_GROWTH,
    }
    model = {
        name: [(year, curve.value(year)) for year in years]
        for name, curve in curves.items()
    }
    measured = None
    if graph is not None:
        stats = _statistics(graph)
        by_year = stats.class_counts_by_year()
        measured = {
            name: [(year, by_year.get(year, {}).get(name, 0)) for year in years]
            for name in curves
        }
    return {"model": model, "measured": measured}


def publication_count_series(graph=None, years=(1975, 1985, 1995, 2005), max_count=80):
    """Figure 2(c): number of authors with exactly x publications.

    The model series evaluates ``f_awp(x, yr)`` with the year's total
    publication count taken from the growth curves; the measured series is
    the publication-count histogram of the generated graph (which aggregates
    over all years the document contains).
    """
    model = {}
    for year in years:
        total_publications = (
            distributions.ARTICLE_GROWTH.value(year)
            + distributions.INPROCEEDINGS_GROWTH.value(year)
            + distributions.INCOLLECTION_GROWTH.value(year)
            + distributions.BOOK_GROWTH.value(year)
        )
        series = []
        for x in range(1, max_count + 1):
            value = distributions.authors_with_publications(x, year, total_publications)
            series.append((x, max(value, 0.0)))
        model[year] = series
    measured = None
    if graph is not None:
        stats = _statistics(graph)
        histogram = stats.publication_count_histogram()
        measured = [(x, histogram.get(x, 0)) for x in range(1, max_count + 1)]
    return {"model": model, "measured": measured}


def incoming_citation_series(graph, max_count=30):
    """Section III-D: histogram of incoming citations (power-law shaped)."""
    stats = _statistics(graph)
    histogram = stats.incoming_citation_histogram()
    return [(x, histogram.get(x, 0)) for x in range(1, max_count + 1)]


def _statistics(graph):
    if isinstance(graph, DocumentSetStatistics):
        return graph
    return DocumentSetStatistics(graph)
