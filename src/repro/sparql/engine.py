"""The SPARQL engine facade tying parser, optimizer, and evaluator together.

:class:`EngineConfig` captures the two axes the paper varies across engines:

* the storage backend / access-path profile (unindexed in-memory scan store
  versus a fully indexed "native" store), and
* the optimization level (triple-pattern reordering and filter pushing on or
  off).

Four preset configurations mirror the four engines whose results the paper
discusses (ARQ, Sesame-memory, Sesame-native, Virtuoso); the benchmark
harness runs all of them and the ablation benches flip individual flags.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from itertools import islice
from typing import Optional

from ..obs import NULL_TRACE, QueryTrace, get_registry
from ..rdf.graph import Graph
from ..store.indexed_store import IndexedStore
from ..store.memory_store import MemoryStore
from ..store.mvcc import read_snapshot
from . import algebra, optimizer, planner
from .ast import AskQuery, SelectQuery
from .bindings import variable_name
from .cursor import AskCursor, Deadline, SelectCursor
from .evaluator import NESTED_LOOP, SCAN_HASH, Evaluator
from .parser import parse_query
from .planner import PLANNER_COST, PLANNER_GREEDY, PLANNER_NONE


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of one SPARQL engine instance."""

    name: str = "native-optimized"
    store_type: str = "indexed"           # "memory" or "indexed"
    join_strategy: str = NESTED_LOOP      # NESTED_LOOP or SCAN_HASH
    reorder_patterns: bool = True
    push_filters: bool = True
    #: Reuse scan results of repeated triple patterns (Table II row 5).
    reuse_pattern_results: bool = False
    #: Join over dictionary ids when the store supports it (None = auto).
    #: Forcing False keeps an id-capable store on the term-space path, which
    #: is what the id-space ablation benchmark measures against.
    use_id_space: Optional[bool] = None
    #: Join-planner family: "none" (textual order), "greedy" (static
    #: selectivity reorder in :mod:`.optimizer`), or "cost" (the statistics
    #: backed physical planner in :mod:`.planner`).  ``None`` derives the
    #: family from ``reorder_patterns`` for backward compatibility.
    planner: Optional[str] = None
    #: Batch columnar kernels over sorted id runs (None = auto: on whenever
    #: the cost planner runs on an id-space store with sorted runs).  Forcing
    #: False keeps the tuple-at-a-time path; kernel annotation never changes
    #: pattern order or strategies, so both settings produce step-identical
    #: plans and (by the regression suite) identical result multisets.
    vectorize: Optional[bool] = None

    def resolved_planner(self):
        """The effective planner family for this configuration."""
        if self.planner is not None:
            if self.planner not in (PLANNER_NONE, PLANNER_GREEDY, PLANNER_COST):
                raise ValueError(f"unknown planner family {self.planner!r}")
            return self.planner
        return PLANNER_GREEDY if self.reorder_patterns else PLANNER_NONE

    def resolved_vectorize(self, store=None):
        """Whether plans built for ``store`` should carry batch kernels."""
        if self.vectorize is False:
            return False
        if self.resolved_planner() != PLANNER_COST:
            return False
        if self.use_id_space is False:
            return False
        if store is not None and not getattr(store, "supports_sorted_runs",
                                             False):
            return False
        return True

    def create_store(self):
        """Instantiate the storage backend this configuration asks for."""
        if self.store_type == "memory":
            return MemoryStore()
        if self.store_type == "indexed":
            return IndexedStore()
        raise ValueError(f"unknown store type {self.store_type!r}")


#: Engine presets mirroring the paper's evaluated engines (Section VI-C).
IN_MEMORY_BASELINE = EngineConfig(
    name="inmemory-baseline",
    store_type="memory",
    join_strategy=SCAN_HASH,
    reorder_patterns=False,
    push_filters=False,
)
IN_MEMORY_OPTIMIZED = EngineConfig(
    name="inmemory-optimized",
    store_type="memory",
    join_strategy=SCAN_HASH,
    reorder_patterns=True,
    push_filters=True,
    reuse_pattern_results=True,
)
NATIVE_BASELINE = EngineConfig(
    name="native-baseline",
    store_type="indexed",
    join_strategy=NESTED_LOOP,
    reorder_patterns=False,
    push_filters=False,
)
NATIVE_OPTIMIZED = EngineConfig(
    name="native-optimized",
    store_type="indexed",
    join_strategy=NESTED_LOOP,
    reorder_patterns=True,
    push_filters=True,
)
#: The cost-based planner on top of the native profile: statistics-driven
#: pattern order, per-step probe/scan choice, and bind joins.  Not part of
#: ENGINE_PRESETS (the paper's four-engine comparison) — the ablation
#: benchmarks contrast it against the greedy family explicitly.
NATIVE_COST = EngineConfig(
    name="native-cost",
    store_type="indexed",
    join_strategy=NESTED_LOOP,
    reorder_patterns=True,
    push_filters=True,
    planner=PLANNER_COST,
)

#: All presets in the order used by benchmark reports.
ENGINE_PRESETS = (
    IN_MEMORY_BASELINE,
    IN_MEMORY_OPTIMIZED,
    NATIVE_BASELINE,
    NATIVE_OPTIMIZED,
)


class SparqlEngine:
    """A queryable SPARQL engine over a loaded RDF document."""

    #: Maximum number of entries in the prepare_cached() statement cache.
    #: Far above any template workload (the catalog has 17 texts) while
    #: bounding memory when ad-hoc texts with inlined constants leak in.
    PREPARED_CACHE_SIZE = 256

    def __init__(self, config=None, store=None):
        self.config = config or NATIVE_OPTIMIZED
        # An explicit store (e.g. one rebuilt from a snapshot) bypasses
        # create_store(); the caller vouches that it matches the profile.
        self.store = store if store is not None else self.config.create_store()
        # Statement cache for prepare_cached(): lives exactly as long as the
        # engine, so cached plans never outlive (or pin) their store.  The
        # lock serializes lookup/insert/eviction — the cache is hit from
        # every worker thread of the SPARQL Protocol server.
        self._prepared_cache = {}
        self._prepared_lock = threading.Lock()
        # Statement-cache telemetry: process-wide counters (all engines of
        # the process aggregate into the same series).  Handles are cached
        # here once; recording is a no-op while the registry is disabled.
        registry = get_registry()
        self._cache_hits = registry.counter(
            "sp2b_prepared_cache_hits_total",
            "prepare_cached() lookups answered from the statement cache.",
        )
        self._cache_misses = registry.counter(
            "sp2b_prepared_cache_misses_total",
            "prepare_cached() lookups that had to parse and plan "
            "(first sight, stale store version, or evicted entry).",
        )
        self._cache_evictions = registry.counter(
            "sp2b_prepared_cache_evictions_total",
            "Statement-cache entries evicted by the LRU bound.",
        )

    # -- loading -----------------------------------------------------------

    def load(self, source):
        """Load RDF data (a Graph or an iterable of triples); returns count added."""
        return self.store.load_graph(source)

    @classmethod
    def from_graph(cls, graph, config=None):
        """Convenience constructor: build an engine and load ``graph``."""
        engine = cls(config)
        engine.load(graph)
        return engine

    @classmethod
    def from_store(cls, store, config=None):
        """Wrap an already-built store (snapshot loads, shared-store setups).

        When the configured profile asks for a different store family than
        ``store`` provides, the triples are bulk-copied into a store of the
        configured type so the engine's cost model stays truthful.
        """
        config = config or NATIVE_OPTIMIZED
        expects_ids = config.store_type == "indexed"
        if expects_ids != bool(getattr(store, "supports_id_access", False)):
            converted = config.create_store()
            converted.bulk_load(store.triples())
            store = converted
        return cls(config, store=store)

    # -- query pipeline -----------------------------------------------------

    def parse(self, query_text):
        """Parse query text into an AST (exposed for tests and tooling)."""
        return parse_query(query_text)

    def plan(self, query):
        """Translate (and optionally optimize/plan) a parsed query into algebra.

        The ``greedy`` planner family applies the static selectivity reorder
        of :mod:`.optimizer`; the ``cost`` family leaves ordering to the
        statistics-backed physical planner (:mod:`.planner`), which runs
        after filter pushing and attaches the plan to the tree.
        """
        if isinstance(query, str):
            query = self.parse(query)
        tree = algebra.translate_query(query)
        mode = self.config.resolved_planner()
        reorder = mode == PLANNER_GREEDY
        # One pinned generation for the whole planning pass, so selectivity
        # estimates and dictionary lookups cannot straddle an update commit.
        store = read_snapshot(self.store)
        if reorder or self.config.push_filters:
            tree = optimizer.optimize(
                tree,
                store,
                reorder=reorder,
                push_filters=self.config.push_filters,
            )
        if mode == PLANNER_COST:
            tree = planner.plan_tree(
                tree, store,
                vectorize=self.config.resolved_vectorize(store),
            )
        return query, tree

    def prepare(self, query_text, trace=NULL_TRACE):
        """Parse, translate, optimize, and cost-plan a query exactly once.

        Returns a :class:`PreparedQuery` whose :meth:`~PreparedQuery.run`
        executes the pre-built plan any number of times — the serving-shaped
        API for repeated query templates, where parse+plan cost is amortized
        across executions.  ``trace`` (a
        :class:`~repro.obs.tracing.QueryTrace`) receives ``parse`` and
        ``plan`` stage timings; the default records nothing.
        """
        with trace.span("parse"):
            parsed = self.parse(query_text)
        with trace.span("plan"):
            parsed, tree = self.plan(parsed)
        if not isinstance(parsed, (AskQuery, SelectQuery)):
            raise TypeError(f"unsupported query form: {parsed!r}")
        return PreparedQuery(self, query_text, parsed, tree)

    def prepare_cached(self, query_text, trace=NULL_TRACE):
        """Like :meth:`prepare`, memoized per query text on this engine.

        The statement cache the benchmark runner (and any serving loop
        re-issuing templates) uses: the first call prepares, every later
        call with the same text returns the same :class:`PreparedQuery`.
        The cache is engine-owned (dropped with the engine, never keeps a
        store alive) and LRU-bounded by :attr:`PREPARED_CACHE_SIZE`, so
        ad-hoc texts with inlined constants cannot grow it without limit —
        parameterized templates should pass constants via
        ``run(bindings=...)`` instead.

        Thread-safe: lookup, insertion, and eviction happen under the
        engine's statement-cache lock, so N server worker threads can share
        one engine.  A miss prepares *outside* the lock (parse+plan of a new
        template never blocks other threads' cache hits); when two threads
        race on the same uncached text, the first insertion wins and both
        get the same :class:`PreparedQuery`.

        Entries are keyed by the store version they were planned against:
        when an update publishes a new generation (bumping ``version``), the
        next lookup of every cached text re-prepares against fresh planner
        statistics instead of running a stale plan.
        """
        cache = self._prepared_cache
        version = getattr(self.store, "version", 0)
        with self._prepared_lock:
            entry = cache.pop(query_text, None)
            if entry is not None and entry[0] == version:
                # Re-insertion moves the entry to the back of the eviction
                # order.
                cache[query_text] = entry
                self._cache_hits.inc()
                return entry[1]
        self._cache_misses.inc()
        candidate = self.prepare(query_text, trace=trace)
        with self._prepared_lock:
            entry = cache.pop(query_text, None)
            if entry is None or entry[0] != version:
                entry = (version, candidate)
                while len(cache) >= self.PREPARED_CACHE_SIZE:
                    cache.pop(next(iter(cache)))
                    self._cache_evictions.inc()
            cache[query_text] = entry
            return entry[1]

    def stream(self, query_text, **run_options):
        """One-shot streaming execution: ``prepare(text).run(**options)``.

        Returns a lazy :class:`~repro.sparql.cursor.SelectCursor` /
        :class:`~repro.sparql.cursor.AskCursor`; accepts the same options as
        :meth:`PreparedQuery.run` (``bindings``, ``limit``, ``offset``,
        ``deadline``).
        """
        return self.prepare(query_text).run(**run_options)

    def query(self, query_text):
        """Parse, plan, evaluate, and materialize a query (eager shorthand).

        Equivalent to ``prepare(query_text).run().all()``: the whole result
        is materialized into a Select/Ask result container.  Serving code
        that wants laziness, LIMIT-bounded early exit, or mid-stream
        deadlines uses :meth:`prepare` / :meth:`stream` instead.
        """
        return self.prepare(query_text).run().all()

    def explain(self, query_text):
        """Execute a query with plan instrumentation and report the plan.

        Returns an :class:`~repro.sparql.planner.ExplainReport` whose
        rendering shows, per plan step, the estimated and the actually
        observed cardinality.  For the ``none``/``greedy`` planner families
        the tree keeps its configured order and physical strategy and is
        merely annotated with estimates, so the report describes exactly
        what the engine would do for :meth:`query`.  Actual counts require
        the id-space path; term-space execution reports estimates only.

        The report also carries ``stages`` — parse/plan/execute wall time —
        so ``repro query --profile`` shows where a one-shot query spends
        its front-end versus back-end time next to the per-step ``time=``
        column.
        """
        trace = QueryTrace()
        with trace.span("parse"):
            parsed = self.parse(query_text)
        mode = self.config.resolved_planner()
        with trace.span("plan"):
            parsed, tree = self.plan(parsed)
            if mode != PLANNER_COST:
                step_strategy = (
                    planner.PROBE if self.config.join_strategy == NESTED_LOOP
                    else planner.SCAN
                )
                tree = planner.annotate_tree(tree, self.store,
                                             strategy=step_strategy)
            for node in algebra.walk(tree):
                if isinstance(node, algebra.BGP) and node.plan is not None:
                    node.plan.reset_actuals()
        evaluator = Evaluator(
            read_snapshot(self.store),
            strategy=self.config.join_strategy,
            reuse_patterns=self.config.reuse_pattern_results,
            use_id_space=self.config.use_id_space,
            observe_plans=True,
        )
        with trace.span("execute"):
            outcome = evaluator.evaluate(tree)
            if isinstance(parsed, AskQuery):
                result_count = 1 if outcome else 0
            else:
                result_count = sum(1 for _binding in outcome)
        return planner.ExplainReport(
            tree=tree,
            planner=mode,
            engine=self.config.name,
            id_space=evaluator.uses_id_space,
            result_count=result_count,
            elapsed=trace.stages["execute"],
            stages=dict(trace.stages),
        )

    def update(self, update_text):
        """Parse and execute a SPARQL 1.1 Update operation.

        Accepts ``INSERT DATA``, ``DELETE DATA``, ``DELETE WHERE``, and
        ``DELETE/INSERT ... WHERE``; the WHERE pattern runs on this engine's
        configured execution profile.  Against an MVCC store the operation
        commits as one atomically-published generation; plain stores are
        mutated in place.  Returns an
        :class:`~repro.sparql.update.UpdateResult`.
        """
        from .update import execute_update

        return execute_update(
            self.store,
            update_text,
            evaluator_options={
                "strategy": self.config.join_strategy,
                "reuse_patterns": self.config.reuse_pattern_results,
                "use_id_space": self.config.use_id_space,
            },
        )

    def ask(self, query_text):
        """Run an ASK query and return its boolean answer."""
        result = self.query(query_text)
        return bool(result)

    def select(self, query_text):
        """Run a SELECT query and return its rows as tuples."""
        result = self.query(query_text)
        return result.rows()

    def __repr__(self):
        return f"SparqlEngine(config={self.config.name!r}, triples={len(self.store)})"


class PreparedQuery:
    """A query parsed, translated, optimized, and planned exactly once.

    Built by :meth:`SparqlEngine.prepare`; holds the finished algebra tree
    (with any attached physical plan) and executes it repeatedly through
    :meth:`run`.  Evaluation state is created fresh per run — prepared
    queries are reusable and independent across runs — while the one-time
    front-end cost (tokenize, parse, translate, optimize, cost-plan) is paid
    at prepare time only.
    """

    def __init__(self, engine, text, parsed, tree):
        self.engine = engine
        self.text = text
        self._parsed = parsed
        self._tree = tree
        if isinstance(parsed, SelectQuery):
            variables = parsed.projected_variables()
            if variables is None:
                variables = sorted(tree.variables(), key=str)
            self._variables = list(variables)
        else:
            self._variables = []
        #: Executions so far (amortization bookkeeping for harness reports).
        self.run_count = 0

    @property
    def form(self):
        """The query form: "SELECT" or "ASK"."""
        return "ASK" if isinstance(self._parsed, AskQuery) else "SELECT"

    @property
    def variables(self):
        """Projection variables of a SELECT query (empty for ASK)."""
        return list(self._variables)

    @property
    def tree(self):
        """The prepared algebra tree (exposed for tests and tooling)."""
        return self._tree

    def run(self, bindings=None, limit=None, offset=None, deadline=None,
            timeout=None):
        """Execute the prepared plan once; returns a streaming cursor.

        ``bindings`` pre-binds query variables to RDF terms (a mapping of
        variable/name -> term): every basic graph pattern starts from that
        partial solution, so index probes use the bound terms directly and
        an id-capable store short-circuits to the empty result when a bound
        term does not occur in the data.  ``limit``/``offset`` bound the
        result without re-planning — evaluation stops as soon as the window
        is produced.  ``deadline`` (a :class:`~repro.sparql.cursor.Deadline`
        or seconds, equivalently ``timeout=seconds``; when both are given
        the tighter bound applies) is checked inside the evaluation loops
        and raises :class:`~repro.sparql.errors.QueryTimeout` mid-stream.
        """
        deadline = Deadline.resolve(deadline)
        if timeout is not None:
            # Both given: the tighter bound wins (an unbounded deadline is
            # always looser than a finite timeout).
            timeout_deadline = Deadline(timeout)
            if (deadline is None or deadline.expires_at is None
                    or timeout_deadline.expires_at < deadline.expires_at):
                deadline = timeout_deadline
        seed = _normalize_bindings(bindings)
        config = self.engine.config
        # Pin one store generation for the whole run: every scan of this
        # cursor reads the same immutable snapshot even while concurrent
        # updates publish new generations (no-op for plain stores).
        evaluator = Evaluator(
            read_snapshot(self.engine.store),
            strategy=config.join_strategy,
            reuse_patterns=config.reuse_pattern_results,
            use_id_space=config.use_id_space,
            deadline=deadline,
            seed=seed,
        )
        self.run_count += 1
        if isinstance(self._parsed, AskQuery):
            return AskCursor(evaluator.evaluate(self._tree), deadline=deadline)
        rows = evaluator.evaluate(self._tree)
        if offset:
            rows = islice(rows, offset, None)
        if limit is not None:
            rows = islice(rows, limit)
        return SelectCursor(self._variables, rows, deadline=deadline)

    def __repr__(self):
        return (f"PreparedQuery(form={self.form!r}, runs={self.run_count}, "
                f"engine={self.engine.config.name!r})")


def _normalize_bindings(bindings):
    """Normalize a pre-binding mapping to {variable name: term} (or None)."""
    if not bindings:
        return None
    items = bindings.items() if hasattr(bindings, "items") else bindings
    return {variable_name(variable): term for variable, term in items}


def load_engines(graph, configs=ENGINE_PRESETS):
    """Build one engine per configuration, all loaded with the same graph.

    The source is loaded once per *store family* (memory / indexed) through
    the streaming bulk-load path, and every configuration of the same family
    shares the resulting store — queries never mutate stores, and re-running
    the full per-preset load would re-iterate the entire graph for
    configurations that only differ in evaluation strategy.
    """
    if isinstance(graph, Graph):
        source = graph
    else:
        source = Graph(graph)
    stores = {}
    engines = []
    for config in configs:
        store = stores.get(config.store_type)
        if store is None:
            store = config.create_store()
            store.bulk_load(iter(source))
            stores[config.store_type] = store
        engines.append(SparqlEngine(config, store=store))
    return engines
