"""The SPARQL engine facade tying parser, optimizer, and evaluator together.

:class:`EngineConfig` captures the two axes the paper varies across engines:

* the storage backend / access-path profile (unindexed in-memory scan store
  versus a fully indexed "native" store), and
* the optimization level (triple-pattern reordering and filter pushing on or
  off).

Four preset configurations mirror the four engines whose results the paper
discusses (ARQ, Sesame-memory, Sesame-native, Virtuoso); the benchmark
harness runs all of them and the ablation benches flip individual flags.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..rdf.graph import Graph
from ..store.indexed_store import IndexedStore
from ..store.memory_store import MemoryStore
from . import algebra, optimizer, planner
from .ast import AskQuery, SelectQuery
from .evaluator import NESTED_LOOP, SCAN_HASH, Evaluator
from .parser import parse_query
from .planner import PLANNER_COST, PLANNER_GREEDY, PLANNER_NONE
from .results import AskResult, SelectResult


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of one SPARQL engine instance."""

    name: str = "native-optimized"
    store_type: str = "indexed"           # "memory" or "indexed"
    join_strategy: str = NESTED_LOOP      # NESTED_LOOP or SCAN_HASH
    reorder_patterns: bool = True
    push_filters: bool = True
    #: Reuse scan results of repeated triple patterns (Table II row 5).
    reuse_pattern_results: bool = False
    #: Join over dictionary ids when the store supports it (None = auto).
    #: Forcing False keeps an id-capable store on the term-space path, which
    #: is what the id-space ablation benchmark measures against.
    use_id_space: Optional[bool] = None
    #: Join-planner family: "none" (textual order), "greedy" (static
    #: selectivity reorder in :mod:`.optimizer`), or "cost" (the statistics
    #: backed physical planner in :mod:`.planner`).  ``None`` derives the
    #: family from ``reorder_patterns`` for backward compatibility.
    planner: Optional[str] = None

    def resolved_planner(self):
        """The effective planner family for this configuration."""
        if self.planner is not None:
            if self.planner not in (PLANNER_NONE, PLANNER_GREEDY, PLANNER_COST):
                raise ValueError(f"unknown planner family {self.planner!r}")
            return self.planner
        return PLANNER_GREEDY if self.reorder_patterns else PLANNER_NONE

    def create_store(self):
        """Instantiate the storage backend this configuration asks for."""
        if self.store_type == "memory":
            return MemoryStore()
        if self.store_type == "indexed":
            return IndexedStore()
        raise ValueError(f"unknown store type {self.store_type!r}")


#: Engine presets mirroring the paper's evaluated engines (Section VI-C).
IN_MEMORY_BASELINE = EngineConfig(
    name="inmemory-baseline",
    store_type="memory",
    join_strategy=SCAN_HASH,
    reorder_patterns=False,
    push_filters=False,
)
IN_MEMORY_OPTIMIZED = EngineConfig(
    name="inmemory-optimized",
    store_type="memory",
    join_strategy=SCAN_HASH,
    reorder_patterns=True,
    push_filters=True,
    reuse_pattern_results=True,
)
NATIVE_BASELINE = EngineConfig(
    name="native-baseline",
    store_type="indexed",
    join_strategy=NESTED_LOOP,
    reorder_patterns=False,
    push_filters=False,
)
NATIVE_OPTIMIZED = EngineConfig(
    name="native-optimized",
    store_type="indexed",
    join_strategy=NESTED_LOOP,
    reorder_patterns=True,
    push_filters=True,
)
#: The cost-based planner on top of the native profile: statistics-driven
#: pattern order, per-step probe/scan choice, and bind joins.  Not part of
#: ENGINE_PRESETS (the paper's four-engine comparison) — the ablation
#: benchmarks contrast it against the greedy family explicitly.
NATIVE_COST = EngineConfig(
    name="native-cost",
    store_type="indexed",
    join_strategy=NESTED_LOOP,
    reorder_patterns=True,
    push_filters=True,
    planner=PLANNER_COST,
)

#: All presets in the order used by benchmark reports.
ENGINE_PRESETS = (
    IN_MEMORY_BASELINE,
    IN_MEMORY_OPTIMIZED,
    NATIVE_BASELINE,
    NATIVE_OPTIMIZED,
)


class SparqlEngine:
    """A queryable SPARQL engine over a loaded RDF document."""

    def __init__(self, config=None, store=None):
        self.config = config or NATIVE_OPTIMIZED
        # An explicit store (e.g. one rebuilt from a snapshot) bypasses
        # create_store(); the caller vouches that it matches the profile.
        self.store = store if store is not None else self.config.create_store()

    # -- loading -----------------------------------------------------------

    def load(self, source):
        """Load RDF data (a Graph or an iterable of triples); returns count added."""
        return self.store.load_graph(source)

    @classmethod
    def from_graph(cls, graph, config=None):
        """Convenience constructor: build an engine and load ``graph``."""
        engine = cls(config)
        engine.load(graph)
        return engine

    @classmethod
    def from_store(cls, store, config=None):
        """Wrap an already-built store (snapshot loads, shared-store setups).

        When the configured profile asks for a different store family than
        ``store`` provides, the triples are bulk-copied into a store of the
        configured type so the engine's cost model stays truthful.
        """
        config = config or NATIVE_OPTIMIZED
        expects_ids = config.store_type == "indexed"
        if expects_ids != bool(getattr(store, "supports_id_access", False)):
            converted = config.create_store()
            converted.bulk_load(store.triples())
            store = converted
        return cls(config, store=store)

    # -- query pipeline -----------------------------------------------------

    def parse(self, query_text):
        """Parse query text into an AST (exposed for tests and tooling)."""
        return parse_query(query_text)

    def plan(self, query):
        """Translate (and optionally optimize/plan) a parsed query into algebra.

        The ``greedy`` planner family applies the static selectivity reorder
        of :mod:`.optimizer`; the ``cost`` family leaves ordering to the
        statistics-backed physical planner (:mod:`.planner`), which runs
        after filter pushing and attaches the plan to the tree.
        """
        if isinstance(query, str):
            query = self.parse(query)
        tree = algebra.translate_query(query)
        mode = self.config.resolved_planner()
        reorder = mode == PLANNER_GREEDY
        if reorder or self.config.push_filters:
            tree = optimizer.optimize(
                tree,
                self.store,
                reorder=reorder,
                push_filters=self.config.push_filters,
            )
        if mode == PLANNER_COST:
            tree = planner.plan_tree(tree, self.store)
        return query, tree

    def query(self, query_text):
        """Parse, plan, and evaluate a query; returns a Select/Ask result."""
        parsed, tree = self.plan(query_text)
        evaluator = Evaluator(
            self.store,
            strategy=self.config.join_strategy,
            reuse_patterns=self.config.reuse_pattern_results,
            use_id_space=self.config.use_id_space,
        )
        outcome = evaluator.evaluate(tree)
        if isinstance(parsed, AskQuery):
            return AskResult(outcome)
        if isinstance(parsed, SelectQuery):
            variables = parsed.projected_variables()
            if variables is None:
                variables = sorted(tree.variables(), key=str)
            return SelectResult(variables, outcome)
        raise TypeError(f"unsupported query form: {parsed!r}")

    def explain(self, query_text):
        """Execute a query with plan instrumentation and report the plan.

        Returns an :class:`~repro.sparql.planner.ExplainReport` whose
        rendering shows, per plan step, the estimated and the actually
        observed cardinality.  For the ``none``/``greedy`` planner families
        the tree keeps its configured order and physical strategy and is
        merely annotated with estimates, so the report describes exactly
        what the engine would do for :meth:`query`.  Actual counts require
        the id-space path; term-space execution reports estimates only.
        """
        parsed, tree = self.plan(query_text)
        mode = self.config.resolved_planner()
        if mode != PLANNER_COST:
            step_strategy = (
                planner.PROBE if self.config.join_strategy == NESTED_LOOP
                else planner.SCAN
            )
            tree = planner.annotate_tree(tree, self.store, strategy=step_strategy)
        for node in algebra.walk(tree):
            if isinstance(node, algebra.BGP) and node.plan is not None:
                node.plan.reset_actuals()
        evaluator = Evaluator(
            self.store,
            strategy=self.config.join_strategy,
            reuse_patterns=self.config.reuse_pattern_results,
            use_id_space=self.config.use_id_space,
            observe_plans=True,
        )
        start = time.perf_counter()
        outcome = evaluator.evaluate(tree)
        if isinstance(parsed, AskQuery):
            result_count = 1 if outcome else 0
        else:
            result_count = sum(1 for _binding in outcome)
        elapsed = time.perf_counter() - start
        return planner.ExplainReport(
            tree=tree,
            planner=mode,
            engine=self.config.name,
            id_space=evaluator.uses_id_space,
            result_count=result_count,
            elapsed=elapsed,
        )

    def ask(self, query_text):
        """Run an ASK query and return its boolean answer."""
        result = self.query(query_text)
        return bool(result)

    def select(self, query_text):
        """Run a SELECT query and return its rows as tuples."""
        result = self.query(query_text)
        return result.rows()

    def __repr__(self):
        return f"SparqlEngine(config={self.config.name!r}, triples={len(self.store)})"


def load_engines(graph, configs=ENGINE_PRESETS):
    """Build one engine per configuration, all loaded with the same graph."""
    if isinstance(graph, Graph):
        source = graph
    else:
        source = Graph(graph)
    return [SparqlEngine.from_graph(source, config) for config in configs]
