"""SPARQL query processor: parser, algebra, optimizer, evaluator, engine."""

from .algebra import translate_group, translate_query
from .ast import AskQuery, SelectQuery
from .bindings import EMPTY_BINDING, Binding, variable_name
from .cursor import AskCursor, Deadline, ResultCursor, SelectCursor
from .engine import (
    ENGINE_PRESETS,
    IN_MEMORY_BASELINE,
    IN_MEMORY_OPTIMIZED,
    NATIVE_BASELINE,
    NATIVE_COST,
    NATIVE_OPTIMIZED,
    EngineConfig,
    PreparedQuery,
    SparqlEngine,
    load_engines,
)
from .errors import (
    EvaluationError,
    ExpressionError,
    QueryTimeout,
    SparqlError,
    SparqlSyntaxError,
    error_code,
    error_payload,
)
from .serializers import CONTENT_TYPES as RESULT_CONTENT_TYPES
from .serializers import FORMATS as RESULT_FORMATS
from .evaluator import NESTED_LOOP, SCAN_HASH, Evaluator
from .idspace import IdSpaceEvaluation, SlotBinding, SlotLayout
from .optimizer import optimize, reorder_patterns
from .parser import parse_query, parse_update
from .planner import (
    PLANNER_COST,
    PLANNER_GREEDY,
    PLANNER_NONE,
    BGPPlan,
    CostModel,
    ExplainReport,
    JoinPlan,
    PlanStep,
    annotate_tree,
    plan_bgp,
    plan_tree,
)
from .results import AskResult, SelectResult
from .update import UpdateResult, execute_update

__all__ = [
    "parse_query",
    "parse_update",
    "execute_update",
    "UpdateResult",
    "translate_query",
    "translate_group",
    "optimize",
    "reorder_patterns",
    "Evaluator",
    "IdSpaceEvaluation",
    "SlotLayout",
    "SlotBinding",
    "NESTED_LOOP",
    "SCAN_HASH",
    "Binding",
    "EMPTY_BINDING",
    "variable_name",
    "SelectQuery",
    "AskQuery",
    "SelectResult",
    "AskResult",
    "SelectCursor",
    "AskCursor",
    "ResultCursor",
    "Deadline",
    "RESULT_FORMATS",
    "RESULT_CONTENT_TYPES",
    "SparqlEngine",
    "EngineConfig",
    "PreparedQuery",
    "load_engines",
    "ENGINE_PRESETS",
    "IN_MEMORY_BASELINE",
    "IN_MEMORY_OPTIMIZED",
    "NATIVE_BASELINE",
    "NATIVE_COST",
    "NATIVE_OPTIMIZED",
    "PLANNER_NONE",
    "PLANNER_GREEDY",
    "PLANNER_COST",
    "BGPPlan",
    "PlanStep",
    "JoinPlan",
    "CostModel",
    "ExplainReport",
    "plan_bgp",
    "plan_tree",
    "annotate_tree",
    "SparqlError",
    "SparqlSyntaxError",
    "EvaluationError",
    "ExpressionError",
    "QueryTimeout",
    "error_code",
    "error_payload",
]
