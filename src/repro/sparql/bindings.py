"""Solution mappings ("bindings") and their compatibility semantics.

A solution mapping binds query variables to RDF terms.  Two mappings are
*compatible* when they agree on every variable bound in both; joining
compatible mappings merges them.  This is the core of SPARQL's AND (join),
OPTIONAL (left outer join), and UNION semantics as formalised by
Perez/Arenas/Gutierrez, which the paper builds its query design on.
"""

from __future__ import annotations

from ..rdf.terms import Variable


class Binding:
    """An immutable solution mapping from variable names to terms."""

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping=None):
        normalized = {}
        if mapping:
            for key, value in mapping.items():
                normalized[_name(key)] = value
        object.__setattr__(self, "_map", normalized)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def from_names(cls, mapping):
        """Construct from an already-normalized ``{name: term}`` dict.

        The result-boundary fast path: the id-space evaluator produces rows
        keyed by bare layout names, so re-normalizing every key (and copying
        the dict) per result row is pure overhead.  The caller transfers
        ownership of ``mapping``.
        """
        binding = cls.__new__(cls)
        object.__setattr__(binding, "_map", mapping)
        object.__setattr__(binding, "_hash", None)
        return binding

    def __setattr__(self, name, _value):
        raise AttributeError(f"Binding is immutable (tried to set {name})")

    # -- access -------------------------------------------------------------

    def get(self, variable, default=None):
        """Return the term bound to ``variable`` (Variable or name), if any."""
        return self._map.get(_name(variable), default)

    def is_bound(self, variable):
        """True if ``variable`` has a binding in this mapping."""
        return _name(variable) in self._map

    def variables(self):
        """The set of bound variable names."""
        return set(self._map)

    def items(self):
        return self._map.items()

    def as_dict(self):
        """A plain dict copy of the mapping (variable name -> term)."""
        return dict(self._map)

    def project(self, variables):
        """Return a new Binding restricted to the given variables."""
        names = [_name(v) for v in variables]
        return Binding({name: self._map[name] for name in names if name in self._map})

    # -- algebra ------------------------------------------------------------

    def compatible(self, other):
        """True when the two mappings agree on all shared variables."""
        mine, theirs = self._map, other._map
        if len(theirs) < len(mine):
            mine, theirs = theirs, mine
        for name, value in mine.items():
            if name in theirs and theirs[name] != value:
                return False
        return True

    def merge(self, other):
        """Return the union of two compatible mappings."""
        merged = dict(self._map)
        merged.update(other._map)
        return Binding(merged)

    def extend(self, variable, term):
        """Return a new Binding with one additional variable bound."""
        merged = dict(self._map)
        merged[_name(variable)] = term
        return Binding(merged)

    # -- dunder ---------------------------------------------------------------

    def __getitem__(self, variable):
        return self._map[_name(variable)]

    def __contains__(self, variable):
        return self.is_bound(variable)

    def __len__(self):
        return len(self._map)

    def __eq__(self, other):
        return isinstance(other, Binding) and other._map == self._map

    def __hash__(self):
        # Bindings are immutable, so the (fairly expensive) frozenset hash is
        # computed once on first use — DISTINCT and hash joins hash the same
        # binding many times.
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._map.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self):
        inner = ", ".join(f"?{k}={v}" for k, v in sorted(self._map.items()))
        return f"Binding({inner})"


#: The empty solution mapping (identity element of the join).
EMPTY_BINDING = Binding()


def variable_name(variable):
    """Normalize a Variable (or "?name"/"name" string) to its bare name.

    The single normalization rule shared by results, cursors, and the
    serializers, so projection headers, row extraction, and solution lookup
    can never disagree about what a variable is called.
    """
    if isinstance(variable, Variable):
        return variable.name
    return str(variable).lstrip("?$")


#: Historical private alias (pre-dates the public helper).
_name = variable_name
