"""Execution of SPARQL 1.1 Update operations.

The parser (:func:`repro.sparql.parser.parse_update`) produces one of three
AST nodes — :class:`~repro.sparql.ast.InsertDataUpdate`,
:class:`~repro.sparql.ast.DeleteDataUpdate`,
:class:`~repro.sparql.ast.ModifyUpdate` — and :func:`execute_update` applies
it to a store.  Semantics follow the SPARQL 1.1 Update specification:

* the WHERE pattern of a modify operation is evaluated once against the
  *pre-update* state; both template sets are instantiated from that one
  solution sequence,
* deletions are applied before insertions,
* a solution that leaves any template variable unbound instantiates nothing
  from that template (the solution is skipped for it, not an error),
* blank nodes in INSERT templates mint a fresh node per solution.

Against an :class:`~repro.store.MvccStore`, the whole operation runs inside
one write transaction: WHERE evaluation is pinned to the transaction's base
generation, mutations build the next generation copy-on-write, and commit
publishes atomically — readers never observe a half-applied update.  Plain
stores are mutated in place (single-threaded embedded use).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from ..rdf.terms import BNode, Variable
from ..rdf.triple import Triple
from . import algebra
from .ast import DeleteDataUpdate, InsertDataUpdate, ModifyUpdate, UpdateOperation
from .errors import EvaluationError
from .evaluator import Evaluator
from .parser import parse_update

#: Counter minting process-unique blank-node labels for INSERT templates.
_fresh_bnode_ids = count()


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one executed update operation.

    ``inserted``/``deleted`` count actual store changes (not template
    instantiations — inserting an already-present triple changes nothing);
    ``matched`` is the number of WHERE solutions for the modify forms and
    ``None`` for the DATA forms; ``version`` is the store version after the
    operation committed.
    """

    operation: str
    inserted: int
    deleted: int
    matched: int = None
    version: int = 0

    def as_dict(self):
        payload = {
            "operation": self.operation,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "version": self.version,
        }
        if self.matched is not None:
            payload["matched"] = self.matched
        return payload


def execute_update(store, operation, evaluator_options=None):
    """Apply one SPARQL Update operation to ``store``.

    ``operation`` is update text or a parsed :class:`UpdateOperation`.
    ``evaluator_options`` are passed to the :class:`Evaluator` used for the
    WHERE pattern of modify forms (``strategy``, ``use_id_space``, ...), so
    an engine can keep updates on its configured execution profile.
    Returns an :class:`UpdateResult`.
    """
    if isinstance(operation, str):
        operation = parse_update(operation)
    if not isinstance(operation, UpdateOperation):
        raise TypeError(f"not an update operation: {operation!r}")
    transaction_factory = getattr(store, "write_transaction", None)
    if transaction_factory is not None:
        with transaction_factory() as txn:
            result = _apply(txn.base, txn.insert, txn.remove, operation,
                            evaluator_options)
        # The transaction published (or skipped publishing) by now; report
        # the store's post-commit version.
        return _stamp(result, store.version)
    # Plain store: mutate in place, WHERE solutions materialized first so
    # deletes cannot perturb the pattern evaluation they feed.
    result = _apply(store, store.add, store.remove, operation,
                    evaluator_options)
    return _stamp(result, getattr(store, "version", 0))


def _stamp(result, version):
    return UpdateResult(result.operation, result.inserted, result.deleted,
                        matched=result.matched, version=version)


def _apply(base, insert, remove, operation, evaluator_options):
    """Run ``operation`` reading from ``base``, writing via the callbacks."""
    if isinstance(operation, InsertDataUpdate):
        inserted = sum(1 for triple in operation.triples if insert(triple))
        return UpdateResult(operation.form, inserted, 0)
    if isinstance(operation, DeleteDataUpdate):
        deleted = sum(1 for triple in operation.triples if remove(triple))
        return UpdateResult(operation.form, 0, deleted)
    if not isinstance(operation, ModifyUpdate):
        raise EvaluationError(f"unsupported update operation: {operation!r}")

    tree = algebra.translate_group(operation.where)
    evaluator = Evaluator(base, **(evaluator_options or {}))
    # Materialize: application must see the complete pre-update solution
    # sequence even on plain stores where writes are applied in place.
    solutions = list(evaluator.evaluate(tree))
    deleted = inserted = 0
    for solution in solutions:
        for template in operation.delete_templates:
            triple = _instantiate(template, solution, fresh_bnodes=None)
            if triple is not None and remove(triple):
                deleted += 1
    for solution in solutions:
        fresh_bnodes = {}
        for template in operation.insert_templates:
            triple = _instantiate(template, solution, fresh_bnodes)
            if triple is not None and insert(triple):
                inserted += 1
    return UpdateResult(operation.form, inserted, deleted,
                        matched=len(solutions))


def _instantiate(template, solution, fresh_bnodes):
    """Ground one triple template under a solution; None to skip.

    ``fresh_bnodes`` maps template blank-node labels to the per-solution
    fresh nodes minted so far (None in delete position, where the parser
    already rejected blank nodes).
    """
    terms = []
    for term in (template.subject, template.predicate, template.object):
        if isinstance(term, Variable):
            bound = solution.get(term)
            if bound is None:
                return None
            term = bound
        elif isinstance(term, BNode) and fresh_bnodes is not None:
            minted = fresh_bnodes.get(term.label)
            if minted is None:
                minted = BNode(f"u{next(_fresh_bnode_ids)}")
                fresh_bnodes[term.label] = minted
            term = minted
        terms.append(term)
    return Triple(*terms)
