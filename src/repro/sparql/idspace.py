"""Id-space query evaluation: join on dictionary ids, decode at the boundary.

The paper's native engines (Sesame-native, Virtuoso) are fast because their
join loops compare small fixed-size integers from physical indexes and only
materialize RDF terms for final results.  This module gives our evaluator the
same execution model on top of stores that advertise
``supports_id_access`` (:class:`~repro.store.IndexedStore`):

* :class:`SlotLayout` compiles one algebra tree into a variable -> column
  mapping; every intermediate solution is then a flat tuple of that width
  whose cells are ``None`` (unbound), an ``int`` (a dictionary id), or — only
  above GROUP BY — a computed RDF term.
* Query constants are encoded exactly once per evaluation; a constant the
  dictionary has never seen short-circuits its whole basic graph pattern to
  the empty result without touching an index.
* Both BGP strategies work on id rows: ``nested_loop`` probes
  ``triples_ids`` with already-encoded components, ``scan_hash`` hash-joins
  pattern scans on their shared slot columns.  OPTIONAL is a hash-based left
  outer join on the statically shared slots.
* Terms are reconstructed lazily and memoized per id: FILTER / ORDER BY /
  aggregate evaluation decodes only the columns it actually touches (through
  :class:`SlotBinding`), and full :class:`~repro.sparql.bindings.Binding`
  objects exist only once rows cross the result boundary.

Nothing in this module mutates the store or its dictionary; a fresh
:class:`IdSpaceEvaluation` is created per query evaluation, so decode memos
and pattern caches can never go stale.
"""

from __future__ import annotations

from itertools import islice
from time import perf_counter

from ..rdf.terms import Literal, Variable, term_sort_key
from ..store.indexed_store import RUN_BY_OBJECT, RUN_BY_SUBJECT
from . import algebra, ast, kernels
from .bindings import Binding, _name
from .errors import EvaluationError
from .expressions import effective_boolean_value
from .planner import BIND_JOIN, SCAN

#: Join strategy names shared with (and re-exported by) the evaluator facade.
NESTED_LOOP = "nested_loop"
SCAN_HASH = "scan_hash"

#: Operator mirror for cross-side ordering conjuncts written right-to-left
#: (``?right < ?left`` applies to (left, right) cells as ``>``).
_FLIPPED_ORDER = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class SlotLayout:
    """Variable -> column mapping for one query's flat solution rows."""

    __slots__ = ("names", "_slots")

    def __init__(self, names):
        self.names = tuple(names)
        self._slots = {name: index for index, name in enumerate(self.names)}

    @classmethod
    def for_tree(cls, tree):
        """Collect every variable the tree can bind, in first-seen order.

        Triple-pattern variables come from BGP nodes; GROUP BY additionally
        introduces its aggregate aliases.  Variables that appear only in
        expressions need no column — they can never be bound.
        """
        names = []
        seen = set()

        def note(variable):
            name = _name(variable)
            if name not in seen:
                seen.add(name)
                names.append(name)

        for node in algebra.walk(tree):
            if isinstance(node, algebra.BGP):
                for pattern in node.patterns:
                    for term in pattern:
                        if isinstance(term, Variable):
                            note(term)
            elif isinstance(node, algebra.Group):
                for variable in node.group_vars:
                    note(variable)
                for aggregate in node.aggregates:
                    note(aggregate.alias)
        return cls(names)

    @property
    def width(self):
        return len(self.names)

    def slot(self, variable):
        """Column index for a variable (or name), or None if it has no column."""
        return self._slots.get(_name(variable))

    def empty_row(self):
        return (None,) * len(self.names)

    def __repr__(self):
        return f"SlotLayout({', '.join(self.names)})"


class SlotBinding:
    """A read-only Binding-compatible view over one id row.

    FILTER expressions and ORDER BY comparators only need ``get`` /
    ``is_bound``; serving them straight from the row avoids building a dict
    per intermediate solution, and decoding happens only for the variables an
    expression actually asks for (memoized per id by the owning evaluation).
    """

    __slots__ = ("_row", "_layout", "_cell_term")

    def __init__(self, row, layout, cell_term):
        self._row = row
        self._layout = layout
        self._cell_term = cell_term

    def get(self, variable, default=None):
        slot = self._layout.slot(variable)
        if slot is None:
            return default
        cell = self._row[slot]
        if cell is None:
            return default
        return self._cell_term(cell)

    def is_bound(self, variable):
        slot = self._layout.slot(variable)
        return slot is not None and self._row[slot] is not None

    def variables(self):
        return {
            name
            for name, cell in zip(self._layout.names, self._row)
            if cell is not None
        }

    def __contains__(self, variable):
        return self.is_bound(variable)

    def __repr__(self):
        inner = ", ".join(
            f"?{name}={cell!r}"
            for name, cell in zip(self._layout.names, self._row)
            if cell is not None
        )
        return f"SlotBinding({inner})"


class IdSpaceEvaluation:
    """One query evaluation over id rows; see the module docstring.

    ``solve`` returns ``(layout, row_iterator)`` without any decoding —
    benchmarks and the decode-counter tests consume rows at this level.
    ``bindings`` wraps ``solve`` and materializes term-level
    :class:`Binding` objects, the result-boundary decode.
    """

    def __init__(self, store, strategy=NESTED_LOOP, reuse_patterns=False,
                 observe_plans=False, deadline=None, seed=None):
        if not getattr(store, "supports_id_access", False):
            raise EvaluationError(
                f"store {store!r} does not support id-space evaluation"
            )
        self._store = store
        self._dictionary = store.dictionary
        self._strategy = strategy
        self._reuse_patterns = reuse_patterns
        #: When set, planned BGP steps count the rows they produce into
        #: their PlanStep.actual field (the EXPLAIN instrumentation).
        self._observe = observe_plans
        #: Cooperative evaluation budget (a Deadline-like object): the
        #: row-producing hot loops call ``_check()`` so an expired budget
        #: raises :class:`~repro.sparql.errors.QueryTimeout` mid-stream.
        self._deadline = deadline
        self._check = None if deadline is None else deadline.check
        #: Prepared-query parameter pre-binding (variable name -> term),
        #: encoded into the starting row of every BGP by :meth:`solve`.
        self._seed = dict(seed) if seed else {}
        self._seed_row = None
        self._seed_slots = frozenset()
        self._pattern_cache = {}
        self._term_memo = {}
        self._value_key_memo = {}
        self._order_key_memo = {}
        self._layout = None

    # -- public API ---------------------------------------------------------

    def solve(self, tree):
        """Evaluate a SELECT-shaped algebra tree into (layout, id rows)."""
        if isinstance(tree, algebra.Ask):
            raise EvaluationError("solve() takes the Ask operand, not the Ask node")
        self._layout = SlotLayout.for_tree(tree)
        if not self._encode_seed():
            # A pre-bound term the dictionary has never seen: no triple
            # pattern using that variable can match, the same short-circuit
            # unknown query constants take.
            return self._layout, iter(())
        return self._layout, self._eval(tree)

    def _encode_seed(self):
        """Encode the pre-binding seed into the starting row.

        Seed variables without a slot (never used by the query) are ignored;
        a seed term unknown to the dictionary makes the evaluation empty
        (returns False).  Seeded slots count as bound for hash-join keying.
        """
        row = list(self._layout.empty_row())
        slots = set()
        lookup = self._dictionary.lookup
        for name, term in self._seed.items():
            slot = self._layout.slot(name)
            if slot is None:
                continue
            term_id = lookup(term)
            if term_id is None:
                return False
            row[slot] = term_id
            slots.add(slot)
        self._seed_row = tuple(row)
        self._seed_slots = frozenset(slots)
        return True

    def solve_bgp(self, node, names):
        """Evaluate one BGP under an externally fixed slot layout.

        The scatter-gather layer (:mod:`repro.sparql.scatter`) ships a BGP
        node (with its plan) plus the *parent* evaluation's layout names to
        per-segment evaluations; rebuilding the layout from those names
        keeps slot indexes identical across the parent and every segment,
        so gathered rows concatenate without any re-mapping.  Pre-binding
        seeds behave exactly as in :meth:`solve`.
        """
        self._layout = SlotLayout(names)
        if not self._encode_seed():
            return iter(())
        return self._eval_bgp(node)

    def ask(self, tree):
        """Existence test: True as soon as one solution row exists."""
        _layout, rows = self.solve(tree)
        for _row in rows:
            return True
        return False

    def bindings(self, tree):
        """Evaluate and materialize term-level Bindings (the result boundary)."""
        layout, rows = self.solve(tree)
        return self.materialize(layout, rows)

    def materialize(self, layout, rows):
        """Decode finished id rows into :class:`Binding` objects."""
        names = layout.names
        cell_term = self.cell_term
        from_names = Binding.from_names
        for row in rows:
            yield from_names(
                {
                    name: cell_term(cell)
                    for name, cell in zip(names, row)
                    if cell is not None
                }
            )

    def cell_term(self, cell):
        """The RDF term for one row cell, memoized per dictionary id."""
        if not isinstance(cell, int):
            return cell
        term = self._term_memo.get(cell)
        if term is None:
            term = self._dictionary.decode(cell)
            self._term_memo[cell] = term
        return term

    # -- dispatch -----------------------------------------------------------

    def _eval(self, node):
        if isinstance(node, algebra.BGP):
            return self._eval_bgp(node)
        if isinstance(node, algebra.Join):
            return self._eval_join(node)
        if isinstance(node, algebra.LeftJoin):
            return self._eval_left_join(node)
        if isinstance(node, algebra.Union):
            return self._eval_union(node)
        if isinstance(node, algebra.Filter):
            return self._eval_filter(node)
        if isinstance(node, algebra.Project):
            return self._eval_project(node)
        if isinstance(node, algebra.Distinct):
            return self._eval_distinct(node)
        if isinstance(node, algebra.OrderBy):
            return self._eval_order_by(node)
        if isinstance(node, algebra.Slice):
            return self._eval_slice(node)
        if isinstance(node, algebra.Group):
            return self._eval_group(node)
        raise EvaluationError(f"cannot evaluate algebra node {node!r}")

    def _node_slots(self, node):
        """Slots of every variable an algebra subtree can bind."""
        slots = set()
        for variable in node.variables():
            slot = self._layout.slot(variable)
            if slot is not None:
                slots.add(slot)
        return slots

    def _ebv(self, expression, row):
        return effective_boolean_value(
            expression, SlotBinding(row, self._layout, self.cell_term)
        )

    # -- basic graph patterns -----------------------------------------------

    def _compile_patterns(self, patterns):
        """Encode each pattern to ((is_var, slot-or-id), ...) triples.

        Constants go through the dictionary exactly once per evaluation.
        Returns None when any constant is unknown to the store — no triple
        can match, so the whole BGP is empty (the short-circuit that makes
        Q3c-style queries constant time).
        """
        lookup = self._dictionary.lookup
        slot_of = self._layout.slot
        compiled = []
        for pattern in patterns:
            parts = []
            for term in pattern:
                if isinstance(term, Variable):
                    parts.append((True, slot_of(term)))
                else:
                    term_id = lookup(term)
                    if term_id is None:
                        return None
                    parts.append((False, term_id))
            compiled.append(tuple(parts))
        return compiled

    def _start_row(self):
        """The starting solution row of a BGP (the pre-binding seed, if any)."""
        if self._seed_row is not None:
            return self._seed_row
        return self._layout.empty_row()

    def _eval_bgp(self, node, seeds=None):
        if not node.patterns:
            if seeds is not None:
                return iter(seeds)
            return iter((self._start_row(),))
        compiled = self._compile_patterns(node.patterns)
        if compiled is None:
            return iter(())
        if node.plan is not None:
            return self._bgp_planned(node, compiled, node.plan, seeds)
        if seeds is not None or self._strategy == NESTED_LOOP:
            return self._bgp_nested_loop(node, compiled, seeds)
        return self._bgp_scan_hash(node, compiled)

    def _bgp_nested_loop(self, node, compiled, seeds=None):
        rows = iter(seeds) if seeds is not None else iter((self._start_row(),))
        for position, cpattern in enumerate(compiled):
            rows = self._extend_rows(rows, cpattern)
            for expression in node.filters_at(position):
                rows = self._filter_rows(rows, expression)
        return rows

    def _bgp_planned(self, node, compiled, plan, seeds=None):
        """Execute a BGP along its :class:`~repro.sparql.planner.BGPPlan`.

        Each step either probes the store per intermediate row (PROBE) or
        scans its pattern once and hash-joins on the slots the planner saw
        as bound (SCAN); ``seeds`` carries the left rows of a bind join.
        With observation on, every step counts the rows it produces into
        ``step.actual`` — the EXPLAIN estimated-versus-actual column.

        When the planner annotated every step with a batch kernel (and this
        evaluation carries no bind-join seeds or prepared pre-bindings,
        whose per-row starting bindings the block pipeline does not model),
        the BGP executes column-at-a-time over :class:`~repro.sparql.
        kernels.Block` streams and only converts back to tuple rows at the
        BGP boundary.
        """
        if (seeds is None and not self._seed and plan.steps
                and all(step.kernel is not None for step in plan.steps)):
            return kernels.rows_from_blocks(
                self._bgp_blocks(node, compiled, plan), self._layout.width
            )
        layout = self._layout
        empty = layout.empty_row()
        check = self._check
        if seeds is not None:
            rows = iter(seeds)
        else:
            rows = iter((self._start_row(),))
        bound_slots = set(self._seed_slots)
        for name in plan.outer_bound:
            slot = layout.slot(name)
            if slot is not None:
                bound_slots.add(slot)
        for position, (cpattern, step) in enumerate(zip(compiled, plan.steps)):
            pattern_slots = {ref for is_var, ref in cpattern if is_var}
            if step.strategy == SCAN:
                left_rows = list(rows)
                if not left_rows:
                    return iter(())
                pattern_rows = []
                for ids in self._scan_ids(cpattern):
                    if check is not None:
                        check()
                    row = _bind_ids(empty, cpattern, ids)
                    if row is not None:
                        pattern_rows.append(row)
                rows = iter(_join_rows(
                    left_rows, pattern_rows, bound_slots & pattern_slots
                ))
            else:
                rows = self._extend_rows(rows, cpattern)
            bound_slots |= pattern_slots
            for expression in node.filters_at(position):
                rows = self._filter_rows(rows, expression)
            if self._observe:
                rows = self._observe_rows(rows, step)
        return rows

    @staticmethod
    def _observe_rows(rows, step):
        """Count rows into ``step.actual`` and time pulls into ``step.seconds``.

        ``seconds`` accumulates the wall time spent inside ``next()`` at
        this boundary.  Steps are nested generators, so the measurement is
        *cumulative*: it includes the upstream steps this one pulls
        through.  The EXPLAIN renderer subtracts consecutive steps to show
        per-step self time.
        """
        if step.actual is None:
            step.actual = 0
        if step.seconds is None:
            step.seconds = 0.0

        def generate():
            iterator = iter(rows)
            while True:
                started = perf_counter()
                try:
                    row = next(iterator)
                except StopIteration:
                    step.seconds += perf_counter() - started
                    return
                step.seconds += perf_counter() - started
                step.actual += 1
                yield row

        return generate()

    # -- batch (block) execution of kernel-annotated plans -------------------

    def _bgp_block_stream(self, node):
        """The Block stream of a fully kernel-annotated BGP, or None.

        None means the node is not eligible for block execution (not a
        planned BGP, tuple-path steps, or prepared pre-bindings in play);
        an eligible BGP whose constants are unknown to the dictionary
        returns the empty stream.
        """
        if not isinstance(node, algebra.BGP) or not node.patterns:
            return None
        plan = node.plan
        if plan is None or not plan.steps or self._seed:
            return None
        if any(step.kernel is None for step in plan.steps):
            return None
        compiled = self._compile_patterns(node.patterns)
        if compiled is None:
            return iter(())
        return self._bgp_blocks(node, compiled, plan)

    def _bgp_blocks(self, node, compiled, plan):
        """Execute a fully kernel-annotated BGP as a lazy stream of Blocks.

        Mirrors the tuple pipeline step for step — per-position inline
        filters, EXPLAIN row counting, deadline checks — but each stage
        transforms whole blocks of at most ``kernels.BLOCK_ROWS`` rows, so
        LIMIT pushdown and mid-stream deadline expiry keep working at block
        granularity.
        """
        blocks = iter((kernels.unit_block(),))
        bound = set(self._seed_slots)
        for position, cpattern in enumerate(compiled):
            blocks = self._kernel_step(blocks, cpattern, frozenset(bound))
            bound.update(ref for is_var, ref in cpattern if is_var)
            for expression in node.filters_at(position):
                blocks = self._filter_blocks(blocks, expression)
            if self._observe:
                blocks = self._observe_blocks(blocks, plan.steps[position])
        return blocks

    def _kernel_step(self, blocks, cpattern, bound):
        """One pattern as a block transformer (the runtime kernel dispatch).

        ``bound`` holds the slots every incoming block binds (a variable is
        bound in all rows of a block or in none).  The shapes match
        :func:`~repro.sparql.planner._annotate_kernels`: the predicate is
        always a constant id, subject/object are constants or distinct
        variables.  A predicate without triples (no run) or an empty
        selection short-circuits to the empty stream.
        """
        (s_var, s_ref), (_p_var, p_ref), (o_var, o_ref) = cpattern
        store = self._store
        check = self._check

        if not s_var and not o_var:
            # Fully constant pattern: a single existence test gates the
            # whole stream.
            for _ids in store.triples_ids(s_ref, p_ref, o_ref):
                return blocks
            return iter(())

        if not s_var or not o_var:
            # One constant endpoint: a single-key selection against the run
            # keyed on the constant side.
            if s_var:
                run = store.sorted_run(p_ref, RUN_BY_OBJECT)
                key, var_slot = o_ref, s_ref
            else:
                run = store.sorted_run(p_ref, RUN_BY_SUBJECT)
                key, var_slot = s_ref, o_ref
            if run is None:
                return iter(())
            values = kernels.select_eq(run, key)
            if var_slot in bound:
                def generate():
                    for block in blocks:
                        if check is not None:
                            check()
                        if block.length == 0:
                            continue
                        mask = kernels.member_mask(block, var_slot, values)
                        out = kernels.apply_mask(block, mask)
                        if out.length:
                            yield out
                return generate()
            if len(values) == 0:
                return iter(())

            def generate():
                for block in blocks:
                    if check is not None:
                        check()
                    if block.length == 0:
                        continue
                    yield from self._cross_chunked(block, {var_slot: values})
            return generate()

        run = store.sorted_run(p_ref, RUN_BY_SUBJECT)
        if run is None:
            return iter(())
        s_bound = s_ref in bound
        o_bound = o_ref in bound
        if s_bound and o_bound:
            def generate():
                for block in blocks:
                    if check is not None:
                        check()
                    if block.length == 0:
                        continue
                    mask = kernels.semijoin_pair(block, s_ref, o_ref, run)
                    out = kernels.apply_mask(block, mask)
                    if out.length:
                        yield out
            return generate()
        if s_bound or o_bound:
            if s_bound:
                probe_slot, new_slot, probe_run = s_ref, o_ref, run
            else:
                probe_run = store.sorted_run(p_ref, RUN_BY_OBJECT)
                probe_slot, new_slot = o_ref, s_ref

            def generate():
                for block in blocks:
                    if check is not None:
                        check()
                    if block.length == 0:
                        continue
                    out = kernels.extend_bound(
                        block, probe_slot, probe_run, new_slot
                    )
                    if out.length:
                        yield out
            return generate()

        def generate():
            for block in blocks:
                if check is not None:
                    check()
                if block.length == 0:
                    continue
                if not block.columns and block.length == 1:
                    yield from kernels.run_scan_blocks(run, s_ref, o_ref)
                    continue
                # Cartesian against rows that bind other variables: pair
                # every block row with every run entry, scan-chunk by
                # scan-chunk.
                for scan in kernels.run_scan_blocks(run, s_ref, o_ref):
                    yield kernels.cross_extend(block, scan.columns)
        return generate()

    @staticmethod
    def _cross_chunked(block, columns):
        """Cross-extend in chunks so output blocks stay near BLOCK_ROWS."""
        total = len(next(iter(columns.values())))
        if not block.columns and block.length == 1:
            # Degenerate cross with the unit block: the new columns ARE the
            # output (the Q1-style first selection), no repeat/tile needed.
            for start in range(0, total, kernels.BLOCK_ROWS):
                piece = {
                    slot: column[start:start + kernels.BLOCK_ROWS]
                    for slot, column in columns.items()
                }
                yield kernels.Block(piece, len(next(iter(piece.values()))))
            return
        step = max(1, kernels.BLOCK_ROWS // max(block.length, 1))
        for start in range(0, total, step):
            piece = {
                slot: column[start:start + step]
                for slot, column in columns.items()
            }
            yield kernels.cross_extend(block, piece)

    def _filter_blocks(self, blocks, expression):
        """Inline-filter a block stream, columnar when the shape compiles.

        Expression shapes :func:`kernels.compile_filter` understands run as
        whole-column masks; anything else drops to per-row effective-boolean
        evaluation over the block's materialized tuple rows (same semantics,
        block-sized batches).
        """
        compiled = kernels.compile_filter(expression, self._layout.slot)
        width = self._layout.width
        if compiled is not None:
            def generate():
                for block in blocks:
                    if block.length == 0:
                        continue
                    mask = kernels.filter_mask(block, compiled, self.cell_term)
                    out = kernels.apply_mask(block, mask)
                    if out.length:
                        yield out
            return generate()

        def generate():
            for block in blocks:
                if block.length == 0:
                    continue
                keep = [
                    index
                    for index, row in enumerate(kernels.block_rows(block, width))
                    if self._ebv(expression, row)
                ]
                if not keep:
                    continue
                if len(keep) == block.length:
                    yield block
                else:
                    yield kernels.gather(block, keep)
        return generate()

    @staticmethod
    def _observe_blocks(blocks, step):
        """Count block rows into ``step.actual`` and pull time into
        ``step.seconds`` (cumulative, like :meth:`_observe_rows`)."""
        if step.actual is None:
            step.actual = 0
        if step.seconds is None:
            step.seconds = 0.0

        def generate():
            iterator = iter(blocks)
            while True:
                started = perf_counter()
                try:
                    block = next(iterator)
                except StopIteration:
                    step.seconds += perf_counter() - started
                    return
                step.seconds += perf_counter() - started
                step.actual += block.length
                yield block

        return generate()

    def _extend_rows(self, rows, cpattern):
        """Index nested-loop step: probe the store once per current row."""
        triples_ids = self._store.triples_ids
        check = self._check
        (s_var, s_ref), (p_var, p_ref), (o_var, o_ref) = cpattern
        for row in rows:
            s = row[s_ref] if s_var else s_ref
            p = row[p_ref] if p_var else p_ref
            o = row[o_ref] if o_var else o_ref
            for ids in triples_ids(s, p, o):
                if check is not None:
                    check()
                extended = _bind_ids(row, cpattern, ids)
                if extended is not None:
                    yield extended

    def _filter_rows(self, rows, expression):
        check = self._check
        fast = self._bound_predicate(expression)
        if fast is not None:
            for row in rows:
                if check is not None:
                    check()
                if fast(row):
                    yield row
            return
        for row in rows:
            if check is not None:
                check()
            if self._ebv(expression, row):
                yield row

    def _bound_predicate(self, expression):
        """A direct row predicate for ``bound``/``!bound`` filters, or None.

        These filters (the Q6/Q7 closed-world negation idiom) only test
        whether a cell is None, which needs no term decoding and no
        expression-tree walk — the dominant per-row cost right after a big
        left join.
        """
        negate = False
        if isinstance(expression, ast.Not):
            negate = True
            expression = expression.operand
        if not isinstance(expression, ast.Bound):
            return None
        slot = self._layout.slot(expression.variable)
        if slot is None:
            # A variable no pattern can bind: bound() is constantly false.
            return (lambda row: True) if negate else (lambda row: False)
        if negate:
            return lambda row: row[slot] is None
        return lambda row: row[slot] is not None

    def _bgp_scan_hash(self, node, compiled):
        layout = self._layout
        empty = layout.empty_row()
        check = self._check
        solutions = [self._start_row()]
        bound_slots = set(self._seed_slots)
        for position, cpattern in enumerate(compiled):
            pattern_rows = []
            for ids in self._scan_ids(cpattern):
                if check is not None:
                    check()
                row = _bind_ids(empty, cpattern, ids)
                if row is not None:
                    pattern_rows.append(row)
            pattern_slots = {ref for is_var, ref in cpattern if is_var}
            solutions = _join_rows(solutions, pattern_rows, bound_slots & pattern_slots)
            bound_slots |= pattern_slots
            for expression in node.filters_at(position):
                solutions = [row for row in solutions if self._ebv(expression, row)]
            if not solutions:
                break
        return iter(solutions)

    def _scan_ids(self, cpattern):
        """Scan one pattern against the whole store, optionally cached.

        With pattern reuse enabled, repeated pattern shapes (Q4's doubled
        article/creator/name chains, the repeated blocks of Q6/Q7/Q8) are
        scanned once per evaluation and replayed from the cache.
        """
        pattern_key = tuple(None if is_var else ref for is_var, ref in cpattern)
        if not self._reuse_patterns:
            return self._store.triples_ids(*pattern_key)
        cached = self._pattern_cache.get(pattern_key)
        if cached is None:
            cached = list(self._store.triples_ids(*pattern_key))
            self._pattern_cache[pattern_key] = cached
        return cached

    # -- binary operators ----------------------------------------------------

    def _eval_join(self, node):
        left = list(self._eval(node.left))
        if not left:
            return iter(())
        plan = getattr(node, "plan", None)
        if plan is not None and plan.strategy == BIND_JOIN:
            # Bind join: the left rows seed the right side's evaluation
            # (sideways information passing), so its patterns probe with the
            # already-bound slots instead of enumerating standalone.
            return self._eval_seeded(node.right, left)
        right = list(self._eval(node.right))
        shared = self._node_slots(node.left) & self._node_slots(node.right)
        return iter(_join_rows(left, right, shared))

    def _eval_seeded(self, node, rows):
        """Evaluate ``node`` continuing from the given solution rows.

        Supported for the operators the planner marks seedable (BGP, Union,
        Filter); anything else falls back to standalone evaluation followed
        by a hash join on the slots the seeds actually bind.
        """
        if isinstance(node, algebra.BGP):
            return self._eval_bgp(node, seeds=rows)
        if isinstance(node, algebra.Union):
            def generate():
                yield from self._eval_seeded(node.left, rows)
                yield from self._eval_seeded(node.right, rows)

            return generate()
        if isinstance(node, algebra.Filter):
            return self._filter_rows(
                self._eval_seeded(node.operand, rows), node.expression
            )
        right = list(self._eval(node))
        seeded_slots = set()
        for row in rows:
            for slot, cell in enumerate(row):
                if cell is not None:
                    seeded_slots.add(slot)
        shared = self._node_slots(node) & seeded_slots
        return iter(_join_rows(rows, right, shared))

    def _eval_left_join(self, node, anti=False):
        """Hash-based left outer join (OPTIONAL).

        The hash key combines the statically shared slots with any
        value-equality conjuncts extracted from the join condition
        (``FILTER (?author = ?author2 && ...)`` in Q6-style closed-world
        negation joins on the equality, not on a shared variable) — native
        engines turn exactly these theta-joins into equi-joins.  Only the
        residual condition is evaluated per candidate pair.

        With ``anti`` (see :meth:`_anti_join_rows`) only unmatched left
        rows are emitted, and probing stops at the first match.
        """
        left = list(self._eval(node.left))
        if not left:
            return iter(())
        right = list(self._eval(node.right))
        left_slots = self._node_slots(node.left)
        right_slots = self._node_slots(node.right)
        shared = tuple(sorted(left_slots & right_slots))
        equi_left, equi_right, order_pairs, residual = (
            self._split_equi_condition(node.condition, left_slots, right_slots)
        )
        value_key = self._value_key
        order_key = self._order_key
        compare_ops = tuple(
            kernels.ORDERING_OPS[op] for _ls, _rs, op in order_pairs
        )
        # With no statically shared slot, left and right rows bind disjoint
        # columns (modulo equal-valued seed slots): the cell-wise union can
        # never conflict, so the merge skips the compatibility checks.
        disjoint = not shared
        keyed = {}
        loose = []          # equi-eligible rows whose shared-slot key is incomplete
        right_entries = []  # all equi-eligible rows, for unkeyed left rows
        for row in right:
            equi_key = _cells_key(row, equi_right, value_key)
            if equi_key is None:
                # An unbound equality column can never satisfy the condition.
                continue
            order_keys = _order_cells_key(
                row, order_pairs, 1, order_key
            ) if order_pairs else ()
            if order_keys is None:
                # Same for an unbound ordering operand: type error -> false.
                continue
            entry = (row, equi_key, order_keys)
            right_entries.append(entry)
            shared_key = _row_key(row, shared)
            if shared_key is None:
                loose.append(entry)
            else:
                keyed.setdefault((shared_key, equi_key), []).append(entry)
        check = self._check
        results = []
        for left_row in left:
            if check is not None:
                check()
            matched = False
            equi_key = _cells_key(left_row, equi_left, value_key)
            left_keys = None
            if equi_key is not None and order_pairs:
                left_keys = _order_cells_key(
                    left_row, order_pairs, 0, order_key
                )
            if equi_key is not None and (not order_pairs or left_keys is not None):
                shared_key = _row_key(left_row, shared)
                if shared_key is None:
                    candidates = [
                        entry for entry in right_entries
                        if entry[1] == equi_key
                    ]
                elif loose:
                    candidates = keyed.get((shared_key, equi_key), []) + [
                        entry for entry in loose if entry[1] == equi_key
                    ]
                else:
                    candidates = keyed.get((shared_key, equi_key), ())
                for right_row, _key, right_keys in candidates:
                    if order_pairs and not _order_keys_hold(
                            left_keys, right_keys, compare_ops):
                        continue
                    if anti and disjoint and residual is None:
                        matched = True
                        break
                    if disjoint:
                        merged = tuple(
                            a if a is not None else b
                            for a, b in zip(left_row, right_row)
                        )
                    else:
                        merged = _merge_compatible(left_row, right_row)
                        if merged is None:
                            continue
                    if residual is not None and not self._ebv(residual, merged):
                        continue
                    matched = True
                    if anti:
                        break
                    results.append(merged)
            if not matched:
                results.append(left_row)
        return iter(results)

    def _split_equi_condition(self, condition, left_slots, right_slots):
        """Split a LeftJoin condition into hash keys, order pairs, residual.

        A conjunct ``?a = ?b`` where one variable can only be bound by the
        left operand and the other only by the right becomes a
        ``(left_slot, right_slot)`` key-column pair.  An ordering conjunct
        ``?a < ?b`` of the same cross-side shape becomes an
        ``(left_slot, right_slot, operator)`` entry checked through
        memoized ordering keys — per-candidate comparisons of precomputed
        floats/strings instead of full expression evaluation (Q6's
        ``?yr2 < ?yr`` theta-join is exactly this shape).  Everything else
        stays in the residual condition (rebuilt as a conjunction, None
        when empty).
        """
        if condition is None:
            return (), (), (), None
        equi_left = []
        equi_right = []
        order_pairs = []
        residual = []
        for conjunct in _split_conjuncts(condition):
            pair = self._equi_slots(conjunct, left_slots, right_slots)
            if pair is not None:
                equi_left.append(pair[0])
                equi_right.append(pair[1])
                continue
            ordered = self._order_slots(conjunct, left_slots, right_slots)
            if ordered is not None:
                order_pairs.append(ordered)
                continue
            residual.append(conjunct)
        return (tuple(equi_left), tuple(equi_right), tuple(order_pairs),
                _conjoin(residual))

    def _equi_slots(self, conjunct, left_slots, right_slots):
        if not (isinstance(conjunct, ast.Comparison) and conjunct.operator == "="):
            return None
        slots = []
        for expression in (conjunct.left, conjunct.right):
            if not (
                isinstance(expression, ast.TermExpression)
                and isinstance(expression.term, Variable)
            ):
                return None
            slot = self._layout.slot(expression.term)
            if slot is None:
                return None
            slots.append(slot)
        a, b = slots
        if a in left_slots and b in right_slots and a not in right_slots and b not in left_slots:
            return (a, b)
        if b in left_slots and a in right_slots and b not in right_slots and a not in left_slots:
            return (b, a)
        return None

    def _order_slots(self, conjunct, left_slots, right_slots):
        """An ordering conjunct as (left_slot, right_slot, operator), or None.

        Same cross-side shape as :meth:`_equi_slots` but for ``< <= > >=``;
        when the conjunct is written right-to-left the operator is mirrored
        so it always applies as ``compare(left_cell, right_cell)``.
        """
        if not (isinstance(conjunct, ast.Comparison)
                and conjunct.operator in kernels.ORDERING_OPS):
            return None
        slots = []
        for expression in (conjunct.left, conjunct.right):
            if not (
                isinstance(expression, ast.TermExpression)
                and isinstance(expression.term, Variable)
            ):
                return None
            slot = self._layout.slot(expression.term)
            if slot is None:
                return None
            slots.append(slot)
        a, b = slots
        if a in left_slots and b in right_slots and a not in right_slots and b not in left_slots:
            return (a, b, conjunct.operator)
        if b in left_slots and a in right_slots and b not in right_slots and a not in left_slots:
            return (b, a, _FLIPPED_ORDER[conjunct.operator])
        return None

    def _order_key(self, cell):
        """Memoized SPARQL ordering key of one cell (kind, comparable)."""
        key = self._order_key_memo.get(cell)
        if key is None:
            key = kernels.ordering_proxy(self.cell_term(cell))
            self._order_key_memo[cell] = key
        return key

    def _value_key(self, cell):
        """Canonical hash key under SPARQL ``=`` (value) equality.

        Two cells get the same key exactly when :func:`expressions._equals`
        holds for their terms: numeric literals compare by value across
        datatypes, language-free string-valued literals by their string
        value, and everything else (URIs, blank nodes, language-tagged or
        boolean literals) by term identity.  Pairs ``_equals`` would reject
        with a type error land in different key classes, matching the
        condition evaluating to false.

        Memoized per cell: the left-join build calls this once per row and
        equi-column, and rows repeat the same ids heavily (Q6-style builds
        re-derive the key for every author id on every row), so the memo
        turns decode + ``to_python`` + classification into one dict hit.
        """
        key = self._value_key_memo.get(cell)
        if key is None:
            key = self._compute_value_key(cell)
            self._value_key_memo[cell] = key
        return key

    def _compute_value_key(self, cell):
        term = self.cell_term(cell)
        if isinstance(term, Literal) and term.language is None:
            value = term.to_python()
            if isinstance(value, bool):
                return ("term", term)
            if isinstance(value, (int, float)):
                return ("num", float(value))
            if isinstance(value, str):
                return ("str", value)
        return ("term", term)

    def _eval_union(self, node):
        def generate():
            yield from self._eval(node.left)
            yield from self._eval(node.right)

        return generate()

    def _eval_filter(self, node):
        anti = self._anti_join_rows(node)
        if anti is not None:
            return anti
        return self._filter_rows(self._eval(node.operand), node.expression)

    def _anti_join_rows(self, node):
        """Closed-world negation, or None when the shape doesn't apply.

        ``FILTER (!bound(?v))`` over an OPTIONAL whose right side always
        binds ``?v`` keeps exactly the unmatched left rows — the Q6/Q7
        idiom the paper singles out.  Matched rows only exist to be thrown
        away, so the left join can stop probing a left row at its first
        match instead of materializing every merged pair.
        """
        expression = node.expression
        if not isinstance(expression, ast.Not):
            return None
        operand = expression.operand
        if not isinstance(operand, ast.Bound):
            return None
        inner = node.operand
        if not isinstance(inner, algebra.LeftJoin):
            return None
        if not isinstance(inner.right, algebra.BGP):
            return None
        if operand.variable not in inner.right.variables():
            return None
        slot = self._layout.slot(operand.variable)
        if slot is None or slot in self._node_slots(inner.left):
            return None
        if self._seed:
            # Seeds could bind the tested slot on the left side.
            return None
        return self._eval_left_join(inner, anti=True)

    # -- solution modifiers --------------------------------------------------

    def _eval_project(self, node):
        rows = self._eval(node.operand)
        if node.projection is None:
            return rows
        layout = self._layout
        keep = set()
        for variable in node.projection:
            slot = layout.slot(variable)
            if slot is not None:
                keep.add(slot)

        def generate():
            for row in rows:
                yield tuple(
                    cell if index in keep else None
                    for index, cell in enumerate(row)
                )

        return generate()

    def _eval_distinct(self, node):
        fast = self._distinct_blocks(node.operand)
        if fast is not None:
            return fast

        def generate():
            seen = set()
            for row in self._eval(node.operand):
                if row not in seen:
                    seen.add(row)
                    yield row

        return generate()

    def _distinct_blocks(self, operand):
        """Block-space DISTINCT over a projected BGP, or None when ineligible.

        The Q4 shape — ``SELECT DISTINCT ?a ?b WHERE { <join-heavy BGP> }``
        — otherwise materializes one tuple per intermediate row only for
        the distinct set to discard most of them.  When the operand is
        Project over a kernel-annotated BGP and at most two id columns
        survive the projection, dedup runs on the blocks themselves (a u64
        composite per row, unique per block) and only distinct rows ever
        become tuples.  Emission order differs from the tuple path (blocks
        dedup sorted, tuples first-seen) — DISTINCT without ORDER BY leaves
        order unspecified, and the result multiset is identical.
        """
        if not (isinstance(operand, algebra.Project)
                and operand.projection is not None):
            return None
        bgp = operand.operand
        blocks = self._bgp_block_stream(bgp)
        if blocks is None:
            return None
        layout = self._layout
        bound = set()
        for pattern in bgp.patterns:
            for term in pattern:
                if isinstance(term, Variable):
                    bound.add(layout.slot(term))
        keep = sorted({
            slot
            for slot in (layout.slot(v) for v in operand.projection)
            if slot is not None and slot in bound
        })
        # Projected variables the BGP never binds stay None in every row, so
        # they cannot affect distinctness; with no surviving id column the
        # generic path handles the degenerate all-None case.
        if not 1 <= len(keep) <= 2:
            return None
        return self._distinct_projected(blocks, keep)

    def _distinct_projected(self, blocks, keep):
        width = self._layout.width

        def generate():
            seen = set()
            if kernels.numpy_enabled():
                np = kernels._np
                if len(keep) == 1:
                    (slot,) = keep
                    for block in blocks:
                        column = np.asarray(block.columns[slot])
                        for key in np.unique(column).tolist():
                            if key not in seen:
                                seen.add(key)
                                row = [None] * width
                                row[slot] = key
                                yield tuple(row)
                    return
                a_slot, b_slot = keep
                for block in blocks:
                    a = np.asarray(block.columns[a_slot], dtype=np.uint64)
                    b = np.asarray(block.columns[b_slot], dtype=np.uint64)
                    for key in np.unique((a << 32) | b).tolist():
                        if key not in seen:
                            seen.add(key)
                            row = [None] * width
                            row[a_slot] = key >> 32
                            row[b_slot] = key & 0xFFFFFFFF
                            yield tuple(row)
                return
            for block in blocks:
                columns = [
                    kernels._tolist(block.columns[slot]) for slot in keep
                ]
                for cells in zip(*columns):
                    if cells not in seen:
                        seen.add(cells)
                        row = [None] * width
                        for slot, cell in zip(keep, cells):
                            row[slot] = cell
                        yield tuple(row)

        return generate()

    def _eval_order_by(self, node):
        rows = list(self._eval(node.operand))
        cell_term = self.cell_term
        # Apply conditions right-to-left so the first condition dominates
        # (stable sort composition); only the sorted columns are decoded.
        for variable, ascending in reversed(node.conditions):
            slot = self._layout.slot(variable)
            if slot is None:
                continue
            rows.sort(
                key=lambda row, slot=slot: term_sort_key(cell_term(row[slot])),
                reverse=not ascending,
            )
        return iter(rows)

    def _eval_slice(self, node):
        start = node.offset or 0
        stop = None if node.limit is None else start + node.limit
        return islice(self._eval(node.operand), start, stop)

    def _eval_group(self, node):
        """GROUP BY partitioning plus aggregates, grouping on raw ids.

        Group keys compare ids (the dictionary is injective, so id equality
        is term equality); only SUM/AVG/MIN/MAX decode the aggregated column.
        Aggregate results are computed terms and live in their alias column
        as terms, not ids — they never existed in the store's dictionary.
        """
        layout = self._layout
        group_slots = tuple(layout.slot(variable) for variable in node.group_vars)
        groups = {}
        for row in self._eval(node.operand):
            key = tuple(
                None if slot is None else row[slot] for slot in group_slots
            )
            groups.setdefault(key, []).append(row)
        if not groups and not node.group_vars:
            # Aggregates over an empty solution sequence still yield one row
            # (COUNT() = 0), matching SQL/SPARQL 1.1 behaviour.
            groups[()] = []
        results = []
        for key, members in groups.items():
            out = [None] * layout.width
            for slot, cell in zip(group_slots, key):
                if slot is not None and cell is not None:
                    out[slot] = cell
            for aggregate in node.aggregates:
                alias_slot = layout.slot(aggregate.alias)
                if alias_slot is not None:
                    out[alias_slot] = self._compute_aggregate(aggregate, members)
            results.append(tuple(out))
        return iter(results)

    def _compute_aggregate(self, aggregate, rows):
        if aggregate.variable is None:
            return Literal(len(rows))
        slot = self._layout.slot(aggregate.variable)
        if slot is None:
            cells = []
        else:
            cells = [row[slot] for row in rows if row[slot] is not None]
        if aggregate.distinct:
            seen = set()
            distinct = []
            for cell in cells:
                if cell not in seen:
                    seen.add(cell)
                    distinct.append(cell)
            cells = distinct
        if aggregate.function == "COUNT":
            return Literal(len(cells))
        numbers = []
        for cell in cells:
            term = self.cell_term(cell)
            value = term.to_python() if isinstance(term, Literal) else None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            numbers.append(value)
        return reduce_numbers(aggregate.function, numbers)


# -- aggregation helper shared with the term-space evaluator -------------------


def reduce_numbers(function, numbers):
    """SUM/AVG/MIN/MAX over extracted python numbers, as an RDF literal."""
    if not numbers:
        return Literal(0)
    if function == "SUM":
        result = sum(numbers)
    elif function == "AVG":
        result = sum(numbers) / len(numbers)
    elif function == "MIN":
        result = min(numbers)
    elif function == "MAX":
        result = max(numbers)
    else:
        raise EvaluationError(f"unknown aggregate function {function!r}")
    if isinstance(result, float) and result.is_integer():
        result = int(result)
    return Literal(result)


# -- condition decomposition ---------------------------------------------------


def _split_conjuncts(expression):
    """Flatten nested ``&&`` expressions into a list of conjuncts."""
    if isinstance(expression, ast.And):
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _conjoin(conjuncts):
    if not conjuncts:
        return None
    condition = conjuncts[0]
    for conjunct in conjuncts[1:]:
        condition = ast.And(condition, conjunct)
    return condition


def _cells_key(row, slots, value_key):
    """Composite value key over the given slots; None if any is unbound."""
    key = []
    for slot in slots:
        cell = row[slot]
        if cell is None:
            return None
        key.append(value_key(cell))
    return tuple(key)


def _order_cells_key(row, order_pairs, side, order_key):
    """One row's ordering keys over the extracted conjuncts (one side).

    ``side`` selects the pair element (0 = left slot, 1 = right slot).
    None when any operand cell is unbound — a type error no candidate pair
    can recover from, mirroring :func:`expressions._compare`.
    """
    keys = []
    for pair in order_pairs:
        cell = row[pair[side]]
        if cell is None:
            return None
        keys.append(order_key(cell))
    return keys


def _order_keys_hold(left_keys, right_keys, compare_ops):
    """All extracted ordering conjuncts hold for one candidate pair.

    Cross-type pairs (or unorderable kinds) are SPARQL type errors, which
    under the condition's conjunction make the pair fail.
    """
    for (kind_a, key_a), (kind_b, key_b), compare in zip(
            left_keys, right_keys, compare_ops):
        if kind_a != kind_b or kind_a == kernels.ORD_ERROR:
            return False
        if not compare(key_a, key_b):
            return False
    return True


# -- row algebra ----------------------------------------------------------------


def _bind_ids(row, cpattern, ids):
    """Extend an id row so that a compiled pattern maps onto an id triple.

    Returns None when the triple conflicts with a repeated variable in the
    pattern; components the probe already constrained are skipped for free.
    """
    updated = None
    for (is_var, ref), value in zip(cpattern, ids):
        if not is_var:
            continue
        current = row[ref] if updated is None else updated[ref]
        if current is None:
            if updated is None:
                updated = list(row)
            updated[ref] = value
        elif current != value:
            return None
    if updated is None:
        return row
    return tuple(updated)


def _row_key(row, shared_slots):
    """Join key over the shared slots, or None if any of them is unbound."""
    key = []
    for slot in shared_slots:
        value = row[slot]
        if value is None:
            return None
        key.append(value)
    return tuple(key)


def _merge_compatible(left_row, right_row):
    """Cell-wise union of two rows, or None when any column disagrees."""
    merged = []
    for a, b in zip(left_row, right_row):
        if a is None:
            merged.append(b)
        elif b is None or a == b:
            merged.append(a)
        else:
            return None
    return tuple(merged)


def _join_rows(left, right, shared_slots):
    """Hash join two row lists on the given shared slot columns.

    Rows with every shared slot bound meet through a hash table; rows with
    unbound shared slots (possible after OPTIONAL) fall back to pairwise
    compatibility checks, mirroring the term-space join semantics.
    """
    if not left or not right:
        return []
    if not shared_slots:
        results = []
        for left_row in left:
            for right_row in right:
                merged = _merge_compatible(left_row, right_row)
                if merged is not None:
                    results.append(merged)
        return results
    shared = tuple(sorted(shared_slots))
    keyed = {}
    unkeyed = []
    for row in right:
        key = _row_key(row, shared)
        if key is None:
            unkeyed.append(row)
        else:
            keyed.setdefault(key, []).append(row)
    results = []
    for left_row in left:
        key = _row_key(left_row, shared)
        if key is None:
            candidates = right
        elif unkeyed:
            candidates = keyed.get(key, []) + unkeyed
        else:
            candidates = keyed.get(key, ())
        for right_row in candidates:
            merged = _merge_compatible(left_row, right_row)
            if merged is not None:
                results.append(merged)
    return results
