"""Tokenizer for the SPARQL fragment used by the SP2Bench queries.

The fragment covers SELECT/ASK queries with PREFIX declarations, triple
patterns (URIs, prefixed names, blank-node labels, variables, plain and typed
literals), FILTER expressions, OPTIONAL, UNION, and the solution modifiers
DISTINCT, ORDER BY, LIMIT, and OFFSET — exactly the operator surface listed
in Table II of the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import SparqlSyntaxError

#: Token kinds, in match priority order.
_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("IRI", r"<[^<>\s]*>"),
    ("TYPED_HINT", r"\^\^"),
    ("VAR", r"[?$][A-Za-z_][A-Za-z_0-9]*"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("BLANK", r"_:[A-Za-z_][A-Za-z_0-9.\-]*"),
    # The local part may contain inner dots but must not end with one, so the
    # trailing "." of a triple pattern is not swallowed into the name.
    ("QNAME", r"[A-Za-z_][A-Za-z_0-9\-]*:[A-Za-z_0-9](?:[A-Za-z_0-9.\-]*[A-Za-z_0-9\-])?"),
    ("PNAME_NS", r"[A-Za-z_][A-Za-z_0-9\-]*:"),
    ("NUMBER", r"[+-]?\d+(?:\.\d+)?"),
    ("KEYWORD_OR_NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("NEQ", r"!="),
    ("LE", r"<="),
    ("GE", r">="),
    ("AND", r"&&"),
    ("OR", r"\|\|"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("DOT", r"\."),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("EQ", r"="),
    ("LT", r"<"),
    ("GT", r">"),
    ("BANG", r"!"),
    ("STAR", r"\*"),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

#: Reserved words recognised case-insensitively.
KEYWORDS = {
    "SELECT", "ASK", "WHERE", "PREFIX", "BASE", "FILTER", "OPTIONAL", "UNION",
    "DISTINCT", "REDUCED", "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET",
    "BOUND", "REGEX", "TRUE", "FALSE", "A",
    # Aggregation extension (the SPARQL extension the paper's conclusion
    # anticipates; syntax follows what later became SPARQL 1.1).
    "GROUP", "AS", "COUNT", "SUM", "AVG", "MIN", "MAX",
    # SPARQL 1.1 Update (INSERT DATA / DELETE DATA / DELETE..INSERT..WHERE).
    "INSERT", "DELETE", "DATA",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str
    value: str
    position: int

    def upper(self):
        return self.value.upper()


def tokenize(text):
    """Tokenize SPARQL query text into a list of :class:`Token`.

    Whitespace and comments are dropped.  Raises :class:`SparqlSyntaxError`
    on unrecognised input.
    """
    tokens = []
    position = 0
    length = len(text)
    while position < length:
        match = _MASTER_RE.match(text, position)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {text[position]!r}", position
            )
        kind = match.lastgroup
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            if kind == "KEYWORD_OR_NAME" and value.upper() in KEYWORDS:
                kind = "KEYWORD"
            tokens.append(Token(kind, value, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens
