"""Cost-based join planning for the id-space engine.

Section V of the paper frames SP2Bench's query mix as an optimizer stress
test: Q4/Q5a/Q8 live or die by triple-pattern join order and filter
placement, and the cross-engine results (Figures 6-8) largely separate
engines by how well they plan joins.  The greedy reorder in
:mod:`.optimizer` scores each pattern once with a static ``/10`` discount
per bound variable; this module replaces that with an explicit *physical
plan* derived from live :class:`~repro.store.statistics.StoreStatistics`:

* **Cardinality propagation.**  Planning tracks the estimated intermediate
  result size.  A candidate pattern's contribution is its standalone
  cardinality refined by the *distinct-subject/object counts per predicate*
  for every variable position already bound upstream — the average fan-out a
  bound variable actually has, not a fixed guess.
* **Star-join grouping.**  Patterns sharing a subject slot form a star
  group (the dominant shape in real SPARQL logs per Bonifati et al.);
  candidate ranking prefers continuing the star whose subject is already
  bound, keeping star probes contiguous and cheap.
* **Physical strategy per step.**  Each step is either an index
  nested-loop ``probe`` (one index lookup per intermediate row) or a
  ``scan`` of the pattern's extent hash-joined on the shared slots — chosen
  by comparing the probe count against the scan cardinality.
* **Bind joins across operators.**  A :class:`~repro.sparql.algebra.Join`
  whose left side is estimated small seeds the evaluation of its right side
  (sideways information passing) instead of evaluating it standalone and
  hash-joining.  This is what keeps Q8's UNION branches anchored to the
  single "Paul Erdoes" solution instead of enumerating every co-author pair
  in the document.

The planner is a pure function over the algebra tree: it returns a new tree
whose BGP nodes carry a :class:`BGPPlan` (ordered steps with estimates) and
whose Join nodes carry a :class:`JoinPlan`.  The id-space evaluator executes
those plans verbatim; :class:`ExplainReport` renders them with the actual
per-step cardinalities observed during an instrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..rdf.terms import Variable
from . import algebra
from .bindings import _name

#: Physical access strategies a plan step can choose from.
PROBE = "probe"   # index nested-loop: probe the store once per intermediate row
SCAN = "scan"     # scan the pattern extent once, hash-join on the shared slots

#: Join-node strategies.
HASH_JOIN = "hash"
BIND_JOIN = "bind"

#: Batch kernels a vectorized plan step can execute (PlanStep.kernel).
#: BATCH_SCAN streams a predicate's sorted run in blocks; MERGE_JOIN extends
#: blocks whose join column is run-sorted (linear merge over two sorted
#: orders); BATCH_PROBE binary-searches the run per block column.  ``None``
#: means the step runs on the tuple path.
BATCH_SCAN = "batch_scan"
MERGE_JOIN = "merge_join"
BATCH_PROBE = "batch_probe"

#: Minimum estimated BGP cost before batch kernels pay off.  Block execution
#: has per-query fixed overhead (block plumbing, numpy call constants) of the
#: order of tens of microseconds; point lookups like Q1/Q10 (cost <= ~5) run
#: faster tuple-at-a-time, while every join-heavy catalog BGP costs >= ~27.
VECTORIZE_MIN_COST = 16.0

#: Planner family names (the ``EngineConfig.planner`` axis).
PLANNER_NONE = "none"
PLANNER_GREEDY = "greedy"
PLANNER_COST = "cost"

#: Scatter/gather strategies over a subject-partitioned store (PR 8).
#: ``union``: the whole BGP evaluates independently on every segment and the
#: result is the plain union — sound exactly when every joined triple of a
#: result row provably lives in the same segment.  ``broadcast``: the BGP
#: runs once against the global segment-chained view; probes with a bound
#: subject route to the owning segment (an implicit re-partitioning), all
#: other accesses fan out across every segment.
SCATTER_UNION = "union"
SCATTER_BROADCAST = "broadcast"

#: Assumed selectivity of one inline FILTER conjunct (no value histograms).
FILTER_SELECTIVITY = 0.5


# ---------------------------------------------------------------------------
# Plan representation
# ---------------------------------------------------------------------------

@dataclass
class PlanStep:
    """One pattern access in a planned basic graph pattern."""

    pattern: object                 #: the triple pattern this step evaluates
    strategy: str = PROBE           #: PROBE or SCAN
    join_vars: tuple = ()           #: variable names shared with bound prefix
    star: int = 0                   #: star-group id (patterns sharing a subject)
    pattern_estimate: float = 0.0   #: standalone cardinality of the pattern
    estimate: float = 0.0           #: estimated rows after this step (+ filters)
    actual: Optional[int] = None    #: rows observed during an EXPLAIN run
    kernel: Optional[str] = None    #: batch kernel (MERGE_JOIN/...), or tuple path
    #: Cumulative wall seconds spent pulling through this step's observe
    #: boundary during an EXPLAIN run.  Steps are nested generators, so a
    #: downstream step's cumulative time includes its upstream steps; the
    #: renderer prints the difference as per-step self time.
    seconds: Optional[float] = None


@dataclass
class BGPPlan:
    """Physical plan of one BGP: ordered steps plus summary estimates."""

    steps: list = field(default_factory=list)
    outer_bound: frozenset = frozenset()  #: variables bound before this BGP runs
    estimate: float = 0.0                 #: estimated final cardinality
    cost: float = 0.0                     #: summed intermediate-work estimate
    scatter: Optional[str] = None         #: SCATTER_UNION/SCATTER_BROADCAST on
                                          #: partitioned stores, else None

    def reset_actuals(self):
        for step in self.steps:
            step.actual = None
            step.seconds = None


@dataclass
class JoinPlan:
    """Strategy annotation for a Join node."""

    strategy: str = HASH_JOIN
    left_estimate: float = 0.0
    right_estimate: float = 0.0


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

class CostModel:
    """Cardinality estimation backed by store statistics.

    Works at the term level (patterns are not dictionary-encoded yet).
    Stores without a ``statistics`` attribute fall back to their
    ``estimate_count`` access path with a fixed per-bound-variable discount.
    """

    #: Fallback divisor per bound variable when no statistics exist.
    _FALLBACK_BOUND_DIVISOR = 4.0

    def __init__(self, store):
        self._store = store
        self._stats = getattr(store, "statistics", None)
        self._total_subjects = None
        self._total_objects = None

    def pattern_cardinality(self, pattern):
        """Standalone estimate: only the pattern's constants are bound."""
        subject, predicate, object_ = (
            None if isinstance(term, Variable) else term for term in pattern
        )
        if self._stats is not None:
            return float(self._stats.estimate(subject, predicate, object_))
        if self._store is not None:
            return float(self._store.estimate_count(subject, predicate, object_))
        # No store at all: a static unbound-position heuristic.
        return 10.0 ** sum(
            1 for term in pattern if isinstance(term, Variable)
        )

    def matches_per_row(self, pattern, bound_names):
        """Expected matches per intermediate row, given bound variables.

        Starts from the standalone cardinality and divides by the number of
        distinct values each already-bound variable position can take —
        the classic attribute-independence refinement, but with the live
        per-predicate distinct counts the statistics maintain.
        """
        estimate = self.pattern_cardinality(pattern)
        if estimate <= 0:
            return 0.0
        stats = self._stats
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            predicate = None
        for position, term in (
            ("subject", pattern.subject),
            ("predicate", pattern.predicate),
            ("object", pattern.object),
        ):
            if not (isinstance(term, Variable) and term.name in bound_names):
                continue
            if stats is None:
                divisor = self._FALLBACK_BOUND_DIVISOR
            elif position == "subject":
                divisor = (
                    stats.distinct_subjects(predicate)
                    if predicate is not None
                    else self._distinct_subject_total()
                )
            elif position == "object":
                divisor = (
                    stats.distinct_objects(predicate)
                    if predicate is not None
                    else self._distinct_object_total()
                )
            else:  # a bound predicate variable
                divisor = stats.distinct_predicates()
            estimate /= max(divisor, 1.0)
        return estimate

    def _distinct_subject_total(self):
        if self._total_subjects is None:
            self._total_subjects = self._stats.distinct_subject_total()
        return self._total_subjects

    def _distinct_object_total(self):
        if self._total_objects is None:
            self._total_objects = self._stats.distinct_object_total()
        return self._total_objects


# ---------------------------------------------------------------------------
# BGP planning
# ---------------------------------------------------------------------------

def _pattern_variables(pattern):
    return {term.name for term in pattern if isinstance(term, Variable)}


def _star_key(pattern):
    subject = pattern.subject
    return subject.name if isinstance(subject, Variable) else subject


def plan_bgp(patterns, inline_filters, model, outer_bound=frozenset(),
             initial_rows=1.0, reorder=True, fixed_strategy=None,
             vectorize=False):
    """Plan one basic graph pattern.

    Returns ``(ordered_patterns, remapped_inline_filters, BGPPlan)``.  With
    ``reorder=False`` the given order is kept (used to describe the greedy /
    unoptimized families for EXPLAIN); ``fixed_strategy`` forces every step
    to PROBE or SCAN, mirroring a configured single-strategy engine.  With
    ``vectorize`` the finished steps are additionally annotated with batch
    kernels (all steps or none — see :func:`_annotate_kernels`); kernel
    annotation never changes ordering or strategy choice, so a vectorized
    and a tuple-path plan of the same query are step-for-step identical.
    """
    star_groups = {}
    for pattern in patterns:
        star_groups.setdefault(_star_key(pattern), len(star_groups))

    pending_filters = [expression for _position, expression in inline_filters]
    remaining = list(patterns)
    ordered = []
    placed_filters = []
    steps = []
    bound = set(outer_bound)
    rows = float(initial_rows)
    cost = 0.0
    previous_star = None

    while remaining:
        if reorder and len(remaining) > 1:
            candidates = [
                pattern for pattern in remaining
                if not _pattern_variables(pattern)
                or (_pattern_variables(pattern) & bound)
            ] or remaining

            def rank(pattern):
                out = rows * model.matches_per_row(pattern, bound)
                key = _star_key(pattern)
                subject = pattern.subject
                continues_star = (
                    (isinstance(subject, Variable) and subject.name in bound)
                    or key == previous_star
                )
                return (out, 0 if continues_star else 1,
                        model.pattern_cardinality(pattern))

            best = min(candidates, key=rank)
        else:
            best = remaining[0]
        remaining.remove(best)

        matches = model.matches_per_row(best, bound)
        out = rows * matches
        cardinality = model.pattern_cardinality(best)
        if fixed_strategy is not None:
            strategy = fixed_strategy
        else:
            strategy = PROBE if rows <= cardinality else SCAN
        cost += (rows + out) if strategy == PROBE else (cardinality + rows + out)
        position = len(ordered)
        join_vars = tuple(sorted(_pattern_variables(best) & bound))
        bound |= _pattern_variables(best)
        ordered.append(best)

        # Place every pushed filter at the earliest position where its
        # variables are bound (outer context counts), shrinking the estimate.
        still_pending = []
        for expression in pending_filters:
            needed = {variable.name for variable in expression.variables()}
            if needed <= bound:
                placed_filters.append((position, expression))
                out *= FILTER_SELECTIVITY
            else:
                still_pending.append(expression)
        pending_filters = still_pending

        steps.append(PlanStep(
            pattern=best,
            strategy=strategy,
            join_vars=join_vars,
            star=star_groups[_star_key(best)],
            pattern_estimate=cardinality,
            estimate=out,
        ))
        rows = out
        previous_star = _star_key(best)

    # Filters whose variables never fully bind stay at the last position
    # (they will evaluate unbound variables to an error -> effective false,
    # same as the unplanned path).
    last = max(len(ordered) - 1, 0)
    for expression in pending_filters:
        placed_filters.append((last, expression))

    plan = BGPPlan(
        steps=steps,
        outer_bound=frozenset(outer_bound),
        estimate=rows,
        cost=cost,
    )
    if vectorize and not outer_bound and cost >= VECTORIZE_MIN_COST:
        _annotate_kernels(steps)
    return ordered, placed_filters, plan


def _annotate_kernels(steps):
    """Assign a batch kernel to every step, or to none.

    A step is kernel-eligible when its predicate is constant (the batch
    kernels execute over per-predicate sorted runs) and its subject/object
    are distinct variables or constants.  The whole BGP vectorizes or none
    of it does: blocks and tuples cannot alternate mid-pipeline.  Kernel
    choice mirrors what the block executor will do — scan a run, merge-join
    on the column the pipeline keeps run-sorted, or binary-search probe —
    but is purely descriptive: the runtime dispatches on the same shapes.
    """
    bound = set()
    sorted_name = None
    kernels = []
    for index, step in enumerate(steps):
        pattern = step.pattern
        if isinstance(pattern.predicate, Variable):
            return
        subject, object_ = pattern.subject, pattern.object
        s_name = subject.name if isinstance(subject, Variable) else None
        o_name = object_.name if isinstance(object_, Variable) else None
        if s_name is not None and s_name == o_name:
            return
        s_bound = s_name is not None and s_name in bound
        o_bound = o_name is not None and o_name in bound
        s_free = s_name is not None and not s_bound
        o_free = o_name is not None and not o_bound
        if s_free and o_free:
            kernel = BATCH_SCAN
            if index == 0:
                # The first step's run scan leaves the block sorted by the
                # run key; later kernels preserve that order (their output
                # row indexes are non-decreasing), so joins on this column
                # stay linear merges for the rest of the pipeline.
                sorted_name = s_name
        elif s_bound or o_bound:
            probe_name = s_name if s_bound else o_name
            if s_bound and o_bound:
                kernel = BATCH_PROBE
            elif probe_name == sorted_name:
                kernel = MERGE_JOIN
            else:
                kernel = BATCH_PROBE
        else:
            # Constant subject and/or object: an existence check or a
            # single-key selection cross-extended into the block.
            kernel = BATCH_PROBE
            if index == 0 and (s_free or o_free):
                sorted_name = s_name if s_free else o_name
        bound.update(name for name in (s_name, o_name) if name is not None)
        kernels.append(kernel)
    for step, kernel in zip(steps, kernels):
        step.kernel = kernel


# ---------------------------------------------------------------------------
# Tree planning
# ---------------------------------------------------------------------------

def plan_tree(tree, store, vectorize=False):
    """Cost-based planning pass over a whole algebra tree.

    Reorders every BGP, chooses per-step physical strategies, decides
    hash-versus-bind for Join nodes, and attaches the plans to the returned
    (new) tree.  The input tree is not mutated.  ``vectorize`` additionally
    annotates batch kernels on the steps of standalone BGPs (requires a
    store with sorted runs); it never changes ordering or strategies, so
    forcing it off reproduces the identical plan on the tuple path.
    """
    model = CostModel(store)
    if vectorize and not getattr(store, "supports_sorted_runs", False):
        vectorize = False
    planned, _estimate, _cost = _plan_node(tree, model, frozenset(), 1.0,
                                           reorder=True, fixed_strategy=None,
                                           vectorize=vectorize)
    return annotate_scatter(planned, store)


def annotate_tree(tree, store, strategy=PROBE):
    """Attach descriptive plans without changing evaluation order.

    Used by EXPLAIN for the ``none``/``greedy`` planner families: the tree
    keeps its order and single physical strategy, but every BGP still gets
    estimates so the rendered plan can show estimated-versus-actual rows.
    """
    model = CostModel(store)
    annotated, _estimate, _cost = _plan_node(tree, model, frozenset(), 1.0,
                                             reorder=False, fixed_strategy=strategy)
    return annotate_scatter(annotated, store)


def scatter_strategy(patterns):
    """How one BGP distributes over subject-partitioned segments.

    Partitioning is by subject id, so a result row is discoverable inside a
    single segment exactly when all of its contributing triples share that
    segment — guaranteed when every pattern has the *same* subject term
    (one shared subject variable, or one constant subject): the star shape
    that dominates the catalog and the published query logs.  Those BGPs
    scatter as :data:`SCATTER_UNION`.  Any other shape can join triples
    across segment boundaries and falls back to :data:`SCATTER_BROADCAST`.
    The runtime (:mod:`repro.sparql.scatter`) applies the same rule, so the
    EXPLAIN annotation and the executed strategy always agree.
    """
    subjects = {pattern.subject for pattern in patterns}
    return SCATTER_UNION if len(subjects) == 1 else SCATTER_BROADCAST


def annotate_scatter(tree, store):
    """Record the scatter/gather strategy on every planned BGP.

    A no-op for unpartitioned stores (fewer than two segments).  A BGP with
    outer-bound variables (the right side of a bind join) is evaluated with
    per-row seeds, which the union scatter does not model — it is annotated
    (and executed) as a broadcast.
    """
    if len(getattr(store, "segments", ()) or ()) < 2:
        return tree
    for node in algebra.walk(tree):
        plan = getattr(node, "plan", None)
        if not isinstance(node, algebra.BGP) or plan is None or not node.patterns:
            continue
        if plan.outer_bound:
            plan.scatter = SCATTER_BROADCAST
        else:
            plan.scatter = scatter_strategy(node.patterns)
    return tree


def _seedable(node):
    """True when bind-join seeding preserves semantics for ``node``.

    Seeding pushes the left rows *into* the right operand's evaluation;
    that is only sound for operators that extend solutions monotonically.
    A LeftJoin inside the right side must keep its standalone evaluation:
    deciding matched-versus-unmatched against already-merged seed rows
    would turn join failures into OPTIONAL pass-throughs.  A Filter is
    seedable only when every variable of its expression is produced by its
    own operand: a FILTER referencing a variable that is out of scope in
    its group must see it *unbound* (error -> false, SPARQL filter
    scoping), which seeding would silently bind.
    """
    if isinstance(node, algebra.BGP):
        return True
    if isinstance(node, algebra.Union):
        return _seedable(node.left) and _seedable(node.right)
    if isinstance(node, algebra.Filter):
        produced = {_name(v) for v in node.operand.variables()}
        needed = {v.name for v in node.expression.variables()}
        return needed <= produced and _seedable(node.operand)
    return False


def _plan_node(node, model, outer, rows, reorder, fixed_strategy,
               vectorize=False):
    """Plan one node; returns ``(new_node, estimated_rows, estimated_cost)``."""
    if isinstance(node, algebra.BGP):
        if not node.patterns:
            return node, rows, 0.0
        ordered, filters, plan = plan_bgp(
            node.patterns, node.inline_filters, model,
            outer_bound=outer, initial_rows=rows,
            reorder=reorder, fixed_strategy=fixed_strategy,
            vectorize=vectorize,
        )
        new = algebra.BGP(ordered, inline_filters=filters, plan=plan)
        return new, plan.estimate, plan.cost

    if isinstance(node, algebra.Join):
        left, left_rows, left_cost = _plan_node(
            node.left, model, outer, rows, reorder, fixed_strategy, vectorize)
        left_vars = {_name(v) for v in node.left.variables()}
        # Hash option: the right side evaluates standalone.
        hash_right, hash_rows, hash_cost_right = _plan_node(
            node.right, model, outer, 1.0, reorder, fixed_strategy, vectorize)
        shared = left_vars & {_name(v) for v in node.right.variables()}
        hash_out = max(left_rows, hash_rows) if shared else left_rows * hash_rows
        hash_cost = left_cost + hash_cost_right + left_rows + hash_rows + hash_out
        if reorder and _seedable(node.right):
            # Bind option: seed the right side with the left rows.
            bind_right, bind_rows, bind_cost_right = _plan_node(
                node.right, model, outer | left_vars, left_rows,
                reorder, fixed_strategy, vectorize)
            bind_cost = left_cost + bind_cost_right
            if bind_cost < hash_cost:
                plan = JoinPlan(BIND_JOIN, left_rows, bind_rows)
                return (algebra.Join(left, bind_right, plan=plan),
                        bind_rows, bind_cost)
        plan = JoinPlan(HASH_JOIN, left_rows, hash_rows)
        return algebra.Join(left, hash_right, plan=plan), hash_out, hash_cost

    if isinstance(node, algebra.LeftJoin):
        left, left_rows, left_cost = _plan_node(
            node.left, model, outer, rows, reorder, fixed_strategy, vectorize)
        right, right_rows, right_cost = _plan_node(
            node.right, model, outer, 1.0, reorder, fixed_strategy, vectorize)
        cost = left_cost + right_cost + left_rows + right_rows
        return (algebra.LeftJoin(left, right, node.condition),
                max(left_rows, 1.0) if left_rows else left_rows, cost)

    if isinstance(node, algebra.Union):
        left, left_rows, left_cost = _plan_node(
            node.left, model, outer, rows, reorder, fixed_strategy, vectorize)
        right, right_rows, right_cost = _plan_node(
            node.right, model, outer, rows, reorder, fixed_strategy, vectorize)
        return (algebra.Union(left, right),
                left_rows + right_rows, left_cost + right_cost)

    if isinstance(node, algebra.Filter):
        operand, operand_rows, operand_cost = _plan_node(
            node.operand, model, outer, rows, reorder, fixed_strategy,
            vectorize)
        return (algebra.Filter(node.expression, operand),
                operand_rows * FILTER_SELECTIVITY, operand_cost + operand_rows)

    if isinstance(node, (algebra.Project, algebra.Distinct, algebra.OrderBy,
                         algebra.Slice, algebra.Ask, algebra.Group)):
        if isinstance(node, algebra.Ask) and fixed_strategy is None:
            # ASK stops at the first solution; force streaming PROBE steps so
            # no SCAN materializes an intermediate result it will never need.
            fixed_strategy = PROBE
        operand, operand_rows, operand_cost = _plan_node(
            node.operand, model, outer, rows, reorder, fixed_strategy,
            vectorize)
        estimate = operand_rows
        if isinstance(node, algebra.Slice) and node.limit is not None:
            estimate = min(estimate, float(node.limit))
        return replace(node, operand=operand), estimate, operand_cost

    return node, rows, 0.0


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------

@dataclass
class ExplainReport:
    """A rendered query plan with estimated and observed cardinalities.

    Produced by :meth:`repro.sparql.engine.SparqlEngine.explain`; ``actual``
    columns are filled only when the query executed on the id-space path
    (term-space execution is not instrumented).
    """

    tree: object
    planner: str
    engine: str
    id_space: bool = True
    result_count: int = 0
    elapsed: float = 0.0
    #: Front-end/back-end stage wall times in seconds (parse/plan/execute),
    #: filled by :meth:`~repro.sparql.engine.SparqlEngine.explain`.
    stages: dict = field(default_factory=dict)

    def plan_steps(self):
        """Every PlanStep of every planned BGP, in tree pre-order."""
        for node in algebra.walk(self.tree):
            plan = getattr(node, "plan", None)
            if isinstance(node, algebra.BGP) and plan is not None:
                yield from plan.steps

    def planned_patterns(self):
        """The triple patterns of the plan, one entry per step."""
        return [step.pattern for step in self.plan_steps()]

    def render(self):
        lines = [
            f"plan: planner={self.planner} engine={self.engine} "
            f"space={'id' if self.id_space else 'term'} "
            f"rows={self.result_count} elapsed={self.elapsed:.3f}s"
        ]
        if self.stages:
            breakdown = " ".join(
                f"{name}={seconds * 1e3:.2f}ms"
                for name, seconds in self.stages.items()
            )
            lines.append(f"stages: {breakdown}")
        self._render_node(self.tree, 0, lines)
        return "\n".join(lines)

    __str__ = render

    def _render_node(self, node, depth, lines):
        pad = "  " * depth
        if isinstance(node, algebra.BGP):
            plan = getattr(node, "plan", None)
            estimate = f" est={_fmt(plan.estimate)}" if plan is not None else ""
            lines.append(f"{pad}BGP [{len(node.patterns)} patterns]{estimate}")
            if plan is not None:
                previous_seconds = 0.0
                for index, step in enumerate(plan.steps, start=1):
                    join = (
                        " join=" + ",".join("?" + name for name in step.join_vars)
                        if step.join_vars else ""
                    )
                    filters = len(node.filters_at(index - 1))
                    filter_note = f" +{filters}filter" if filters else ""
                    actual = "-" if step.actual is None else str(step.actual)
                    if step.seconds is None:
                        time_note = ""
                    else:
                        # step.seconds is cumulative over the nested pull
                        # pipeline; the difference vs the previous step is
                        # this step's own contribution.
                        self_seconds = max(step.seconds - previous_seconds,
                                           0.0)
                        previous_seconds = step.seconds
                        time_note = f" time={self_seconds * 1e3:.2f}ms"
                    vectorized = (
                        f" vectorized=yes kernel={step.kernel}"
                        if step.kernel else " vectorized=no"
                    )
                    scatter = (
                        f" scatter={plan.scatter}" if plan.scatter else ""
                    )
                    lines.append(
                        f"{pad}  {index}. [{step.strategy:<5}] "
                        f"{step.pattern.n3()}{join}{filter_note} "
                        f"est={_fmt(step.estimate)} actual={actual}"
                        f"{time_note}{vectorized}{scatter}"
                    )
            else:
                for index, pattern in enumerate(node.patterns, start=1):
                    lines.append(f"{pad}  {index}. {pattern.n3()}")
            return
        label = type(node).__name__
        plan = getattr(node, "plan", None)
        if isinstance(node, algebra.Join) and plan is not None:
            label += (
                f" [{plan.strategy}] left_est={_fmt(plan.left_estimate)} "
                f"right_est={_fmt(plan.right_estimate)}"
            )
        elif isinstance(node, algebra.Filter):
            label += f" ({node.expression})"
        elif isinstance(node, algebra.OrderBy):
            label += f" ({node.conditions})"
        elif isinstance(node, algebra.Slice):
            label += f" (limit={node.limit}, offset={node.offset})"
        lines.append(pad + label)
        for child in node.children():
            self._render_node(child, depth + 1, lines)


def _fmt(value):
    if value >= 100 or value == int(value):
        return str(int(round(value)))
    return f"{value:.1f}"
