"""W3C SPARQL-results serializers: JSON, XML, CSV, and TSV.

Implements the result exchange formats a serving frontend speaks:

* ``json`` — SPARQL 1.1 Query Results JSON Format (``application/
  sparql-results+json``): a ``head.vars`` list plus one term object per
  binding (``{"type": "uri"|"literal"|"bnode", "value": ...}`` with optional
  ``datatype`` / ``xml:lang``); ASK answers become ``{"boolean": ...}``.
* ``xml`` — SPARQL Query Results XML Format (``application/
  sparql-results+xml``): ``<sparql>`` with a ``<head>`` of variables and a
  ``<results>`` of ``<result>``/``<binding>`` elements (``<uri>``,
  ``<bnode>``, ``<literal>`` with ``xml:lang`` / ``datatype``); ASK answers
  become a ``<boolean>`` element.
* ``csv`` — SPARQL 1.1 Query Results CSV: bare variable names in the header,
  plain lexical values (IRIs unbracketed, blank nodes as ``_:label``),
  RFC 4180 quoting and CRLF line endings.
* ``tsv`` — SPARQL 1.1 Query Results TSV: ``?var`` headers and terms in
  their SPARQL (N-Triples) surface syntax, one solution per line.

Every ``write_*`` function streams: it consumes the solution iterable
exactly once and emits rows as they arrive, so serializing a cursor never
materializes the result — the serialization path has the same
time-to-first-byte as the cursor has time-to-first-row.  CSV/TSV have no
W3C-defined ASK form; a single ``true``/``false`` line is emitted, matching
common endpoint practice.
"""

from __future__ import annotations

import csv
import io
import json
from xml.sax.saxutils import escape, quoteattr

from ..rdf.terms import BNode, Literal, URIRef
from .bindings import variable_name

#: Formats understood by :func:`serialize` / :func:`write` (and the CLI).
FORMATS = ("json", "xml", "csv", "tsv")

#: Canonical media type of each format — what the SPARQL Protocol server
#: sends as Content-Type (keys are the :data:`FORMATS` entries).
CONTENT_TYPES = {
    "json": "application/sparql-results+json",
    "xml": "application/sparql-results+xml",
    "csv": "text/csv; charset=utf-8",
    "tsv": "text/tab-separated-values; charset=utf-8",
}

#: XML namespace of the SPARQL Query Results XML Format.
SPARQL_RESULTS_NS = "http://www.w3.org/2005/sparql-results#"


def term_json(term):
    """The SPARQL-results JSON object for one RDF term."""
    if isinstance(term, URIRef):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        encoded = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            encoded["xml:lang"] = term.language
        elif term.datatype is not None:
            encoded["datatype"] = term.datatype
        return encoded
    raise TypeError(f"cannot serialize term {term!r}")


def term_csv(term):
    """The plain-lexical CSV cell for one RDF term ('' for unbound)."""
    if term is None:
        return ""
    if isinstance(term, URIRef):
        return term.value
    if isinstance(term, BNode):
        return f"_:{term.label}"
    if isinstance(term, Literal):
        return term.lexical
    raise TypeError(f"cannot serialize term {term!r}")


def term_tsv(term):
    """The N-Triples-syntax TSV cell for one RDF term ('' for unbound)."""
    if term is None:
        return ""
    return term.n3()


def write_json(fp, variables, bindings):
    """Stream a SELECT solution sequence as SPARQL-results JSON."""
    names = [variable_name(v) for v in variables]
    fp.write('{"head": {"vars": %s}, "results": {"bindings": [' % json.dumps(names))
    count = 0
    for binding in bindings:
        if count:
            fp.write(", ")
        encoded = {
            name: term_json(term)
            for name in names
            for term in (binding.get(name),)
            if term is not None
        }
        fp.write(json.dumps(encoded))
        count += 1
    fp.write("]}}")
    return count


def term_xml(name, term):
    """The ``<binding>`` element for one bound term."""
    if isinstance(term, URIRef):
        inner = f"<uri>{escape(term.value)}</uri>"
    elif isinstance(term, BNode):
        inner = f"<bnode>{escape(term.label)}</bnode>"
    elif isinstance(term, Literal):
        if term.language is not None:
            inner = (f"<literal xml:lang={quoteattr(term.language)}>"
                     f"{escape(term.lexical)}</literal>")
        elif term.datatype is not None:
            inner = (f"<literal datatype={quoteattr(term.datatype)}>"
                     f"{escape(term.lexical)}</literal>")
        else:
            inner = f"<literal>{escape(term.lexical)}</literal>"
    else:
        raise TypeError(f"cannot serialize term {term!r}")
    return f"<binding name={quoteattr(name)}>{inner}</binding>"


def _write_xml_prologue(fp, variables):
    fp.write('<?xml version="1.0"?>\n')
    fp.write(f'<sparql xmlns="{SPARQL_RESULTS_NS}">')
    fp.write("<head>")
    for name in variables:
        fp.write(f"<variable name={quoteattr(name)}/>")
    fp.write("</head>")


def write_xml(fp, variables, bindings):
    """Stream a SELECT solution sequence as SPARQL-results XML."""
    names = [variable_name(v) for v in variables]
    _write_xml_prologue(fp, names)
    fp.write("<results>")
    count = 0
    for binding in bindings:
        fp.write("<result>")
        for name in names:
            term = binding.get(name)
            if term is not None:
                fp.write(term_xml(name, term))
        fp.write("</result>")
        count += 1
    fp.write("</results></sparql>")
    return count


def write_csv(fp, variables, bindings):
    """Stream a SELECT solution sequence as SPARQL-results CSV."""
    names = [variable_name(v) for v in variables]
    writer = csv.writer(fp, lineterminator="\r\n")
    writer.writerow(names)
    count = 0
    for binding in bindings:
        writer.writerow([term_csv(binding.get(name)) for name in names])
        count += 1
    return count


def write_tsv(fp, variables, bindings):
    """Stream a SELECT solution sequence as SPARQL-results TSV."""
    names = [variable_name(v) for v in variables]
    fp.write("\t".join("?" + name for name in names) + "\n")
    count = 0
    for binding in bindings:
        fp.write("\t".join(term_tsv(binding.get(name)) for name in names) + "\n")
        count += 1
    return count


def write_ask_json(fp, value):
    fp.write(json.dumps({"head": {}, "boolean": bool(value)}))
    return 1


def write_ask_xml(fp, value):
    _write_xml_prologue(fp, ())
    fp.write(f"<boolean>{'true' if value else 'false'}</boolean></sparql>")
    return 1


def write_ask_csv(fp, value):
    fp.write("true\r\n" if value else "false\r\n")
    return 1


def write_ask_tsv(fp, value):
    fp.write("true\n" if value else "false\n")
    return 1


_SELECT_WRITERS = {
    "json": write_json, "xml": write_xml, "csv": write_csv, "tsv": write_tsv,
}
_ASK_WRITERS = {
    "json": write_ask_json, "xml": write_ask_xml,
    "csv": write_ask_csv, "tsv": write_ask_tsv,
}


def write(fp, variables, result, format="json"):
    """Stream-serialize a result (cursor or eager container) to ``fp``.

    ``result`` is either an iterable of solution bindings (SELECT) or an
    ASK-formed object exposing a boolean ``value``.  Returns the number of
    rows written.
    """
    if format not in FORMATS:
        raise ValueError(f"unknown result format {format!r} (expected one of {FORMATS})")
    if getattr(result, "form", None) == "ASK":
        return _ASK_WRITERS[format](fp, bool(result))
    return _SELECT_WRITERS[format](fp, variables, result)


def serialize(variables, result, format="json"):
    """Serialize a result into one string; see :func:`write`."""
    buffer = io.StringIO()
    write(buffer, variables, result, format)
    return buffer.getvalue()
