"""Batch (column-at-a-time) kernels for the id-space evaluator.

The tuple path in :mod:`.idspace` grows one Python tuple per intermediate
solution inside the BGP hot loops — per-row interpreter overhead the paper's
native engines do not pay.  This module provides the batch alternative: a
basic graph pattern executes over :class:`Block` objects (parallel ``u32``
id columns keyed by slot), and each plan step is one kernel call that
binary-searches or merge-joins a predicate's :class:`~repro.store.
indexed_store.SortedRun` against whole columns at a time.

Three kinds of kernels live here:

* **scan/selection** — stream a sorted run (or one key's value range) into
  blocks of at most :data:`BLOCK_ROWS` rows, so downstream LIMIT pushdown
  and deadline checks keep working at block granularity;
* **join/probe** — extend every block row with its run matches
  (``extend_bound``), or filter rows by membership of one column
  (``member_mask``) / a column pair (``semijoin_pair``) in a run;
* **columnar filters** — evaluate the comparison/equality FILTER shapes the
  catalog queries use against whole columns, reproducing the exact SPARQL
  semantics of :mod:`.expressions` (value equality across numeric datatypes,
  type errors mapping to false) through per-unique-id proxies.

Every kernel has a numpy fast path and a pure-``array``/``bisect`` fallback;
numpy is detected once at import (and disabled by ``SP2B_DISABLE_NUMPY=1``,
the CI leg that keeps the fallback measured).  Nothing here imports the
planner or evaluator — the dependency points the other way.
"""

from __future__ import annotations

import operator
import os
from bisect import bisect_left, bisect_right

from ..rdf.terms import BNode, Literal, URIRef, Variable
from . import ast


def _load_numpy():
    """The numpy module, or None when unavailable or explicitly disabled."""
    if os.environ.get("SP2B_DISABLE_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy ships in the dev image
        return None
    return numpy


#: The numpy module when the fast path is active (tests monkeypatch this to
#: None to exercise the pure-array fallback without re-importing).
_np = _load_numpy()


def numpy_enabled():
    """True when the numpy fast path is active."""
    return _np is not None


#: Rows per block on the scan/selection kernels.  Large enough that per-block
#: Python overhead (one generator step, one deadline check) is amortized over
#: ~1k rows of C-level work, small enough that a LIMIT 10 query never
#: materializes more than one block past its answer and deadlines fire with
#: sub-millisecond granularity on the catalog workloads.
BLOCK_ROWS = 1024


class Block:
    """A batch of intermediate solutions as parallel id columns.

    ``columns`` maps slot index -> column of dictionary ids (a numpy array on
    the fast path, a plain list on the fallback); every column has exactly
    ``length`` entries.  Slots absent from ``columns`` are unbound in every
    row of the block — within one planned BGP a variable is either bound in
    all rows of a block or in none, which is what lets blocks drop the
    per-cell ``None`` bookkeeping of the tuple path.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns, length):
        self.columns = columns
        self.length = length

    def __len__(self):
        return self.length

    def __repr__(self):
        return f"Block(slots={sorted(self.columns)}, rows={self.length})"


def unit_block():
    """The starting block of a BGP: one row binding nothing."""
    return Block({}, 1)


def empty_block():
    """A block with no rows (kernels return it for empty join results)."""
    return Block({}, 0)


# -- column plumbing ----------------------------------------------------------


def _tolist(column):
    """A column as a plain list of Python ints."""
    if _np is not None and isinstance(column, _np.ndarray):
        return column.tolist()
    return list(column)


def _run_np(run):
    """Numpy views over a run's two columns, cached on the run.

    ``array('I')`` exposes the buffer protocol, so the common case is a
    zero-copy ``frombuffer`` view; the views die with the run's cache, which
    store mutation clears together with the run itself.
    """
    view = run.cache.get("np")
    if view is None:
        if run.keys.itemsize == 4:
            keys = _np.frombuffer(run.keys, dtype=_np.uint32)
            values = _np.frombuffer(run.values, dtype=_np.uint32)
        else:  # pragma: no cover - exotic platform where u32 arrays widen
            keys = _np.asarray(run.keys, dtype=_np.uint32)
            values = _np.asarray(run.values, dtype=_np.uint32)
        view = (keys, values)
        run.cache["np"] = view
    return view


def _run_composite(run):
    """The run's (key, value) pairs as one sorted u64 column, cached."""
    composite = run.cache.get("composite")
    if composite is None:
        keys, values = _run_np(run)
        composite = (keys.astype(_np.uint64) << 32) | values
        run.cache["composite"] = composite
    return composite


def mask_all(block, value):
    """A constant filter mask over one block."""
    if _np is not None:
        return _np.full(block.length, bool(value))
    return [bool(value)] * block.length


def combine_masks(left, right):
    """Conjunction of two masks."""
    if _np is not None:
        return left & right
    return [a and b for a, b in zip(left, right)]


def apply_mask(block, mask):
    """The block restricted to the rows where ``mask`` is true."""
    if _np is not None:
        length = int(mask.sum())
        if length == block.length:
            return block
        columns = {slot: col[mask] for slot, col in block.columns.items()}
        return Block(columns, length)
    keep = [index for index, flag in enumerate(mask) if flag]
    if len(keep) == block.length:
        return block
    columns = {
        slot: [col[index] for index in keep]
        for slot, col in block.columns.items()
    }
    return Block(columns, len(keep))


def gather(block, indices):
    """The block restricted to (and ordered by) the given row indices."""
    if _np is not None:
        idx = _np.asarray(indices, dtype=_np.intp)
        columns = {slot: col[idx] for slot, col in block.columns.items()}
        return Block(columns, len(indices))
    columns = {
        slot: [col[index] for index in indices]
        for slot, col in block.columns.items()
    }
    return Block(columns, len(indices))


def block_rows(block, width):
    """Yield one block's rows as flat ``width``-wide tuples of ints/None.

    The bridge back to the tuple domain: ids come out as Python ints
    (``tolist`` conversion), so downstream operators (OPTIONAL joins,
    DISTINCT sets, the decode memo) see exactly the cells the tuple path
    would have produced.
    """
    if block.length == 0:
        return
    slots = sorted(block.columns)
    if not slots:
        row = (None,) * width
        for _ in range(block.length):
            yield row
        return
    template = [None] * width
    lists = [_tolist(block.columns[slot]) for slot in slots]
    for cells in zip(*lists):
        row = template.copy()
        for slot, cell in zip(slots, cells):
            row[slot] = cell
        yield tuple(row)


def rows_from_blocks(blocks, width):
    """Flatten a lazy block stream into the tuple-row protocol."""
    for block in blocks:
        yield from block_rows(block, width)


# -- scan / selection kernels -------------------------------------------------


def run_scan_blocks(run, key_slot, value_slot):
    """Stream a whole run as blocks of at most BLOCK_ROWS rows.

    The run is already sorted by ``key_slot``'s column, which downstream
    merge-join steps exploit; chunking keeps the pipeline lazy so LIMIT
    pushdown stops the scan early.
    """
    total = len(run)
    if _np is not None:
        keys, values = _run_np(run)
        for start in range(0, total, BLOCK_ROWS):
            stop = min(start + BLOCK_ROWS, total)
            yield Block(
                {key_slot: keys[start:stop], value_slot: values[start:stop]},
                stop - start,
            )
        return
    keys, values = run.keys, run.values
    for start in range(0, total, BLOCK_ROWS):
        stop = min(start + BLOCK_ROWS, total)
        yield Block(
            {
                key_slot: list(keys[start:stop]),
                value_slot: list(values[start:stop]),
            },
            stop - start,
        )


def select_eq(run, key):
    """All values for one exact key, ascending (possibly empty).

    Within equal keys a run is sorted by value (lexicographic pair sort), so
    the returned column is itself binary-searchable by :func:`member_mask`.
    """
    if _np is not None:
        keys, values = _run_np(run)
        lo = int(_np.searchsorted(keys, key, "left"))
        hi = int(_np.searchsorted(keys, key, "right"))
        return values[lo:hi]
    lo = bisect_left(run.keys, key)
    hi = bisect_right(run.keys, key)
    return list(run.values[lo:hi])


def column_length(column):
    return len(column)


def cross_extend(block, new_columns):
    """Cartesian product of a block with parallel new columns.

    ``new_columns`` maps slot -> column; all new columns have the same
    length ``m``.  Every block row is paired with every new row: existing
    columns repeat each entry ``m`` times (preserving row order, and with it
    any sortedness of existing columns), new columns tile ``block.length``
    times.
    """
    lengths = {len(col) for col in new_columns.values()}
    (m,) = lengths
    if m == 0 or block.length == 0:
        return empty_block()
    if _np is not None:
        columns = {
            slot: _np.repeat(col, m) for slot, col in block.columns.items()
        }
        for slot, col in new_columns.items():
            columns[slot] = _np.tile(_np.asarray(col), block.length)
        return Block(columns, block.length * m)
    columns = {
        slot: [cell for cell in col for _ in range(m)]
        for slot, col in block.columns.items()
    }
    for slot, col in new_columns.items():
        columns[slot] = list(col) * block.length
    return Block(columns, block.length * m)


# -- join / probe kernels -----------------------------------------------------


def extend_bound(block, bound_slot, run, new_slot):
    """Join a block column against a run's keys, binding the values.

    For every row, every run entry whose key equals the row's
    ``bound_slot`` id produces one output row with the entry's value in
    ``new_slot``.  Row order is preserved (the output index vector is
    non-decreasing), so a column that was sorted stays sorted — the
    property that keeps merge-join steps merge-joinable down the pipeline.
    """
    column = block.columns[bound_slot]
    if _np is not None:
        np = _np
        keys, values = _run_np(run)
        lo = np.searchsorted(keys, column, "left")
        hi = np.searchsorted(keys, column, "right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return empty_block()
        out_index = np.repeat(np.arange(block.length), counts)
        # Positions into the run: a ramp over the output rows, rebased per
        # input row to that row's [lo, hi) match range.
        starts = np.repeat(lo, counts)
        rebase = np.repeat(np.cumsum(counts) - counts, counts)
        positions = np.arange(total) - rebase + starts
        columns = {
            slot: col[out_index] for slot, col in block.columns.items()
        }
        columns[new_slot] = values[positions]
        return Block(columns, total)
    keys, values = run.keys, run.values
    out_index = []
    new_column = []
    for index, key in enumerate(column):
        lo = bisect_left(keys, key)
        hi = bisect_right(keys, key)
        if lo == hi:
            continue
        out_index.extend([index] * (hi - lo))
        new_column.extend(values[lo:hi])
    if not out_index:
        return empty_block()
    columns = {
        slot: [col[index] for index in out_index]
        for slot, col in block.columns.items()
    }
    columns[new_slot] = new_column
    return Block(columns, len(out_index))


def member_mask(block, bound_slot, sorted_values):
    """Mask of rows whose column id occurs in an ascending value column."""
    column = block.columns[bound_slot]
    if _np is not None:
        np = _np
        if len(sorted_values) == 0:
            return np.zeros(block.length, dtype=bool)
        values = np.asarray(sorted_values)
        positions = np.searchsorted(values, column, "left")
        clipped = np.minimum(positions, len(values) - 1)
        return values[clipped] == column
    mask = []
    size = len(sorted_values)
    for key in column:
        index = bisect_left(sorted_values, key)
        mask.append(index < size and sorted_values[index] == key)
    return mask


def semijoin_pair(block, key_slot, value_slot, run):
    """Mask of rows whose (key, value) column pair occurs in the run."""
    key_column = block.columns[key_slot]
    value_column = block.columns[value_slot]
    if _np is not None:
        np = _np
        composite = _run_composite(run)
        if len(composite) == 0:
            return np.zeros(block.length, dtype=bool)
        needles = (
            np.asarray(key_column, dtype=np.uint64) << 32
        ) | np.asarray(value_column, dtype=np.uint64)
        positions = np.searchsorted(composite, needles, "left")
        clipped = np.minimum(positions, len(composite) - 1)
        return composite[clipped] == needles
    keys, values = run.keys, run.values
    mask = []
    for key, value in zip(key_column, value_column):
        lo = bisect_left(keys, key)
        hi = bisect_right(keys, key)
        # Values are ascending within one key's range, so the pair test is a
        # second bisect bounded to that range — no slice is materialized.
        index = bisect_left(values, value, lo, hi)
        mask.append(index < hi and values[index] == value)
    return mask


# -- columnar filters ---------------------------------------------------------
#
# The filter kernels reproduce expressions._compare exactly, one unique id at
# a time instead of one row at a time: every distinct id in the operand
# columns is decoded once and classified into a comparison proxy, then the
# row-level mask is pure id-class arithmetic.  The proxy classes mirror the
# type ladder of expressions._equals/_order_values, including the SPARQL
# type-error cases (which map to a false mask entry, matching
# effective_boolean_value's error handling).

_ORDERING = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Equality proxy kinds (the _equals type ladder).
_EQ_TERM = 0    # URI / blank node: term equality, errors against literals
_EQ_NUM = 1     # numeric literal: value equality across datatypes
_EQ_STR = 2     # language-free string-valued literal: string value equality
_EQ_LIT = 3     # other literal (lang-tagged, boolean, ...): term equality

#: Ordering proxy kinds (the _order_values ladder; 0 = type error).
_ORD_ERROR = 0
_ORD_NUM = 1
_ORD_STR = 2


def _eq_proxy(term):
    """Equality class of one term: equal proxies <=> _equals() holds."""
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, bool):
            return (_EQ_LIT, term)
        if isinstance(value, (int, float)):
            return (_EQ_NUM, float(value))
        if isinstance(value, str) and term.language is None:
            return (_EQ_STR, value)
        return (_EQ_LIT, term)
    return (_EQ_TERM, term)


def _ord_proxy(term):
    """Ordering class and key of one term (kind 0 = unorderable)."""
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, bool):
            return (_ORD_ERROR, None)
        if isinstance(value, (int, float)):
            return (_ORD_NUM, float(value))
        if isinstance(value, str):
            return (_ORD_STR, value)
    return (_ORD_ERROR, None)


#: Public names for the ordering-key machinery: the left-join build reuses
#: it to turn theta-join conjuncts (``?yr2 < ?yr``) into precomputed-key
#: comparisons instead of per-candidate expression evaluation.
ORD_ERROR = _ORD_ERROR
ORDERING_OPS = _ORDERING
ordering_proxy = _ord_proxy


def compile_filter(expression, slot_of):
    """Compile a FILTER expression to columnar conjuncts, or None.

    Supported: conjunctions (``&&``) of comparisons whose operands are
    variables or constant terms — the shapes the catalog queries use.  Each
    compiled conjunct is ``(operator, operand, operand)`` with operands
    ``("slot", index-or-None)`` or ``("const", term)``.  Anything else
    returns None and the caller falls back to per-row evaluation.
    """
    conjuncts = []
    for conjunct in _flatten_and(expression):
        if not isinstance(conjunct, ast.Comparison):
            return None
        if conjunct.operator not in ("=", "!=") and \
                conjunct.operator not in _ORDERING:
            return None
        operands = []
        for side in (conjunct.left, conjunct.right):
            if not isinstance(side, ast.TermExpression):
                return None
            term = side.term
            if isinstance(term, Variable):
                operands.append(("slot", slot_of(term)))
            elif isinstance(term, (URIRef, BNode, Literal)):
                operands.append(("const", term))
            else:
                return None
        conjuncts.append((conjunct.operator, operands[0], operands[1]))
    return conjuncts


def _flatten_and(expression):
    if isinstance(expression, ast.And):
        return _flatten_and(expression.left) + _flatten_and(expression.right)
    return [expression]


def filter_mask(block, compiled, cell_term):
    """Row mask of a compiled filter over one block.

    Conjuncts combine by plain AND: a per-conjunct type error yields false
    for that conjunct, and under SPARQL's three-valued ``&&`` any false or
    error conjunct makes the whole filter drop the row — identical outcomes.
    """
    mask = None
    for op, left, right in compiled:
        conjunct_mask = _conjunct_mask(block, op, left, right, cell_term)
        mask = (
            conjunct_mask if mask is None
            else combine_masks(mask, conjunct_mask)
        )
    return mask if mask is not None else mask_all(block, True)


def _operand_column(block, operand):
    """Resolve an operand to ``("col", column)`` / ``("const", term)`` / None.

    None means the operand is a variable with no bound column in this block:
    every row evaluates it as unbound -> type error -> false.
    """
    kind, ref = operand
    if kind == "const":
        return ("const", ref)
    if ref is None:
        return None
    column = block.columns.get(ref)
    if column is None:
        return None
    return ("col", column)


def _conjunct_mask(block, op, left, right, cell_term):
    left = _operand_column(block, left)
    right = _operand_column(block, right)
    if left is None or right is None:
        return mask_all(block, False)
    if op in ("=", "!="):
        return _equality_mask(block, op, left, right, cell_term)
    return _ordering_mask(block, op, left, right, cell_term)


def _unique_decode(column, proxy_fn, cell_term):
    """Proxy per unique column id, plus the row->unique inverse mapping."""
    if _np is not None:
        unique, inverse = _np.unique(column, return_inverse=True)
        proxies = [proxy_fn(cell_term(ident)) for ident in unique.tolist()]
        return proxies, inverse
    memo = {}
    row_proxies = []
    for ident in column:
        proxy = memo.get(ident)
        if proxy is None:
            proxy = proxy_fn(cell_term(ident))
            memo[ident] = proxy
        row_proxies.append(proxy)
    return row_proxies, None


def _equality_mask(block, op, left, right, cell_term):
    sides = []
    for operand in (left, right):
        if operand[0] == "const":
            sides.append(("const", _eq_proxy(operand[1])))
        else:
            proxies, inverse = _unique_decode(operand[1], _eq_proxy, cell_term)
            sides.append(("col", proxies, inverse))
    if sides[0][0] == "const" and sides[1][0] == "const":
        proxy_a, proxy_b = sides[0][1], sides[1][1]
        error = (proxy_a[0] == _EQ_TERM) != (proxy_b[0] == _EQ_TERM)
        equal = proxy_a == proxy_b
        result = False if error else (equal if op == "=" else not equal)
        return mask_all(block, result)
    if _np is not None:
        np = _np
        codes = {}

        def encode(proxies):
            out_codes = np.empty(len(proxies), dtype=np.int64)
            out_terms = np.empty(len(proxies), dtype=bool)
            for index, proxy in enumerate(proxies):
                out_codes[index] = codes.setdefault(proxy, len(codes))
                out_terms[index] = proxy[0] == _EQ_TERM
            return out_codes, out_terms

        lanes = []
        for side in sides:
            if side[0] == "const":
                code, is_term = encode([side[1]])
                lanes.append((code[0], is_term[0]))
            else:
                code, is_term = encode(side[1])
                lanes.append((code[side[2]], is_term[side[2]]))
        (code_a, term_a), (code_b, term_b) = lanes
        equal = code_a == code_b
        error = term_a != term_b
        if op == "=":
            return equal & ~error
        return ~equal & ~error
    lanes = [
        [side[1]] * block.length if side[0] == "const" else side[1]
        for side in sides
    ]
    mask = []
    for proxy_a, proxy_b in zip(*lanes):
        if (proxy_a[0] == _EQ_TERM) != (proxy_b[0] == _EQ_TERM):
            mask.append(False)
        elif op == "=":
            mask.append(proxy_a == proxy_b)
        else:
            mask.append(proxy_a != proxy_b)
    return mask


def _ordering_mask(block, op, left, right, cell_term):
    compare = _ORDERING[op]
    sides = []
    for operand in (left, right):
        if operand[0] == "const":
            sides.append(("const", _ord_proxy(operand[1])))
        else:
            proxies, inverse = _unique_decode(operand[1], _ord_proxy, cell_term)
            sides.append(("col", proxies, inverse))
    if sides[0][0] == "const" and sides[1][0] == "const":
        proxy_a, proxy_b = sides[0][1], sides[1][1]
        valid = proxy_a[0] == proxy_b[0] != _ORD_ERROR
        result = valid and compare(proxy_a[1], proxy_b[1])
        return mask_all(block, result)
    if _np is not None:
        np = _np
        # Strings from both sides share one dense rank so the float key
        # lanes compare consistently; numeric keys are their own rank.
        strings = sorted({
            proxy[1]
            for side in sides
            for proxy in ([side[1]] if side[0] == "const" else side[1])
            if proxy[0] == _ORD_STR
        })
        rank = {text: float(index) for index, text in enumerate(strings)}

        def encode(proxies):
            kinds = np.empty(len(proxies), dtype=np.int8)
            keys = np.zeros(len(proxies), dtype=np.float64)
            for index, (kind, key) in enumerate(proxies):
                kinds[index] = kind
                if kind == _ORD_NUM:
                    keys[index] = key
                elif kind == _ORD_STR:
                    keys[index] = rank[key]
            return kinds, keys

        lanes = []
        for side in sides:
            if side[0] == "const":
                kinds, keys = encode([side[1]])
                lanes.append((kinds[0], keys[0]))
            else:
                kinds, keys = encode(side[1])
                lanes.append((kinds[side[2]], keys[side[2]]))
        (kind_a, key_a), (kind_b, key_b) = lanes
        return (kind_a == kind_b) & (kind_a != _ORD_ERROR) \
            & compare(key_a, key_b)
    lanes = [
        [side[1]] * block.length if side[0] == "const" else side[1]
        for side in sides
    ]
    mask = []
    for (kind_a, key_a), (kind_b, key_b) in zip(*lanes):
        mask.append(
            kind_a == kind_b != _ORD_ERROR and compare(key_a, key_b)
        )
    return mask
