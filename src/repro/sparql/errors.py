"""Error hierarchy for the SPARQL query processor.

Besides the exception classes, this module defines the *machine-readable
error payload* shared by every user-facing failure surface: the SPARQL
Protocol server serializes it as the JSON body of 400/503 responses, and
``repro query`` prints it to stderr instead of a traceback.  The payload
shape is stable::

    {"error": {"code": "<code>", "message": "<human text>", ...extras}}

where ``code`` is one of the ``ERROR_*`` constants below and extras carry
structured detail (parse offset, timeout budget) when known.
"""

from __future__ import annotations

#: Stable machine-readable error codes used in payloads and HTTP bodies.
ERROR_PARSE = "parse_error"
ERROR_TIMEOUT = "timeout"
ERROR_EVALUATION = "evaluation_error"
ERROR_BAD_REQUEST = "bad_request"
ERROR_INTERNAL = "internal_error"
#: An update was sent to an endpoint serving in read-only mode.
ERROR_READ_ONLY = "read_only"


class SparqlError(Exception):
    """Base class for all SPARQL-layer errors."""


class SparqlSyntaxError(SparqlError):
    """Raised when query text cannot be tokenized or parsed."""

    def __init__(self, message, position=None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class EvaluationError(SparqlError):
    """Raised when algebra evaluation hits an unrecoverable condition."""


class QueryTimeout(SparqlError):
    """Raised when query evaluation exceeds its deadline mid-stream.

    Carries the configured budget (seconds) when known.  The benchmark
    runner catches this to classify an execution as a true timeout *while*
    it is running, instead of only after it has completed.
    """

    def __init__(self, message="query evaluation exceeded its deadline",
                 budget=None):
        if budget is not None:
            message = f"{message} ({budget:.3f}s budget)"
        super().__init__(message)
        self.budget = budget


class ExpressionError(SparqlError):
    """Raised by FILTER expression evaluation for SPARQL type errors.

    Per the SPARQL semantics, a type error inside a FILTER makes the filter
    condition evaluate to false for that solution; the evaluator catches this
    exception to implement that behaviour.
    """


def error_code(error):
    """The stable machine-readable code for an exception."""
    if isinstance(error, SparqlSyntaxError):
        return ERROR_PARSE
    if isinstance(error, QueryTimeout):
        return ERROR_TIMEOUT
    if isinstance(error, SparqlError):
        return ERROR_EVALUATION
    return ERROR_INTERNAL


def error_payload(error, code=None):
    """The structured payload describing an exception.

    ``code`` overrides the classification of :func:`error_code` (the server
    uses this for protocol-level failures that never reach the parser).
    Extras are attached when the exception carries structured detail:
    ``position`` for syntax errors, ``budget_seconds`` for timeouts.
    """
    body = {
        "code": code or error_code(error),
        "message": str(error) or type(error).__name__,
    }
    position = getattr(error, "position", None)
    if position is not None:
        body["position"] = position
    budget = getattr(error, "budget", None)
    if budget is not None:
        body["budget_seconds"] = budget
    return {"error": body}
