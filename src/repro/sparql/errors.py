"""Error hierarchy for the SPARQL query processor."""


class SparqlError(Exception):
    """Base class for all SPARQL-layer errors."""


class SparqlSyntaxError(SparqlError):
    """Raised when query text cannot be tokenized or parsed."""

    def __init__(self, message, position=None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class EvaluationError(SparqlError):
    """Raised when algebra evaluation hits an unrecoverable condition."""


class QueryTimeout(SparqlError):
    """Raised when query evaluation exceeds its deadline mid-stream.

    Carries the configured budget (seconds) when known.  The benchmark
    runner catches this to classify an execution as a true timeout *while*
    it is running, instead of only after it has completed.
    """

    def __init__(self, message="query evaluation exceeded its deadline",
                 budget=None):
        if budget is not None:
            message = f"{message} ({budget:.3f}s budget)"
        super().__init__(message)
        self.budget = budget


class ExpressionError(SparqlError):
    """Raised by FILTER expression evaluation for SPARQL type errors.

    Per the SPARQL semantics, a type error inside a FILTER makes the filter
    condition evaluate to false for that solution; the evaluator catches this
    exception to implement that behaviour.
    """
