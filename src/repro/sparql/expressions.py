"""Evaluation of FILTER expressions against a solution mapping.

Implements the SPARQL effective-boolean-value rules for the operator subset
the benchmark queries use: ``&&``, ``||``, ``!``, the six comparison
operators, ``bound()``, and ``regex()``.  Type errors (comparing a URI to a
number, using an unbound variable as an operand, …) raise
:class:`ExpressionError`, which callers interpret as *false* per the SPARQL
semantics — that is what makes ``FILTER (!bound(?x))`` the standard
closed-world-negation idiom used in Q6 and Q7.
"""

from __future__ import annotations

import re

from ..rdf.terms import BNode, Literal, URIRef, Variable
from . import ast
from .errors import ExpressionError


def evaluate(expression, binding):
    """Evaluate ``expression`` under ``binding``; returns a term or bool.

    Raises :class:`ExpressionError` for SPARQL type errors.
    """
    if isinstance(expression, ast.TermExpression):
        return _evaluate_term(expression.term, binding)
    if isinstance(expression, ast.Bound):
        return binding.is_bound(expression.variable)
    if isinstance(expression, ast.Not):
        return not _ebv_of(expression.operand, binding)
    if isinstance(expression, ast.And):
        # SPARQL's three-valued logic: an error on one side still yields
        # false if the other side is false.
        left = _ebv_or_error(expression.left, binding)
        right = _ebv_or_error(expression.right, binding)
        if left is False or right is False:
            return False
        if isinstance(left, ExpressionError) or isinstance(right, ExpressionError):
            raise ExpressionError("type error in && operand")
        return True
    if isinstance(expression, ast.Or):
        left = _ebv_or_error(expression.left, binding)
        right = _ebv_or_error(expression.right, binding)
        if left is True or right is True:
            return True
        if isinstance(left, ExpressionError) or isinstance(right, ExpressionError):
            raise ExpressionError("type error in || operand")
        return False
    if isinstance(expression, ast.Comparison):
        return _compare(
            expression.operator,
            evaluate(expression.left, binding),
            evaluate(expression.right, binding),
        )
    if isinstance(expression, ast.Regex):
        return _regex(expression, binding)
    raise ExpressionError(f"unsupported expression node: {expression!r}")


def effective_boolean_value(expression, binding):
    """Evaluate an expression as a FILTER condition.

    Returns a bool; SPARQL type errors map to ``False``.
    """
    try:
        return _to_boolean(evaluate(expression, binding))
    except ExpressionError:
        return False


# -- helpers --------------------------------------------------------------------


def _evaluate_term(term, binding):
    if isinstance(term, Variable):
        value = binding.get(term)
        if value is None:
            raise ExpressionError(f"unbound variable {term}")
        return value
    return term


def _ebv_of(expression, binding):
    return _to_boolean(evaluate(expression, binding))


def _ebv_or_error(expression, binding):
    try:
        return _ebv_of(expression, binding)
    except ExpressionError as error:
        return error


def _to_boolean(value):
    """SPARQL effective boolean value of an expression result."""
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            return python_value
        if isinstance(python_value, (int, float)):
            return python_value != 0
        return len(value.lexical) > 0
    raise ExpressionError(f"no effective boolean value for {value!r}")


def _compare(operator, left, right):
    if operator == "=":
        return _equals(left, right)
    if operator == "!=":
        return not _equals(left, right)
    ordering = _order_values(left, right)
    if operator == "<":
        return ordering < 0
    if operator == ">":
        return ordering > 0
    if operator == "<=":
        return ordering <= 0
    if operator == ">=":
        return ordering >= 0
    raise ExpressionError(f"unknown comparison operator {operator!r}")


def _equals(left, right):
    """SPARQL ``=``: value equality for literals, term equality otherwise."""
    left = _as_term(left)
    right = _as_term(right)
    if isinstance(left, Literal) and isinstance(right, Literal):
        left_value, right_value = left.to_python(), right.to_python()
        if _both_numbers(left_value, right_value):
            return float(left_value) == float(right_value)
        if isinstance(left_value, str) and isinstance(right_value, str):
            if left.language or right.language:
                return left == right
            return left_value == right_value
        return left == right
    if isinstance(left, Literal) or isinstance(right, Literal):
        raise ExpressionError("cannot compare a literal with a non-literal for equality")
    return left == right


def _order_values(left, right):
    """Three-way comparison for the ordering operators."""
    left = _as_term(left)
    right = _as_term(right)
    if isinstance(left, Literal) and isinstance(right, Literal):
        left_value, right_value = left.to_python(), right.to_python()
        if _both_numbers(left_value, right_value):
            return (float(left_value) > float(right_value)) - (
                float(left_value) < float(right_value)
            )
        if isinstance(left_value, str) and isinstance(right_value, str):
            return (left_value > right_value) - (left_value < right_value)
        raise ExpressionError(
            f"cannot order literals {left!r} and {right!r} by value"
        )
    raise ExpressionError("ordering comparison requires two literals")


def _as_term(value):
    if isinstance(value, bool):
        return Literal(value)
    if isinstance(value, (URIRef, BNode, Literal)):
        return value
    raise ExpressionError(f"not an RDF term: {value!r}")


def _both_numbers(left, right):
    return (
        isinstance(left, (int, float))
        and not isinstance(left, bool)
        and isinstance(right, (int, float))
        and not isinstance(right, bool)
    )


def _regex(expression, binding):
    text = _as_term(evaluate(expression.text, binding))
    pattern = _as_term(evaluate(expression.pattern, binding))
    if not isinstance(text, Literal) or not isinstance(pattern, Literal):
        raise ExpressionError("regex() requires literal arguments")
    flags = 0
    if expression.flags is not None:
        flag_term = _as_term(evaluate(expression.flags, binding))
        if "i" in str(flag_term):
            flags |= re.IGNORECASE
        if "s" in str(flag_term):
            flags |= re.DOTALL
        if "m" in str(flag_term):
            flags |= re.MULTILINE
    try:
        return re.search(pattern.lexical, text.lexical, flags) is not None
    except re.error as error:
        raise ExpressionError(f"invalid regular expression: {error}") from error
